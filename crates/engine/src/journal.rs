//! Crash-safe durability: a write-ahead journal of admitted applications,
//! atomic snapshot publication, and deterministic recovery.
//!
//! The chase engine is deterministic: from a checkpoint (queue, identity
//! set, RNG state, counters) the sequence of applications is a pure
//! function of the program. Durability therefore does **not** need to log
//! the applied triggers themselves — it only needs to log *how far* the
//! run got, plus enough per-record state to verify the replay. The journal
//! is an append-only text file:
//!
//! ```text
//! chasekit-journal v1
//! program <fingerprint:016x>
//! variant <oblivious|semi-oblivious|restricted>
//! base <applications at journal creation>
//! r <applications> <atoms> <nulls> <crc32:08x>
//! r <applications> <atoms> <nulls> <crc32:08x>
//! ...
//! ```
//!
//! One `r` record per trigger application, appended from
//! [`ChaseMachine::apply_core`](crate::ChaseMachine) in both the sequential
//! and parallel-round drivers (the apply phase is sequential in both, so
//! journal contents are bit-identical across `--threads`). Each record
//! carries a CRC32 over its own payload; records must be consecutive from
//! `base + 1`. Recovery resumes the last good snapshot (or the genesis
//! instance when no snapshot was ever published), truncates any torn or
//! corrupt journal tail at the first bad record, and replays the remaining
//! records by re-running [`ChaseMachine::step`](crate::ChaseMachine),
//! verifying the logged `(applications, atoms, nulls)` triple after every
//! replayed step. A mismatch is a structured
//! [`CheckpointError`](crate::CheckpointError), never a silently wrong
//! state.
//!
//! **Durability contract.** Journal appends are pushed to the OS per
//! record (`write(2)` of one full line), so a killed *process* loses at
//! most the torn final line; surviving an OS crash additionally requires
//! the fsync that [`JournalWriter::sync`] and snapshot publication
//! perform. Snapshots are published via [`write_snapshot_atomic`]
//! (temp file + fsync + rename + directory fsync), so a reader never
//! observes a half-written snapshot, and the journal is only re-based
//! *after* the rename — a crash between the two leaves a stale journal
//! whose records are all at or below the snapshot's application count,
//! which recovery skips.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use chasekit_core::{Instance, Program};

use crate::checkpoint::{program_fingerprint, Checkpoint, CheckpointError};
use crate::failpoint::{self, points};
use crate::{ChaseConfig, ChaseMachine, ChaseVariant};

/// Magic first line of a journal file; the `v1` suffix versions the format.
pub const JOURNAL_MAGIC: &str = "chasekit-journal v1";

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected). Table built at compile time; no deps.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the integrity check on journal records and
/// the checkpoint text trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// Variant tokens (shared with the checkpoint format).
// ---------------------------------------------------------------------------

pub(crate) fn variant_token(v: ChaseVariant) -> &'static str {
    match v {
        ChaseVariant::Oblivious => "oblivious",
        ChaseVariant::SemiOblivious => "semi-oblivious",
        ChaseVariant::Restricted => "restricted",
    }
}

pub(crate) fn parse_variant(s: &str) -> Option<ChaseVariant> {
    match s {
        "oblivious" => Some(ChaseVariant::Oblivious),
        "semi-oblivious" => Some(ChaseVariant::SemiOblivious),
        "restricted" => Some(ChaseVariant::Restricted),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// JournalWriter: the append side.
// ---------------------------------------------------------------------------

/// Append side of the write-ahead journal.
///
/// `append` is deliberately infallible at the call site: a write failure
/// (real or injected) is latched as a *sticky error* and the machine's run
/// loops poll [`JournalWriter::failed`] at their guard cadence, stopping
/// the chase with [`StopReason::Io`](crate::StopReason) instead of
/// chasing on with a silently incomplete journal.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    line: String,
    records: u64,
    error: Option<String>,
    /// Group-commit buffer: completed record lines not yet handed to the OS.
    buf: String,
    /// Records currently sitting in `buf`.
    pending: u64,
    /// Records per `write(2)`: 1 writes each record immediately (the
    /// default, PR 4's semantics); N batches appends into one write. A
    /// killed process loses at most the unwritten batch plus a torn final
    /// line — still a valid journal prefix, which is all recovery needs.
    flush_every: u64,
}

impl JournalWriter {
    /// Creates (truncating) a journal positioned at `machine`'s current
    /// state: records will follow the machine's application count, under
    /// its program fingerprint and variant. Install the result with
    /// [`ChaseMachine::set_journal`].
    pub fn for_machine(path: &Path, machine: &ChaseMachine<'_>) -> io::Result<JournalWriter> {
        JournalWriter::create(
            path,
            program_fingerprint(machine.program),
            machine.config.variant,
            machine.stats().applications,
        )
    }

    /// Creates (truncating) a journal at `path` whose records will follow
    /// application number `base` for the given program fingerprint and
    /// variant.
    pub(crate) fn create(
        path: &Path,
        fingerprint: u64,
        variant: ChaseVariant,
        base: u64,
    ) -> io::Result<JournalWriter> {
        if let Some(n) = failpoint::trip_io(points::JOURNAL_TRUNCATE)? {
            // Torn truncation: leave a half-written header behind.
            let mut file = File::create(path)?;
            let header = header_text(fingerprint, variant, base);
            file.write_all(&header.as_bytes()[..n.min(header.len())])?;
            return Err(failpoint::injected(points::JOURNAL_TRUNCATE));
        }
        let mut file = File::create(path)?;
        file.write_all(header_text(fingerprint, variant, base).as_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            line: String::with_capacity(64),
            records: 0,
            error: None,
            buf: String::new(),
            pending: 0,
            flush_every: 1,
        })
    }

    /// Sets the group-commit batch size: `append` hands records to the OS
    /// in batches of `n` lines instead of one `write(2)` per record
    /// (`n <= 1` keeps the write-per-record default). [`JournalWriter::sync`]
    /// and snapshot re-basing always drain the batch first, so the
    /// durability contract is unchanged at fsync boundaries; between them a
    /// kill loses at most the buffered batch — a clean journal prefix.
    pub fn with_flush_every(mut self, n: u64) -> Self {
        self.flush_every = n.max(1);
        self
    }

    /// Hands the buffered batch to the OS in one write. On failure the
    /// error is returned (callers latch it); the buffer is dropped either
    /// way — a failed batch write leaves a valid shorter prefix on disk,
    /// never a half-applied batch retried out of order.
    fn flush_buf(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let result = self.file.write_all(self.buf.as_bytes());
        self.buf.clear();
        self.pending = 0;
        result
    }

    /// Appends one application record. A failure (real or injected) is
    /// latched; all subsequent appends become no-ops.
    pub(crate) fn append(&mut self, applications: u64, atoms: usize, nulls: usize) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        let _ = write!(self.line, "r {applications} {atoms} {nulls}");
        let crc = crc32(self.line.as_bytes());
        let _ = writeln!(self.line, " {crc:08x}");
        match failpoint::trip_io(points::JOURNAL_APPEND) {
            Err(e) => {
                self.error = Some(e.to_string());
                return;
            }
            Ok(Some(n)) => {
                // Torn write of the pending batch (buffered lines plus this
                // record): the bytes that made it out, then the latched
                // failure. Exactly what a mid-write kill leaves behind.
                // With flush-every 1 the buffer is empty and this reduces
                // to tearing the single record line.
                let batch_len = self.buf.len() + self.line.len();
                let n = n.min(batch_len);
                if n <= self.buf.len() {
                    let _ = self.file.write_all(&self.buf.as_bytes()[..n]);
                } else {
                    let _ = self.file.write_all(self.buf.as_bytes());
                    let _ = self.file.write_all(&self.line.as_bytes()[..n - self.buf.len()]);
                }
                self.buf.clear();
                self.pending = 0;
                self.error = Some(format!(
                    "short write ({n} of {batch_len} bytes) appending journal batch"
                ));
                return;
            }
            Ok(None) => {}
        }
        self.buf.push_str(&self.line);
        self.pending += 1;
        if self.pending >= self.flush_every {
            if let Err(e) = self.flush_buf() {
                self.error = Some(e.to_string());
                return;
            }
        }
        self.records += 1;
    }

    /// Flushes journal contents to stable storage (fsync). Called at
    /// snapshot boundaries and on clean shutdown.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(io::Error::other(e.clone()));
        }
        if let Err(e) = self.flush_buf() {
            self.error = Some(e.to_string());
            return Err(e);
        }
        if let Some(_n) = failpoint::trip_io(points::JOURNAL_SYNC)? {
            // A short "sync" makes no sense; treat as an error.
            return Err(failpoint::injected(points::JOURNAL_SYNC));
        }
        self.file.sync_data()
    }

    /// The sticky append/sync error, if any write has failed.
    pub fn failed(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Records successfully appended by this writer.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_text(fingerprint: u64, variant: ChaseVariant, base: u64) -> String {
    format!("{JOURNAL_MAGIC}\nprogram {fingerprint:016x}\nvariant {}\nbase {base}\n", variant_token(variant))
}

// ---------------------------------------------------------------------------
// Atomic snapshot publication.
// ---------------------------------------------------------------------------

/// Writes `text` to `path` crash-atomically: a sibling temporary file is
/// written and fsync'd, renamed over `path`, and the parent directory is
/// fsync'd. A reader (or a recovery after a kill at any point inside this
/// function) sees either the complete old snapshot or the complete new
/// one, never a torn mixture.
pub fn write_snapshot_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    {
        let mut file = File::create(&tmp)?;
        match failpoint::trip_io(points::SNAPSHOT_WRITE)? {
            Some(n) => {
                let n = n.min(text.len());
                file.write_all(&text.as_bytes()[..n])?;
                return Err(failpoint::injected(points::SNAPSHOT_WRITE));
            }
            None => file.write_all(text.as_bytes())?,
        }
        file.sync_data()?;
    }
    if failpoint::trip_io(points::SNAPSHOT_RENAME)?.is_some() {
        return Err(failpoint::injected(points::SNAPSHOT_RENAME));
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            // Persist the rename itself. Best-effort: not every filesystem
            // supports fsync on a directory handle.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Journal scanning (the read side).
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct JournalRecord {
    applications: u64,
    atoms: usize,
    nulls: usize,
}

#[derive(Debug)]
struct JournalScan {
    /// Application count the journal was based on (snapshot it followed).
    base: u64,
    /// Valid, consecutive records from `base + 1`.
    records: Vec<JournalRecord>,
    /// Bytes of torn/corrupt tail discarded (whole-file for a torn header).
    truncated_bytes: u64,
}

/// Scans raw journal bytes. A **complete** header that names a different
/// program or variant is an error (the files are mismatched, not torn); a
/// header cut short mid-write — a byte prefix of the expected header — is
/// treated as an empty journal with every byte truncated, because that is
/// exactly what a kill during journal creation leaves behind. Records are
/// validated (CRC, structure, consecutive numbering) until the first bad
/// one, where the tail is truncated.
fn scan_journal(
    bytes: &[u8],
    expected_fp: u64,
    expected_variant: ChaseVariant,
) -> Result<JournalScan, CheckpointError> {
    let total = bytes.len() as u64;
    let torn_header = |scan_base: u64| JournalScan {
        base: scan_base,
        records: Vec::new(),
        truncated_bytes: total,
    };

    // Header lines 1–3 have exactly one valid spelling, so "torn" is
    // decidable: the bytes must be a prefix of that spelling.
    let expected_prefix = format!(
        "{JOURNAL_MAGIC}\nprogram {expected_fp:016x}\nvariant {}\nbase ",
        variant_token(expected_variant)
    );
    let mut pos = 0usize;
    let mut lineno = 0usize;

    let next_line = |pos: &mut usize| -> Option<(usize, &[u8])> {
        if *pos >= bytes.len() {
            return None;
        }
        let start = *pos;
        match bytes[start..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                *pos = start + off + 1;
                Some((start, &bytes[start..start + off]))
            }
            None => None, // unterminated tail: never a complete line
        }
    };

    // --- line 1: magic ---
    let magic = match next_line(&mut pos) {
        Some((_, l)) => l,
        None => {
            // No complete first line. Torn creation if it's a prefix of the
            // expected header, otherwise not a journal at all.
            if expected_prefix.as_bytes().starts_with(bytes) {
                return Ok(torn_header(0));
            }
            return Err(CheckpointError::Parse(
                "journal line 1: not a chasekit journal".into(),
            ));
        }
    };
    lineno += 1;
    if magic != JOURNAL_MAGIC.as_bytes() {
        return Err(CheckpointError::Parse(format!(
            "journal line {lineno}: {:?} (expected `{JOURNAL_MAGIC}`)",
            String::from_utf8_lossy(magic)
        )));
    }

    // --- line 2: program fingerprint ---
    // From here on, an unterminated header line is always a torn creation
    // (possibly with tail corruption on top) — truncate to empty. Only a
    // *complete* line that mismatches is a hard error.
    let fp_line = match next_line(&mut pos) {
        Some((_, l)) => l,
        None => return Ok(torn_header(0)),
    };
    lineno += 1;
    let fp_str = std::str::from_utf8(fp_line).unwrap_or("");
    match fp_str.strip_prefix("program ").and_then(|h| u64::from_str_radix(h, 16).ok()) {
        Some(fp) if fp == expected_fp => {}
        Some(fp) => {
            return Err(CheckpointError::ProgramMismatch { expected: expected_fp, found: fp })
        }
        None => {
            return Err(CheckpointError::Parse(format!(
                "journal line {lineno}: {:?} (expected `program <hex>`)",
                String::from_utf8_lossy(fp_line)
            )))
        }
    }

    // --- line 3: variant ---
    let var_line = match next_line(&mut pos) {
        Some((_, l)) => l,
        None => return Ok(torn_header(0)),
    };
    lineno += 1;
    let var_str = std::str::from_utf8(var_line).unwrap_or("");
    match var_str.strip_prefix("variant ").and_then(parse_variant) {
        Some(v) if v == expected_variant => {}
        Some(v) => {
            return Err(CheckpointError::Inconsistent(format!(
                "journal was written by a {} chase, this run is {}",
                variant_token(v),
                variant_token(expected_variant)
            )))
        }
        None => {
            return Err(CheckpointError::Parse(format!(
                "journal line {lineno}: {:?} (expected `variant <name>`)",
                String::from_utf8_lossy(var_line)
            )))
        }
    }

    // --- line 4: base ---
    let base = match next_line(&mut pos) {
        Some((_, l)) => {
            lineno += 1;
            let s = std::str::from_utf8(l).unwrap_or("");
            match s.strip_prefix("base ").and_then(|n| n.parse::<u64>().ok()) {
                Some(b) => b,
                None => {
                    return Err(CheckpointError::Parse(format!(
                        "journal line {lineno}: {:?} (expected `base <n>`)",
                        String::from_utf8_lossy(l)
                    )))
                }
            }
        }
        None => return Ok(torn_header(0)),
    };

    // --- records ---
    let mut records = Vec::new();
    let mut expected_next = base + 1;
    loop {
        let line_start = pos;
        let line = match next_line(&mut pos) {
            Some((_, l)) => l,
            None => {
                // Unterminated (torn) tail — truncate it, even if it would
                // parse: a record is only durable once its newline landed.
                return Ok(JournalScan {
                    base,
                    records,
                    truncated_bytes: total - line_start as u64,
                });
            }
        };
        match parse_record(line, expected_next) {
            Some(rec) => {
                expected_next += 1;
                records.push(rec);
            }
            None => {
                // First bad record: truncate from here to end of file.
                return Ok(JournalScan {
                    base,
                    records,
                    truncated_bytes: total - line_start as u64,
                });
            }
        }
    }
}

/// Parses and verifies one `r <apps> <atoms> <nulls> <crc>` record.
/// Returns `None` on any structural, CRC, or sequencing defect.
fn parse_record(line: &[u8], expected_applications: u64) -> Option<JournalRecord> {
    let s = std::str::from_utf8(line).ok()?;
    let (payload, crc_hex) = s.rsplit_once(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc_hex.len() != 8 || crc32(payload.as_bytes()) != crc {
        return None;
    }
    let mut it = payload.split(' ');
    if it.next()? != "r" {
        return None;
    }
    let applications: u64 = it.next()?.parse().ok()?;
    let atoms: usize = it.next()?.parse().ok()?;
    let nulls: usize = it.next()?.parse().ok()?;
    if it.next().is_some() || applications != expected_applications {
        return None;
    }
    Some(JournalRecord { applications, atoms, nulls })
}

/// Whether `journal_bytes` holds valid records *beyond* `machine`'s
/// current application count — the unreplayed tail a crashed run leaves
/// behind. The CLI refuses to start a journaled run over such a tail
/// (truncating it would silently discard recoverable work) and directs the
/// user to `--recover`. Unscannable bytes also count as needing recovery:
/// [`recover`] will produce the precise error.
pub fn needs_recovery(machine: &ChaseMachine<'_>, journal_bytes: &[u8]) -> bool {
    let fp = program_fingerprint(machine.program);
    match scan_journal(journal_bytes, fp, machine.config.variant) {
        Ok(scan) => scan
            .records
            .last()
            .is_some_and(|r| r.applications > machine.stats().applications),
        Err(_) => true,
    }
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

/// What [`recover`] did, for the CLI's recovery report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot existed (false: recovery started from genesis).
    pub had_snapshot: bool,
    /// Application count of the resumed snapshot (0 from genesis).
    pub snapshot_applications: u64,
    /// Valid journal records found after tail truncation.
    pub records_valid: u64,
    /// Records at or below the snapshot's application count (the stale
    /// prefix left by a crash between snapshot rename and journal re-base).
    pub records_skipped: u64,
    /// Records actually replayed through the engine.
    pub records_replayed: u64,
    /// Bytes of torn/corrupt journal tail discarded.
    pub bytes_truncated: u64,
    /// Application count after replay.
    pub final_applications: u64,
    /// Instance size after replay.
    pub final_atoms: usize,
}

/// Recovers a chase machine from the last good snapshot plus the journal.
///
/// `snapshot_text` is the snapshot file's contents if one exists (its
/// integrity is verified by [`Checkpoint::from_text`]'s CRC trailer);
/// `journal_bytes` the raw journal file (empty slice if absent); `genesis`
/// and `genesis_config` reconstruct the pre-first-snapshot state when no
/// snapshot was ever published. The returned machine is positioned exactly
/// where the journal's last valid record left the crashed run — continuing
/// it is bit-identical to a run that never crashed.
pub fn recover<'p>(
    program: &'p Program,
    snapshot_text: Option<&str>,
    journal_bytes: &[u8],
    genesis: Instance,
    genesis_config: ChaseConfig,
) -> Result<(ChaseMachine<'p>, RecoveryReport), CheckpointError> {
    let fp = program_fingerprint(program);
    let (mut machine, had_snapshot) = match snapshot_text {
        Some(text) => (Checkpoint::from_text(text)?.resume(program)?, true),
        None => (ChaseMachine::new(program, genesis_config, genesis), false),
    };
    let snapshot_applications = machine.stats().applications;

    let scan = scan_journal(journal_bytes, fp, machine.config.variant)?;
    if scan.base > snapshot_applications {
        return Err(CheckpointError::Inconsistent(format!(
            "journal base {} is ahead of the snapshot's {} applications; \
             snapshot and journal are from different runs",
            scan.base, snapshot_applications
        )));
    }

    let mut skipped = 0u64;
    let mut replayed = 0u64;
    for rec in &scan.records {
        if rec.applications <= snapshot_applications {
            skipped += 1;
            continue;
        }
        // Deterministic replay: the engine re-derives the application the
        // journal admitted; the logged triple verifies it.
        if machine.step().is_none() {
            return Err(CheckpointError::Inconsistent(format!(
                "journal records application {} but the chase saturated after {}",
                rec.applications,
                machine.stats().applications
            )));
        }
        replayed += 1;
        let (apps, atoms, nulls) =
            (machine.stats().applications, machine.instance.len(), machine.instance.null_count());
        if (apps, atoms, nulls) != (rec.applications, rec.atoms, rec.nulls) {
            return Err(CheckpointError::Inconsistent(format!(
                "replay diverged at journal record {}: engine reached \
                 (applications {apps}, atoms {atoms}, nulls {nulls}), journal \
                 recorded (applications {}, atoms {}, nulls {})",
                rec.applications, rec.applications, rec.atoms, rec.nulls
            )));
        }
    }

    let report = RecoveryReport {
        had_snapshot,
        snapshot_applications,
        records_valid: scan.records.len() as u64,
        records_skipped: skipped,
        records_replayed: replayed,
        bytes_truncated: scan.truncated_bytes,
        final_applications: machine.stats().applications,
        final_atoms: machine.instance.len(),
    };
    Ok((machine, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;
    use chasekit_core::Program;

    fn example1() -> Program {
        // Paper Example 1: diverges under every variant, so any step budget
        // is reachable.
        Program::parse("person(bob). person(X) -> hasFather(X, Y), person(Y).").unwrap()
    }

    fn run_some(program: &Program, n: u64) -> ChaseMachine<'_> {
        let initial = Instance::from_atoms(program.facts().iter().cloned());
        let mut m = ChaseMachine::new(program, ChaseConfig::of(ChaseVariant::Oblivious), initial);
        let _ = m.run(&Budget::applications(n));
        m
    }

    fn journal_text(program: &Program, upto: u64) -> (Vec<u8>, String) {
        // Build a journal by hand from a reference run's step stream, plus
        // the final checkpoint text for comparison.
        let initial = Instance::from_atoms(program.facts().iter().cloned());
        let mut m = ChaseMachine::new(program, ChaseConfig::of(ChaseVariant::Oblivious), initial);
        let fp = program_fingerprint(program);
        let mut text = header_text(fp, ChaseVariant::Oblivious, 0);
        for _ in 0..upto {
            if m.step().is_none() {
                break;
            }
            let payload = format!(
                "r {} {} {}",
                m.stats().applications,
                m.instance.len(),
                m.instance.null_count()
            );
            let crc = crc32(payload.as_bytes());
            text.push_str(&format!("{payload} {crc:08x}\n"));
        }
        (text.into_bytes(), m.snapshot().to_text().unwrap())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn genesis_recovery_replays_the_whole_journal() {
        let p = example1();
        let (journal, want) = journal_text(&p, 6);
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let (m, report) = recover(
            &p,
            None,
            &journal,
            genesis,
            ChaseConfig::of(ChaseVariant::Oblivious),
        )
        .unwrap();
        assert!(!report.had_snapshot);
        assert_eq!(report.records_replayed, report.records_valid);
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(m.snapshot().to_text().unwrap(), want);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = example1();
        let (mut journal, _) = journal_text(&p, 6);
        // Tear the final record mid-line.
        let cut = journal.len() - 9;
        journal.truncate(cut);
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let (m, report) =
            recover(&p, None, &journal, genesis, ChaseConfig::of(ChaseVariant::Oblivious))
                .unwrap();
        assert_eq!(report.records_replayed, 5);
        assert!(report.bytes_truncated > 0);
        assert_eq!(m.stats().applications, 5);
    }

    #[test]
    fn corrupt_middle_record_truncates_everything_after() {
        let p = example1();
        let (journal, _) = journal_text(&p, 6);
        let mut s = String::from_utf8(journal).unwrap();
        // Flip a digit inside the third record's payload: CRC must catch it.
        let lines: Vec<&str> = s.lines().collect();
        let victim = lines[6]; // header is 4 lines; records start at index 4
        let broken = victim.replace("r ", "r9");
        s = s.replace(victim, &broken);
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let (_, report) =
            recover(&p, None, s.as_bytes(), genesis, ChaseConfig::of(ChaseVariant::Oblivious))
                .unwrap();
        assert_eq!(report.records_replayed, 2);
        assert!(report.bytes_truncated > 0);
    }

    #[test]
    fn torn_header_is_an_empty_journal() {
        let p = example1();
        let fp = program_fingerprint(&p);
        let header = header_text(fp, ChaseVariant::Oblivious, 0);
        for cut in 0..header.len() {
            let torn = &header.as_bytes()[..cut];
            let genesis = Instance::from_atoms(p.facts().iter().cloned());
            let (m, report) =
                recover(&p, None, torn, genesis, ChaseConfig::of(ChaseVariant::Oblivious))
                    .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(report.records_replayed, 0, "cut {cut}");
            assert_eq!(report.bytes_truncated, cut as u64, "cut {cut}");
            assert_eq!(m.stats().applications, 0);
        }
    }

    #[test]
    fn wrong_program_is_rejected() {
        let p = example1();
        let other = Program::parse("q(c). q(X) -> q(X).").unwrap();
        let (journal, _) = journal_text(&p, 3);
        let genesis = Instance::from_atoms(other.facts().iter().cloned());
        let err = recover(
            &other,
            None,
            &journal,
            genesis,
            ChaseConfig::of(ChaseVariant::Oblivious),
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::ProgramMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_variant_is_rejected() {
        let p = example1();
        let (journal, _) = journal_text(&p, 3);
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let err = recover(
            &p,
            None,
            &journal,
            genesis,
            ChaseConfig::of(ChaseVariant::Restricted),
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn snapshot_plus_stale_journal_skips_covered_records() {
        // Crash window: snapshot renamed at application 4, journal (based
        // at 0) still holds records 1..=6. Recovery must skip 1..=4 and
        // replay 5..=6.
        let p = example1();
        let (journal, _) = journal_text(&p, 6);
        let snap = run_some(&p, 4).snapshot().to_text().unwrap();
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let (m, report) = recover(
            &p,
            Some(&snap),
            &journal,
            genesis,
            ChaseConfig::of(ChaseVariant::Oblivious),
        )
        .unwrap();
        assert!(report.had_snapshot);
        assert_eq!(report.snapshot_applications, 4);
        assert_eq!(report.records_skipped, 4);
        assert_eq!(report.records_replayed, 2);
        assert_eq!(m.stats().applications, 6);
        let want = run_some(&p, 6).snapshot().to_text().unwrap();
        assert_eq!(m.snapshot().to_text().unwrap(), want);
    }

    #[test]
    fn journal_ahead_of_snapshot_is_inconsistent() {
        let p = example1();
        let fp = program_fingerprint(&p);
        let journal = header_text(fp, ChaseVariant::Oblivious, 10).into_bytes();
        let snap = run_some(&p, 4).snapshot().to_text().unwrap();
        let genesis = Instance::from_atoms(p.facts().iter().cloned());
        let err = recover(
            &p,
            Some(&snap),
            &journal,
            genesis,
            ChaseConfig::of(ChaseVariant::Oblivious),
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn writer_round_trips_through_scan() {
        let dir = std::env::temp_dir().join(format!("chasekit-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer_round_trip.journal");
        let p = example1();
        let fp = program_fingerprint(&p);
        {
            let mut w = JournalWriter::create(&path, fp, ChaseVariant::Oblivious, 0).unwrap();
            let initial = Instance::from_atoms(p.facts().iter().cloned());
            let mut m =
                ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Oblivious), initial);
            for _ in 0..5 {
                m.step().unwrap();
                w.append(m.stats().applications, m.instance.len(), m.instance.null_count());
            }
            assert_eq!(w.records(), 5);
            assert!(w.failed().is_none());
            w.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_journal(&bytes, fp, ChaseVariant::Oblivious).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_the_batch_boundary() {
        let dir =
            std::env::temp_dir().join(format!("chasekit-journal-gc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group_commit.journal");
        let p = example1();
        let fp = program_fingerprint(&p);
        let header_len = header_text(fp, ChaseVariant::Oblivious, 0).len() as u64;
        let mut w = JournalWriter::create(&path, fp, ChaseVariant::Oblivious, 0)
            .unwrap()
            .with_flush_every(4);
        let initial = Instance::from_atoms(p.facts().iter().cloned());
        let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Oblivious), initial);
        // Three appends: all buffered, nothing past the header on disk.
        for _ in 0..3 {
            m.step().unwrap();
            w.append(m.stats().applications, m.instance.len(), m.instance.null_count());
        }
        assert_eq!(w.records(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), header_len);
        // The fourth append completes the batch: one write of four lines.
        m.step().unwrap();
        w.append(m.stats().applications, m.instance.len(), m.instance.null_count());
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_journal(&bytes, fp, ChaseVariant::Oblivious).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.truncated_bytes, 0);
        // A fifth append buffers again; sync drains the partial batch.
        m.step().unwrap();
        w.append(m.stats().applications, m.instance.len(), m.instance.null_count());
        w.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_journal(&bytes, fp, ChaseVariant::Oblivious).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_short_write_tears_the_batch_to_a_scannable_prefix() {
        use crate::failpoint;
        let _g = crate::failpoint::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir =
            std::env::temp_dir().join(format!("chasekit-journal-gct-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group_commit_torn.journal");
        let p = example1();
        let fp = program_fingerprint(&p);
        let mut w = JournalWriter::create(&path, fp, ChaseVariant::Oblivious, 0)
            .unwrap()
            .with_flush_every(8);
        let initial = Instance::from_atoms(p.facts().iter().cloned());
        let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Oblivious), initial);
        // Tear the 5th append mid-batch: the batch holds 4 buffered lines
        // plus the current one; 50 bytes lands inside it.
        failpoint::configure("journal.append=short:50@5").unwrap();
        for _ in 0..5 {
            m.step().unwrap();
            w.append(m.stats().applications, m.instance.len(), m.instance.null_count());
        }
        failpoint::clear();
        assert!(w.failed().is_some(), "short write must latch");
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_journal(&bytes, fp, ChaseVariant::Oblivious).unwrap();
        // Whatever survived is a valid consecutive prefix with a torn tail.
        assert!(scan.records.len() < 5);
        assert!(scan.truncated_bytes > 0);
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.applications, i as u64 + 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_snapshot_survives_reread() {
        let dir = std::env::temp_dir().join(format!("chasekit-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt");
        let p = example1();
        let text = run_some(&p, 4).snapshot().to_text().unwrap();
        write_snapshot_atomic(&path, &text).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // Overwrite with a later snapshot; the temp file must be gone.
        let text2 = run_some(&p, 6).snapshot().to_text().unwrap();
        write_snapshot_atomic(&path, &text2).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text2);
        assert!(!PathBuf::from(format!("{}.tmp", path.display())).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
