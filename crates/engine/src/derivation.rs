//! Derivation tracking: which trigger application produced which atom.
//!
//! The guarded termination procedure needs, for every chase-produced atom:
//! its creating application, the body-image atoms (in particular the image
//! of the rule's *guard*), the frontier assignment, the nulls minted by the
//! application, and birth timestamps. Atom and null ids are monotone, so
//! ids double as birth clocks; application sequence numbers give a third.

use chasekit_core::{AtomId, FxHashMap, FxHashSet, NullId, Term};

/// One trigger application (a single chase step).
#[derive(Debug, Clone)]
pub struct Application {
    /// Index of the applied rule in the program.
    pub rule: usize,
    /// Sequence number of this application (0-based, monotone).
    pub seq: u64,
    /// Instance ids of the body image, in body-atom order.
    pub parents: Vec<AtomId>,
    /// The parent anchoring ancestor chains: the body image of the rule's
    /// guard when the rule is guarded, otherwise the first body image.
    pub primary_parent: Option<AtomId>,
    /// The frontier assignment, in ascending frontier-variable order.
    pub frontier: Vec<Term>,
    /// The trigger's identity key under the run's chase variant (the full
    /// universal assignment for the oblivious chase, the frontier for the
    /// others). Retraction repair uses it to release `seen` entries whose
    /// supporting match died, and to give nulls Skolem-canonical names.
    pub key: Vec<Term>,
    /// Nulls minted by this application, in ascending existential-variable
    /// order (empty for Datalog rules).
    pub born_nulls: Vec<NullId>,
    /// Atoms this application added to the instance (new atoms only; head
    /// images that already existed are not listed).
    pub produced: Vec<AtomId>,
}

/// The derivation DAG of a chase run.
#[derive(Debug, Default, Clone)]
pub struct DerivationDag {
    apps: Vec<Application>,
    /// For each atom: the application that first created it (absent for
    /// atoms of the initial instance).
    creator: FxHashMap<AtomId, usize>,
    /// For each atom: its derivation depth (0 for initial atoms, else
    /// 1 + max over parents).
    depth: FxHashMap<AtomId, u32>,
    /// For each null: the application that minted it.
    null_birth: FxHashMap<NullId, u64>,
    /// For each null: the index of the application that minted it.
    null_minter: FxHashMap<NullId, usize>,
    /// For each atom: indices of applications using it as a parent. This
    /// is the downward index retraction cones are computed from.
    consumers: FxHashMap<AtomId, Vec<usize>>,
}

impl DerivationDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an application; returns its index. The caller appends
    /// produced atoms via [`DerivationDag::record_atom`].
    pub fn push_application(&mut self, app: Application) -> usize {
        let idx = self.apps.len();
        for &n in &app.born_nulls {
            self.null_birth.insert(n, app.seq);
            self.null_minter.insert(n, idx);
        }
        for &p in &app.parents {
            let slot = self.consumers.entry(p).or_default();
            // A body may bind the same atom several times; index it once.
            if slot.last() != Some(&idx) {
                slot.push(idx);
            }
        }
        self.apps.push(app);
        idx
    }

    /// Rebuilds a DAG from surviving applications (ascending `seq`),
    /// recomputing every index. Used by retraction repair, which rewrites
    /// atom ids and drops dead applications wholesale.
    pub fn from_applications(apps: Vec<Application>) -> Self {
        let mut dag = DerivationDag::new();
        for mut app in apps {
            let produced = std::mem::take(&mut app.produced);
            let idx = dag.push_application(app);
            for atom in produced {
                dag.record_atom(atom, idx);
            }
        }
        dag
    }

    /// Records that `atom` was first created by application `app_idx`.
    pub fn record_atom(&mut self, atom: AtomId, app_idx: usize) {
        debug_assert!(!self.creator.contains_key(&atom));
        let parent_depth = self.apps[app_idx]
            .parents
            .iter()
            .map(|p| self.depth_of(*p))
            .max()
            .unwrap_or(0);
        self.creator.insert(atom, app_idx);
        self.depth.insert(atom, parent_depth + 1);
        self.apps[app_idx].produced.push(atom);
    }

    /// The application that created `atom`, if it is not an initial atom.
    pub fn creator_of(&self, atom: AtomId) -> Option<&Application> {
        self.creator.get(&atom).map(|&i| &self.apps[i])
    }

    /// Derivation depth of an atom (0 for initial atoms).
    pub fn depth_of(&self, atom: AtomId) -> u32 {
        self.depth.get(&atom).copied().unwrap_or(0)
    }

    /// The application sequence number that minted `null`, if tracked.
    pub fn null_birth(&self, null: NullId) -> Option<u64> {
        self.null_birth.get(&null).copied()
    }

    /// All applications, in sequence order.
    pub fn applications(&self) -> &[Application] {
        &self.apps
    }

    /// The application at the given index.
    pub fn app(&self, idx: usize) -> &Application {
        &self.apps[idx]
    }

    /// Indices of applications that used `atom` as a parent.
    pub fn consumers_of(&self, atom: AtomId) -> &[usize] {
        self.consumers.get(&atom).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The index of the application that minted `null`, if tracked.
    pub fn minter_of(&self, null: NullId) -> Option<usize> {
        self.null_minter.get(&null).copied()
    }

    /// Computes the derivation cone of retracting `root`: every
    /// application transitively consuming it (directly or through atoms
    /// the cone created), and every atom first created inside the cone.
    ///
    /// Returns `(dead_app_indices, dead_atoms)`; app indices come back
    /// ascending (push order equals `seq` order), atoms in discovery
    /// order. `root` itself is *not* included in `dead_atoms`.
    pub fn cone_of(&self, root: AtomId) -> (Vec<usize>, Vec<AtomId>) {
        let mut dead_apps: Vec<usize> = Vec::new();
        let mut dead_app_set = FxHashSet::default();
        let mut dead_atoms: Vec<AtomId> = Vec::new();
        let mut dead_atom_set = FxHashSet::default();
        let mut frontier = vec![root];
        while let Some(atom) = frontier.pop() {
            for &app_idx in self.consumers_of(atom) {
                if !dead_app_set.insert(app_idx) {
                    continue;
                }
                dead_apps.push(app_idx);
                for &prod in &self.apps[app_idx].produced {
                    if dead_atom_set.insert(prod) {
                        dead_atoms.push(prod);
                        frontier.push(prod);
                    }
                }
            }
        }
        dead_apps.sort_unstable();
        (dead_apps, dead_atoms)
    }

    /// Walks the primary-ancestor chain of `atom`: the primary parent of
    /// its creating application, then that atom's primary parent, and so on
    /// up to an initial atom. For guarded rules this is the guard chain.
    /// The returned chain starts with `atom`'s primary parent (i.e.
    /// excludes `atom` itself).
    pub fn ancestor_chain(&self, mut atom: AtomId) -> Vec<AtomId> {
        let mut chain = Vec::new();
        while let Some(app) = self.creator_of(atom) {
            match app.primary_parent {
                Some(g) => {
                    chain.push(g);
                    atom = g;
                }
                None => break,
            }
        }
        chain
    }

    /// Maximum derivation depth over all recorded atoms.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(rule: usize, seq: u64, parents: Vec<AtomId>, guard: Option<AtomId>) -> Application {
        Application {
            rule,
            seq,
            parents,
            primary_parent: guard,
            frontier: vec![],
            key: vec![],
            born_nulls: vec![],
            produced: vec![],
        }
    }

    #[test]
    fn depth_accumulates_along_parents() {
        let mut dag = DerivationDag::new();
        // Initial atom 0 (not recorded). App 0 creates atom 1 from atom 0.
        let a0 = dag.push_application(app(0, 0, vec![AtomId(0)], Some(AtomId(0))));
        dag.record_atom(AtomId(1), a0);
        // App 1 creates atom 2 from atom 1.
        let a1 = dag.push_application(app(0, 1, vec![AtomId(1)], Some(AtomId(1))));
        dag.record_atom(AtomId(2), a1);
        assert_eq!(dag.depth_of(AtomId(0)), 0);
        assert_eq!(dag.depth_of(AtomId(1)), 1);
        assert_eq!(dag.depth_of(AtomId(2)), 2);
        assert_eq!(dag.max_depth(), 2);
    }

    #[test]
    fn ancestor_chain_walks_to_initial() {
        let mut dag = DerivationDag::new();
        let a0 = dag.push_application(app(0, 0, vec![AtomId(0)], Some(AtomId(0))));
        dag.record_atom(AtomId(1), a0);
        let a1 = dag.push_application(app(1, 1, vec![AtomId(1)], Some(AtomId(1))));
        dag.record_atom(AtomId(2), a1);
        assert_eq!(dag.ancestor_chain(AtomId(2)), vec![AtomId(1), AtomId(0)]);
        assert!(dag.ancestor_chain(AtomId(0)).is_empty());
    }

    #[test]
    fn null_births_are_tracked() {
        let mut dag = DerivationDag::new();
        let mut a = app(0, 7, vec![AtomId(0)], None);
        a.born_nulls = vec![NullId(3)];
        dag.push_application(a);
        assert_eq!(dag.null_birth(NullId(3)), Some(7));
        assert_eq!(dag.null_birth(NullId(4)), None);
    }

    #[test]
    fn cone_follows_consumers_transitively() {
        let mut dag = DerivationDag::new();
        // Base atoms 0 and 1. App 0 consumes 0, creates 2. App 1 consumes
        // 2, creates 3. App 2 consumes only 1, creates 4.
        let a0 = dag.push_application(app(0, 0, vec![AtomId(0)], None));
        dag.record_atom(AtomId(2), a0);
        let a1 = dag.push_application(app(0, 1, vec![AtomId(2)], None));
        dag.record_atom(AtomId(3), a1);
        let a2 = dag.push_application(app(1, 2, vec![AtomId(1)], None));
        dag.record_atom(AtomId(4), a2);

        let (dead_apps, dead_atoms) = dag.cone_of(AtomId(0));
        assert_eq!(dead_apps, vec![a0, a1]);
        let mut atoms = dead_atoms;
        atoms.sort_unstable();
        assert_eq!(atoms, vec![AtomId(2), AtomId(3)]);
        // Retracting atom 1 only kills the independent branch.
        let (dead_apps, dead_atoms) = dag.cone_of(AtomId(1));
        assert_eq!(dead_apps, vec![a2]);
        assert_eq!(dead_atoms, vec![AtomId(4)]);
        // Untouched atoms have no cone.
        assert!(dag.cone_of(AtomId(4)).0.is_empty());
        assert_eq!(dag.consumers_of(AtomId(2)), &[a1]);
    }

    #[test]
    fn cone_handles_diamonds_once() {
        let mut dag = DerivationDag::new();
        // Diamond: base 0 feeds apps 0 and 1; both products feed app 2.
        let a0 = dag.push_application(app(0, 0, vec![AtomId(0)], None));
        dag.record_atom(AtomId(1), a0);
        let a1 = dag.push_application(app(1, 1, vec![AtomId(0)], None));
        dag.record_atom(AtomId(2), a1);
        let a2 = dag.push_application(app(2, 2, vec![AtomId(1), AtomId(2)], None));
        dag.record_atom(AtomId(3), a2);
        let (dead_apps, dead_atoms) = dag.cone_of(AtomId(0));
        assert_eq!(dead_apps, vec![a0, a1, a2]);
        assert_eq!(dead_atoms.len(), 3, "each cone atom appears once");
    }

    #[test]
    fn from_applications_rebuilds_every_index() {
        let mut orig = DerivationDag::new();
        let mut a = app(0, 0, vec![AtomId(0)], Some(AtomId(0)));
        a.born_nulls = vec![NullId(0)];
        let i0 = orig.push_application(a);
        orig.record_atom(AtomId(1), i0);
        let i1 = orig.push_application(app(1, 1, vec![AtomId(1)], None));
        orig.record_atom(AtomId(2), i1);

        let rebuilt = DerivationDag::from_applications(orig.applications().to_vec());
        assert_eq!(rebuilt.applications().len(), 2);
        assert_eq!(rebuilt.depth_of(AtomId(2)), 2);
        assert_eq!(rebuilt.null_birth(NullId(0)), Some(0));
        assert_eq!(rebuilt.minter_of(NullId(0)), Some(0));
        assert_eq!(rebuilt.consumers_of(AtomId(1)), &[1]);
        assert_eq!(rebuilt.creator_of(AtomId(1)).unwrap().rule, 0);
        assert_eq!(rebuilt.app(1).produced, vec![AtomId(2)]);
    }

    #[test]
    fn creator_and_produced_are_linked() {
        let mut dag = DerivationDag::new();
        let i = dag.push_application(app(2, 0, vec![AtomId(0)], None));
        dag.record_atom(AtomId(5), i);
        dag.record_atom(AtomId(6), i);
        let a = dag.creator_of(AtomId(5)).unwrap();
        assert_eq!(a.rule, 2);
        assert_eq!(a.produced, vec![AtomId(5), AtomId(6)]);
        assert!(dag.creator_of(AtomId(0)).is_none());
    }
}
