//! Runtime guardrails for chase runs: budgets with wall-clock and memory
//! ceilings, cooperative cancellation, and attributable stop reasons.
//!
//! The termination procedures only make sense when *non*-termination is
//! observable and survivable: a chase run must be stoppable — by step
//! count, by atom count, by wall-clock deadline, by memory ceiling, or by
//! an external cancellation signal — and every stop must be attributable
//! to a concrete [`StopReason`]. Experiment populations run thousands of
//! budgeted chase instances; production workloads need a run to die
//! cleanly when it outgrows its slot, not to take the process with it.
//!
//! All limits are *cooperative*: the [`crate::ChaseMachine`] hot loop
//! checks them between trigger applications, so a stopped run is always
//! left at a step boundary with a consistent instance, queue, and
//! derivation DAG — exactly the state [`crate::Checkpoint`] captures.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Budget limiting a chase run.
///
/// `max_applications` and `max_atoms` bound logical work; `max_wall`
/// bounds wall-clock time from the moment [`crate::ChaseMachine::run`] is
/// entered; `max_memory` bounds the *approximate* resident size of the
/// machine (instance + pending-trigger queue + trigger-identity set, in
/// bytes — an estimate from element counts and arities, not an allocator
/// measurement).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of trigger applications.
    pub max_applications: u64,
    /// Maximum number of atoms in the instance.
    pub max_atoms: usize,
    /// Wall-clock deadline for a single `run` call, if any.
    pub max_wall: Option<Duration>,
    /// Approximate memory ceiling in bytes, if any.
    pub max_memory: Option<usize>,
}

impl Budget {
    /// A budget with the given application cap and no other limits.
    pub fn applications(n: u64) -> Self {
        Budget { max_applications: n, ..Budget::unlimited() }
    }

    /// A budget with no limits at all (the chase runs to saturation or
    /// forever). Combine with the builder methods below.
    pub fn unlimited() -> Self {
        Budget {
            max_applications: u64::MAX,
            max_atoms: usize::MAX,
            max_wall: None,
            max_memory: None,
        }
    }

    /// Sets a wall-clock deadline.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Sets a wall-clock deadline in milliseconds.
    pub fn with_timeout_ms(self, ms: u64) -> Self {
        self.with_wall_clock(Duration::from_millis(ms))
    }

    /// Sets an approximate memory ceiling in bytes.
    pub fn with_memory(mut self, bytes: usize) -> Self {
        self.max_memory = Some(bytes);
        self
    }

    /// Sets an atom-count ceiling.
    pub fn with_atoms(mut self, atoms: usize) -> Self {
        self.max_atoms = atoms;
        self
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_applications: 100_000,
            max_atoms: 1_000_000,
            max_wall: None,
            max_memory: None,
        }
    }
}

/// Why a chase run stopped.
///
/// Exactly one reason is reported per `run` call. `Saturated` is the only
/// "the chase finished" reason; every other variant identifies the
/// guardrail that tripped first, so callers (and process exit codes) can
/// distinguish "model computed" from "budget spent" from "operator said
/// stop".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// No unconsidered trigger remains: the chase terminated and the
    /// instance is a universal model.
    Saturated,
    /// The trigger-application cap was reached.
    Applications,
    /// The instance hit the atom-count ceiling.
    Atoms,
    /// The wall-clock deadline passed.
    WallClock,
    /// The approximate memory ceiling was exceeded.
    Memory,
    /// A [`CancelToken`] was triggered.
    Cancelled,
    /// A durability write (journal append or sync) failed; the run stopped
    /// at a step boundary rather than chase on with an incomplete journal.
    Io,
}

impl StopReason {
    /// Whether the chase actually finished (vs. being cut off).
    #[inline]
    pub fn is_saturated(self) -> bool {
        matches!(self, StopReason::Saturated)
    }

    /// Whether the run was cut off before saturation (by any guardrail).
    #[inline]
    pub fn exhausted(self) -> bool {
        !self.is_saturated()
    }

    /// A stable lowercase keyword for logs, checkpoints, and the CLI.
    pub fn keyword(self) -> &'static str {
        match self {
            StopReason::Saturated => "saturated",
            StopReason::Applications => "applications",
            StopReason::Atoms => "atoms",
            StopReason::WallClock => "wall-clock",
            StopReason::Memory => "memory",
            StopReason::Cancelled => "cancelled",
            StopReason::Io => "io",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A cooperative cancellation signal, checked by the chase hot loop
/// between trigger applications.
///
/// Clone the token freely: all clones share one flag, so a controller
/// thread (a timeout supervisor, a signal handler, an experiment driver
/// tearing down a population) can stop a run owned by another thread.
/// Cancellation is sticky — a cancelled token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals cancellation to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been signalled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Approximate heap cost of one instance atom of the given arity: the
/// arena copy, the dedup-index key copy, and the per-position postings.
#[inline]
pub(crate) fn approx_atom_bytes(arity: usize) -> usize {
    96 + 32 * arity
}

/// Approximate heap cost of one pending trigger (rule index plus a
/// substitution over the rule's variables).
#[inline]
pub(crate) fn approx_trigger_bytes(var_count: usize) -> usize {
    48 + 8 * var_count
}

/// Approximate heap cost of one trigger-identity entry.
#[inline]
pub(crate) fn approx_identity_bytes(key_len: usize) -> usize {
    48 + 8 * key_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builders_compose() {
        let b = Budget::applications(10)
            .with_timeout_ms(250)
            .with_memory(1 << 20)
            .with_atoms(99);
        assert_eq!(b.max_applications, 10);
        assert_eq!(b.max_atoms, 99);
        assert_eq!(b.max_wall, Some(Duration::from_millis(250)));
        assert_eq!(b.max_memory, Some(1 << 20));

        let u = Budget::unlimited();
        assert_eq!(u.max_applications, u64::MAX);
        assert_eq!(u.max_atoms, usize::MAX);
        assert!(u.max_wall.is_none() && u.max_memory.is_none());
    }

    #[test]
    fn default_budget_matches_historical_limits() {
        let d = Budget::default();
        assert_eq!(d.max_applications, 100_000);
        assert_eq!(d.max_atoms, 1_000_000);
        assert!(d.max_wall.is_none() && d.max_memory.is_none());
    }

    #[test]
    fn stop_reason_classification() {
        assert!(StopReason::Saturated.is_saturated());
        for r in [
            StopReason::Applications,
            StopReason::Atoms,
            StopReason::WallClock,
            StopReason::Memory,
            StopReason::Cancelled,
            StopReason::Io,
        ] {
            assert!(r.exhausted(), "{r}");
            assert!(!r.is_saturated(), "{r}");
        }
        assert_eq!(StopReason::WallClock.to_string(), "wall-clock");
        assert_eq!(StopReason::Io.to_string(), "io");
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
    }
}
