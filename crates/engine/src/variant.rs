//! Chase variants and their trigger-identity semantics.

use chasekit_core::{Substitution, Term, Tgd};

/// The chase variant, which determines when two triggers for the same rule
/// are considered "the same" (and hence applied only once), and whether a
/// trigger is skipped when its head is already satisfied.
///
/// * **Oblivious** (o-chase): triggers are identified by the full
///   homomorphism on the body variables; no satisfaction check.
/// * **Semi-oblivious** (so-chase): homomorphisms agreeing on the rule's
///   *frontier* (universal variables occurring in the head) are
///   indistinguishable; no satisfaction check.
/// * **Restricted** (standard chase): a trigger applies only if no extension
///   of its frontier assignment already satisfies the head in the current
///   instance. Trigger identity is the frontier assignment (once applied or
///   satisfied, a frontier assignment stays satisfied forever, so
///   re-consideration is unnecessary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaseVariant {
    /// The oblivious chase.
    Oblivious,
    /// The semi-oblivious chase.
    SemiOblivious,
    /// The restricted (standard) chase under fair FIFO scheduling.
    Restricted,
}

impl ChaseVariant {
    /// Computes a trigger's identity key: the projection of the substitution
    /// onto the variables that distinguish triggers under this variant.
    pub fn trigger_key(self, rule: &Tgd, subst: &Substitution) -> Vec<Term> {
        match self {
            ChaseVariant::Oblivious => {
                // All universal variables, in ascending id order.
                rule.universals()
                    .iter()
                    .map(|&v| subst.get(v).expect("universal variable must be bound"))
                    .collect()
            }
            ChaseVariant::SemiOblivious | ChaseVariant::Restricted => rule
                .frontier()
                .iter()
                .map(|&v| subst.get(v).expect("frontier variable must be bound"))
                .collect(),
        }
    }

    /// Whether this variant checks head satisfaction before applying.
    #[inline]
    pub fn checks_satisfaction(self) -> bool {
        matches!(self, ChaseVariant::Restricted)
    }
}

impl std::fmt::Display for ChaseVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChaseVariant::Oblivious => "oblivious",
            ChaseVariant::SemiOblivious => "semi-oblivious",
            ChaseVariant::Restricted => "restricted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::{ConstId, Program, VarId};

    #[test]
    fn oblivious_keys_use_all_universals() {
        // r(X, Y) -> r(X, Z): frontier {X}, universals {X, Y}.
        let p = Program::parse("r(X, Y) -> r(X, Z).").unwrap();
        let rule = &p.rules()[0];
        let mut s = Substitution::new(rule.var_count());
        s.bind(VarId(0), Term::Const(ConstId(0)));
        s.bind(VarId(1), Term::Const(ConstId(1)));
        let o = ChaseVariant::Oblivious.trigger_key(rule, &s);
        let so = ChaseVariant::SemiOblivious.trigger_key(rule, &s);
        assert_eq!(o.len(), 2);
        assert_eq!(so.len(), 1);
        assert_eq!(so[0], Term::Const(ConstId(0)));
    }

    #[test]
    fn restricted_shares_semi_oblivious_identity() {
        let p = Program::parse("r(X, Y) -> r(Y, Z).").unwrap();
        let rule = &p.rules()[0];
        let mut s = Substitution::new(rule.var_count());
        s.bind(VarId(0), Term::Const(ConstId(0)));
        s.bind(VarId(1), Term::Const(ConstId(1)));
        assert_eq!(
            ChaseVariant::SemiOblivious.trigger_key(rule, &s),
            ChaseVariant::Restricted.trigger_key(rule, &s)
        );
        assert!(ChaseVariant::Restricted.checks_satisfaction());
        assert!(!ChaseVariant::Oblivious.checks_satisfaction());
    }

    #[test]
    fn display_names() {
        assert_eq!(ChaseVariant::Oblivious.to_string(), "oblivious");
        assert_eq!(ChaseVariant::SemiOblivious.to_string(), "semi-oblivious");
        assert_eq!(ChaseVariant::Restricted.to_string(), "restricted");
    }
}
