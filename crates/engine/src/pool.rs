//! A persistent worker pool for parallel trigger discovery.
//!
//! PR 2's round driver spawned a fresh `std::thread::scope` per round,
//! which priced every round at thread-creation cost — the dominant term on
//! small frontiers and the reason the committed bench showed parallel mode
//! losing to sequential. This pool is spawned **once** per
//! [`ChaseMachine`](crate::ChaseMachine) (lazily, on the first fanned-out
//! round), fed per-round [`RoundJob`]s over channels, parks between rounds
//! on a blocking `recv`, and is joined when the machine drops.
//!
//! ## Sharing without `unsafe`
//!
//! Every crate in this workspace forbids `unsafe`, so the pool cannot hand
//! borrowed instance references to long-lived threads. Instead the driver
//! moves the instance into an `Arc` for the duration of the discovery
//! phase and takes it back with `Arc::try_unwrap` afterwards. The handoff
//! is sound because `discover` is a strict barrier: every worker drops its
//! job (and with it its `Arc<Instance>` clone) **before** sending its
//! terminal `Done`/`Panicked` reply, and the driver waits for all
//! terminals before unwrapping — at that point the driver's clone is the
//! only one left. No copy of the instance is ever made.
//!
//! ## Work distribution and determinism
//!
//! Workers — **and the driver itself** — claim **chunks** of the round's
//! work-item list through a shared atomic cursor (claim order is racy;
//! result order is not: every chunk carries its start index and results
//! are slotted back by position). Driver participation matters most on
//! low-core hosts: instead of parking on `recv` and paying a context
//! switch per chunk, the driver matches inline until the cursor runs dry,
//! so a single-core run degrades to (almost) the sequential loop plus two
//! wake-and-`Done` handshakes per round. Matching itself is read-only
//! against horizon-pinned prefix views, so which thread processes which
//! item is invisible to the merged result — the same argument as PR 2,
//! with chunking cutting channel traffic by the chunk factor on wide
//! frontiers.
//!
//! The driver's own chunks never travel through the reply channel — it
//! slots them directly. That is not just a shortcut: worker chunks are
//! ordered before that worker's terminal by sender FIFO, so draining
//! `threads` terminals provably drains every worker chunk, but a
//! channel-borne driver chunk would have **no** terminal ordering it
//! against the workers' `Done`s and could be stranded past the barrier.
//!
//! ## Panics and cancellation
//!
//! Each job runs under `catch_unwind`; an injected failpoint panic (the
//! crash-recovery suite's `round.worker` site) is reported as a
//! [`Reply::Panicked`] terminal. The driver still drains the full barrier
//! (keeping the pool reusable and the `Arc` handoff sound), restores the
//! instance, and only then resumes the unwind — so a worker panic still
//! unwinds out of `run_parallel` exactly as the scoped version did.
//! Workers poll the cancel token / deadline between chunks and record
//! trips in the job's `observed` flag; discovery always runs to
//! completion so the already-applied round stays checkpoint-consistent
//! (PR 2's probe semantics, unchanged).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use chasekit_core::{Instance, InstanceView, MatchScratch, Program, Substitution};

use crate::chase::matches_pinned;
use crate::guard::CancelToken;
use crate::round::WorkItem;

/// One round's discovery work, shared with every worker.
struct RoundJob {
    instance: Arc<Instance>,
    items: Arc<Vec<WorkItem>>,
    /// Shared claim cursor: each `fetch_add(chunk)` claims the next chunk.
    next: Arc<AtomicUsize>,
    /// Set by workers when the cancel token / deadline trips mid-round.
    observed: Arc<AtomicBool>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    chunk: usize,
}

impl RoundJob {
    fn tripped(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Worker → driver replies for one job.
enum Reply {
    /// Matches for the chunk of items starting at `start`, in item order.
    Chunk { start: usize, homs: Vec<Vec<Substitution>> },
    /// This worker finished the job (its job handle is already dropped).
    Done,
    /// This worker's job panicked (payload to re-raise after the barrier).
    Panicked(Box<dyn Any + Send>),
}

/// The persistent discovery pool. See the module docs.
pub(crate) struct DiscoveryPool {
    threads: usize,
    /// For the driver's own `run_job` participation (workers carry their
    /// own clones).
    program: Arc<Program>,
    job_txs: Vec<Sender<RoundJob>>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for DiscoveryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscoveryPool").field("threads", &self.threads).finish_non_exhaustive()
    }
}

impl DiscoveryPool {
    /// Spawns `threads` workers (parked until the first job). The program
    /// is cloned once here so workers can outlive the driver's borrow.
    pub(crate) fn new(program: &Program, threads: usize) -> Self {
        assert!(threads >= 2, "a pool below two workers is never profitable");
        let program = Arc::new(program.clone());
        let (reply_tx, reply_rx) = channel::<Reply>();
        let mut job_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (job_tx, job_rx) = channel::<RoundJob>();
            job_txs.push(job_tx);
            let program = Arc::clone(&program);
            let replies = reply_tx.clone();
            handles.push(std::thread::spawn(move || worker(program, job_rx, replies)));
        }
        DiscoveryPool { threads, program, job_txs, reply_rx, handles }
    }

    /// Number of workers the pool was built with.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every work item against `instance` and returns the per-item
    /// matches in item order. A strict barrier: returns only after every
    /// worker has finished the job and dropped its handles, so on return
    /// the caller's `Arc`s are the only ones left.
    ///
    /// Returns `Err(payload)` if any worker's job panicked; the caller is
    /// expected to resume the unwind once it has restored its state.
    #[allow(clippy::type_complexity)]
    pub(crate) fn discover(
        &self,
        instance: Arc<Instance>,
        items: Arc<Vec<WorkItem>>,
        cancel: Option<CancelToken>,
        deadline: Option<Instant>,
        observed: Arc<AtomicBool>,
        scratch: &mut MatchScratch,
    ) -> Result<Vec<Vec<Substitution>>, Box<dyn Any + Send>> {
        // Aim for ~4 claims per worker to balance scheduling slack against
        // cursor contention and channel traffic; cap so one chunk's reply
        // stays small.
        let chunk = (items.len() / (self.threads * 4)).clamp(1, 64);
        let next = Arc::new(AtomicUsize::new(0));
        for tx in &self.job_txs {
            let job = RoundJob {
                instance: Arc::clone(&instance),
                items: Arc::clone(&items),
                next: Arc::clone(&next),
                observed: Arc::clone(&observed),
                cancel: cancel.clone(),
                deadline,
                chunk,
            };
            tx.send(job).expect("pool workers outlive the machine");
        }

        // The driver claims chunks too instead of parking on `recv`: on a
        // multi-core host it is one more lane; on a single-core host it
        // does nearly all the matching itself (workers only get scheduled
        // once it blocks draining the barrier, find the cursor exhausted,
        // and reply `Done`) — which is what keeps the t2-vs-t1 overhead
        // near 1 instead of paying context switches per chunk. Its chunks
        // go straight into a local vec, not the reply channel: nothing
        // would order them before the workers' terminals (module docs).
        // Same catch_unwind discipline as the workers: a failpoint panic
        // here must not skip the barrier.
        let driver_job = RoundJob {
            instance: Arc::clone(&instance),
            items: Arc::clone(&items),
            next,
            observed,
            cancel,
            deadline,
            chunk,
        };
        let mut mine: Vec<(usize, Vec<Vec<Substitution>>)> = Vec::new();
        let driver_outcome = catch_unwind(AssertUnwindSafe(|| {
            run_job(&self.program, &driver_job, scratch, &mut |start, homs| {
                mine.push((start, homs));
                true
            })
        }));
        drop(driver_job);

        let mut slots: Vec<Option<Vec<Substitution>>> = (0..items.len()).map(|_| None).collect();
        for (start, homs) in mine {
            for (offset, h) in homs.into_iter().enumerate() {
                slots[start + offset] = Some(h);
            }
        }
        let mut terminals = 0;
        let mut panicked: Option<Box<dyn Any + Send>> = driver_outcome.err();
        while terminals < self.threads {
            match self.reply_rx.recv().expect("pool workers outlive the machine") {
                Reply::Chunk { start, homs } => {
                    for (offset, h) in homs.into_iter().enumerate() {
                        slots[start + offset] = Some(h);
                    }
                }
                Reply::Done => terminals += 1,
                Reply::Panicked(payload) => {
                    terminals += 1;
                    panicked = Some(payload);
                }
            }
        }
        if let Some(payload) = panicked {
            return Err(payload);
        }
        Ok(slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| panic!("work item {idx} was never processed"))
            })
            .collect())
    }
}

impl Drop for DiscoveryPool {
    fn drop(&mut self) {
        // Closing the job channels wakes every parked worker with a recv
        // error; join so no thread outlives the machine.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop: parked on `recv` between rounds, one scratch for life.
fn worker(program: Arc<Program>, jobs: Receiver<RoundJob>, replies: Sender<Reply>) {
    let mut scratch = MatchScratch::default();
    while let Ok(job) = jobs.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_job(&program, &job, &mut scratch, &mut |start, homs| {
                replies.send(Reply::Chunk { start, homs }).is_ok()
            })
        }));
        // Drop the job — and with it this worker's Arc<Instance> clone —
        // strictly before the terminal reply: the driver unwraps the Arc
        // as soon as the barrier closes.
        drop(job);
        let terminal = match outcome {
            Ok(()) => Reply::Done,
            Err(payload) => Reply::Panicked(payload),
        };
        if replies.send(terminal).is_err() {
            return;
        }
    }
}

/// Claims and matches chunks until the cursor passes the end of the list,
/// handing each chunk's results to `deliver` (which returns `false` to
/// stop early, e.g. on a closed reply channel).
fn run_job(
    program: &Program,
    job: &RoundJob,
    scratch: &mut MatchScratch,
    deliver: &mut dyn FnMut(usize, Vec<Vec<Substitution>>) -> bool,
) {
    let items: &[WorkItem] = &job.items;
    loop {
        if job.tripped() {
            job.observed.store(true, Ordering::Relaxed);
        }
        let start = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= items.len() {
            return;
        }
        let end = (start + job.chunk).min(items.len());
        let mut homs = Vec::with_capacity(end - start);
        for item in &items[start..end] {
            // Failpoint: the crash-recovery suite injects worker panics
            // here to prove a dead round leaves nothing behind.
            crate::failpoint::trip(crate::failpoint::points::ROUND_WORKER);
            let view = InstanceView::prefix(&job.instance, item.horizon);
            homs.push(matches_pinned(program, &view, item.rule, item.atom, scratch));
        }
        if !deliver(start, homs) {
            return;
        }
    }
}
