//! The chase machine: a fair, stepwise executor for all chase variants.
//!
//! The machine keeps a FIFO queue of pending triggers (fairness: every
//! trigger that arises is eventually considered) and a per-variant identity
//! set so that each trigger is applied at most once. New triggers are
//! discovered incrementally: when an atom is added, only body atoms with the
//! matching predicate are re-matched, pinned to the new atom.
//!
//! Budgets make non-termination observable: a run either **saturates**
//! (terminating chase — the result is a universal model) or stops at a
//! guardrail (the caller decides what that means; the termination
//! procedures pair budgets with divergence certificates). Every stop is
//! attributed to a [`StopReason`]; budgets, deadlines, memory ceilings,
//! and cancellation live in [`crate::guard`].

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::time::Instant;

use chasekit_core::{
    exists_extension, exists_extension_scratch, for_each_hom, for_each_hom_scratch, AtomId,
    FxHashMap, FxHashSet, Instance, InstanceView, MatchScratch, NullId, Program, Substitution,
    Term,
};

use crate::derivation::{Application, DerivationDag};
use crate::guard::{
    approx_atom_bytes, approx_identity_bytes, approx_trigger_bytes, Budget, CancelToken,
    StopReason,
};
use crate::trace::{core_seq, ProgressMeter, ProgressReport, TraceEvent, TraceHandle, TraceSink};
use crate::variant::ChaseVariant;

/// Static configuration of a chase machine.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Which chase variant to run.
    pub variant: ChaseVariant,
    /// Record the derivation DAG (needed by the guarded termination
    /// procedure; costs memory proportional to the run).
    pub track_derivation: bool,
    /// Track Skolem-term ancestry of nulls and flag *cyclic* terms (a null
    /// whose Skolem function symbol occurs in its own ancestry). Used by
    /// model-faithful acyclicity (MFA).
    pub track_skolem: bool,
    /// Ablation switch: disable delta-driven trigger discovery and re-match
    /// every rule body from scratch after each application. Semantically
    /// identical (the identity set deduplicates), asymptotically worse; kept
    /// to measure what incremental matching buys (see `benches/ablation.rs`).
    pub naive_matching: bool,
    /// Trigger scheduling policy. Irrelevant for the oblivious and
    /// semi-oblivious chase (their termination is order-independent,
    /// CT∀ = CT∃), but the **restricted** chase is order-dependent:
    /// different fair orders can terminate or diverge on the same input.
    /// `Random` draws the next trigger uniformly (seeded xorshift; fair
    /// with probability 1), which lets experiments explore CT∃ behaviour.
    pub scheduling: Scheduling,
}

/// Trigger scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// First-in-first-out: the canonical deterministic fair order.
    Fifo,
    /// Uniform random selection among pending triggers, seeded.
    Random(u64),
}

impl ChaseConfig {
    /// Configuration for a plain run of the given variant.
    pub fn of(variant: ChaseVariant) -> Self {
        ChaseConfig {
            variant,
            track_derivation: false,
            track_skolem: false,
            naive_matching: false,
            scheduling: Scheduling::Fifo,
        }
    }

    /// Switches to seeded random trigger scheduling.
    pub fn with_random_scheduling(mut self, seed: u64) -> Self {
        self.scheduling = Scheduling::Random(seed);
        self
    }

    /// Ablation: switch to naive (non-incremental) trigger discovery.
    pub fn with_naive_matching(mut self) -> Self {
        self.naive_matching = true;
        self
    }

    /// Enables derivation tracking.
    pub fn with_derivation(mut self) -> Self {
        self.track_derivation = true;
        self
    }

    /// Enables Skolem cyclicity tracking.
    pub fn with_skolem(mut self) -> Self {
        self.track_skolem = true;
        self
    }
}

/// Counters describing a chase run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChaseStats {
    /// Trigger applications performed.
    pub applications: u64,
    /// Atoms added (beyond the initial instance).
    pub atoms_added: u64,
    /// Head-atom images that already existed.
    pub duplicate_atoms: u64,
    /// Triggers enqueued (after identity dedup).
    pub triggers_enqueued: u64,
    /// Candidate triggers dropped because their identity was already seen.
    pub triggers_deduped: u64,
    /// Restricted chase only: triggers skipped because the head was
    /// already satisfied.
    pub satisfied_skips: u64,
    /// Nulls minted.
    pub nulls_minted: u64,
}

/// One applied chase step.
#[derive(Debug, Clone)]
pub struct StepEvent {
    /// Sequence number of the application.
    pub seq: u64,
    /// Atoms the application added (may be empty for duplicate head images).
    pub new_atoms: Vec<AtomId>,
}

#[derive(Debug)]
pub(crate) struct Trigger {
    pub(crate) rule: usize,
    pub(crate) subst: Substitution,
}

/// Skolem ancestry info for one null: its function tag `(rule, exvar)` and
/// the set of tags occurring in its arguments' ancestries.
#[derive(Debug, Clone)]
pub(crate) struct SkolemInfo {
    pub(crate) tag: u32,
    pub(crate) ancestry: FxHashSet<u32>,
}

/// A stepwise chase executor. See the module docs.
#[derive(Debug)]
pub struct ChaseMachine<'p> {
    pub(crate) program: &'p Program,
    pub(crate) config: ChaseConfig,
    pub(crate) instance: Instance,
    pub(crate) queue: VecDeque<Trigger>,
    pub(crate) seen: FxHashSet<(u32, Vec<Term>)>,
    pub(crate) derivation: DerivationDag,
    pub(crate) stats: ChaseStats,
    pub(crate) skolem: FxHashMap<NullId, SkolemInfo>,
    pub(crate) skolem_cyclic: Option<NullId>,
    pub(crate) next_seq: u64,
    pub(crate) rng_state: u64,
    /// Approximate resident bytes of instance + queue + identity set,
    /// maintained incrementally (see `guard::approx_*_bytes`).
    pub(crate) approx_bytes: usize,
    pub(crate) cancel: Option<CancelToken>,
    /// Round/worker counters of the parallel driver (see [`crate::round`]);
    /// kept out of `ChaseStats` so chase counters stay mode-independent.
    pub(crate) round_stats: crate::round::RoundStats,
    /// Installed trace sink, if any. Strictly observational: state
    /// transitions are identical with or without it (see [`crate::trace`]).
    pub(crate) trace: Option<TraceHandle>,
    /// Periodic progress reporter, polled on the guard-poll cadence.
    pub(crate) progress: Option<ProgressMeter>,
    /// Write-ahead journal, one record per [`apply_core`](Self::apply_core)
    /// — the apply phase is sequential in both drivers, so sequential and
    /// parallel-round runs write bit-identical journals. A failed append
    /// latches a sticky error and the run loops stop with
    /// [`StopReason::Io`] at the next step boundary.
    pub(crate) journal: Option<crate::journal::JournalWriter>,
    /// Reusable matcher buffers for the sequential discovery and
    /// satisfaction-check paths; parallel-round workers own their own.
    pub(crate) scratch: MatchScratch,
    /// Reusable head-image argument buffer for [`apply_core`](Self::apply_core).
    pub(crate) args_buf: Vec<Term>,
    /// Persistent discovery worker pool, created lazily by the
    /// parallel-round driver on the first fanned-out round and kept across
    /// rounds (see [`crate::pool`]). Joined on drop.
    pub(crate) pool: Option<crate::pool::DiscoveryPool>,
    /// Triggers the restricted variant skipped as already satisfied,
    /// recorded only when `track_derivation` is on. Incremental retraction
    /// must re-open a skip whose satisfaction witness was deleted
    /// (see [`crate::incremental`]); untracked runs record nothing.
    pub(crate) skipped: Vec<Trigger>,
}

impl<'p> ChaseMachine<'p> {
    /// Creates a machine over `initial` and enqueues all initial triggers.
    pub fn new(program: &'p Program, config: ChaseConfig, initial: Instance) -> Self {
        Self::build(program, config, initial, None)
    }

    /// Creates a machine with `sink` installed *before* the initial trigger
    /// discovery, so the trace covers the initial admissions too (sequence
    /// numbers start at 0). For resuming a traced run from a checkpoint,
    /// use [`set_trace_sink`](Self::set_trace_sink) instead.
    pub fn new_with_trace(
        program: &'p Program,
        config: ChaseConfig,
        initial: Instance,
        sink: Box<dyn TraceSink>,
    ) -> Self {
        Self::build(program, config, initial, Some(TraceHandle::new(sink, 0)))
    }

    fn build(
        program: &'p Program,
        config: ChaseConfig,
        initial: Instance,
        trace: Option<TraceHandle>,
    ) -> Self {
        let initial_bytes: usize =
            initial.iter().map(|(_, a)| approx_atom_bytes(a.arity())).sum();
        let mut machine = ChaseMachine {
            program,
            config,
            instance: initial,
            queue: VecDeque::new(),
            seen: FxHashSet::default(),
            derivation: DerivationDag::new(),
            stats: ChaseStats::default(),
            skolem: FxHashMap::default(),
            skolem_cyclic: None,
            next_seq: 0,
            rng_state: match config.scheduling {
                Scheduling::Fifo => 0,
                // Avoid the all-zero fixpoint of xorshift.
                Scheduling::Random(seed) => seed | 1,
            },
            approx_bytes: initial_bytes,
            cancel: None,
            round_stats: crate::round::RoundStats::default(),
            trace,
            progress: None,
            journal: None,
            scratch: MatchScratch::default(),
            args_buf: Vec::new(),
            pool: None,
            skipped: Vec::new(),
        };
        for rule_idx in 0..program.rules().len() {
            machine.enqueue_matches(rule_idx, None);
        }
        machine
    }

    /// Installs a cancellation token; [`run`](Self::run) checks it between
    /// trigger applications. Clone the token before installing it to keep a
    /// handle for the controlling thread.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Installs a trace sink on a machine mid-run (typically right after a
    /// checkpoint resume). The sink's sequence counter continues from
    /// [`core_seq`] of the current stats, so a trace split across an
    /// interrupt/resume concatenates with contiguous numbering.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(TraceHandle::new(sink, core_seq(&self.stats)));
    }

    /// Emits a lifecycle event (e.g. [`TraceEvent::CheckpointWrite`]) into
    /// the installed sink, at the current sequence number. No-op without a
    /// sink; core events are rejected (they are the machine's own).
    pub fn trace_note(&mut self, event: TraceEvent) {
        assert!(!event.is_core(), "core events are emitted by the machine itself");
        if let Some(t) = &mut self.trace {
            t.note(event);
        }
    }

    /// Flushes the installed trace sink, if any.
    pub fn flush_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.flush();
        }
    }

    /// Installs a write-ahead journal; every subsequent application appends
    /// one record. Strictly observational — the chase's deterministic state
    /// is identical with or without it.
    pub fn set_journal(&mut self, journal: crate::journal::JournalWriter) {
        self.journal = Some(journal);
    }

    /// Removes and returns the installed journal (e.g. to sync and re-base
    /// it around a snapshot).
    pub fn take_journal(&mut self) -> Option<crate::journal::JournalWriter> {
        self.journal.take()
    }

    /// The journal's sticky append error, if an installed journal has
    /// failed. The run loops poll this and stop with [`StopReason::Io`].
    pub fn journal_failed(&self) -> Option<&str> {
        self.journal.as_ref().and_then(|j| j.failed())
    }

    /// Installs a periodic progress callback, fired at most every `every`
    /// on the guard-poll cadence of [`run`](Self::run) /
    /// [`run_parallel`](Self::run_parallel). Reads the wall clock but
    /// never touches deterministic state.
    pub fn set_progress(
        &mut self,
        every: std::time::Duration,
        callback: Box<dyn FnMut(&ProgressReport) + Send>,
    ) {
        self.progress = Some(ProgressMeter::new(every, self.stats.applications, callback));
    }

    /// Fires the progress callback if its interval elapsed.
    pub(crate) fn poll_progress(&mut self) {
        if let Some(p) = &mut self.progress {
            p.poll(
                self.stats.applications,
                self.instance.len(),
                self.queue.len(),
                self.approx_bytes,
            );
        }
    }

    /// The approximate resident size of the machine in bytes (instance +
    /// pending-trigger queue + trigger-identity set). An estimate from
    /// element counts and arities — cheap enough for the hot loop, not an
    /// allocator measurement.
    pub fn approx_memory_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Consumes the machine, returning the instance.
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// The derivation DAG (empty unless `track_derivation` was set).
    pub fn derivation(&self) -> &DerivationDag {
        &self.derivation
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// The first cyclic Skolem null found, if `track_skolem` was set and one
    /// occurred.
    pub fn skolem_cyclic(&self) -> Option<NullId> {
        self.skolem_cyclic
    }

    /// Number of pending (not yet considered) triggers.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Finds triggers for `rule_idx`, optionally pinned to a new atom, and
    /// enqueues the identity-fresh ones.
    pub(crate) fn enqueue_matches(&mut self, rule_idx: usize, pinned: Option<AtomId>) {
        let rule = &self.program.rules()[rule_idx];

        // Collect first (can't borrow self mutably inside the closure).
        let found: Vec<Substitution> = match pinned {
            None => {
                let mut found = Vec::new();
                for_each_hom_scratch(
                    rule.body(),
                    rule.var_count(),
                    &InstanceView::full(&self.instance),
                    None,
                    None,
                    &mut self.scratch,
                    &mut |s| {
                        found.push(s.clone());
                        ControlFlow::Continue(())
                    },
                );
                found
            }
            Some(atom_id) => matches_pinned(
                self.program,
                &InstanceView::full(&self.instance),
                rule_idx,
                atom_id,
                &mut self.scratch,
            ),
        };

        for subst in found {
            self.admit_trigger(rule_idx, subst);
        }
    }

    /// Admits one candidate trigger: dedups it against the identity set and
    /// enqueues it if fresh, updating stats and the memory estimate. This is
    /// the single merge point for both the sequential path and the
    /// parallel-round driver, so admission order fully determines queue
    /// order, the identity set, and the enqueue/dedup counters.
    pub(crate) fn admit_trigger(&mut self, rule_idx: usize, subst: Substitution) {
        let rule = &self.program.rules()[rule_idx];
        let key = self.config.variant.trigger_key(rule, &subst);
        let key_len = key.len();
        if self.seen.insert((rule_idx as u32, key)) {
            self.stats.triggers_enqueued += 1;
            if let Some(t) = &mut self.trace {
                t.core(TraceEvent::TriggerAdmitted { rule: rule_idx });
            }
            self.approx_bytes +=
                approx_identity_bytes(key_len) + approx_trigger_bytes(subst.len());
            self.queue.push_back(Trigger { rule: rule_idx, subst });
        } else {
            self.stats.triggers_deduped += 1;
            if let Some(t) = &mut self.trace {
                t.core(TraceEvent::TriggerDeduped { rule: rule_idx });
            }
        }
    }

    /// Draws the next trigger according to the scheduling policy.
    pub(crate) fn next_trigger(&mut self) -> Option<Trigger> {
        let drawn = match self.config.scheduling {
            Scheduling::Fifo => self.queue.pop_front(),
            Scheduling::Random(_) => {
                if self.queue.is_empty() {
                    return None;
                }
                // xorshift64*
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                let idx = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) as usize) % self.queue.len();
                self.queue.swap_remove_back(idx)
            }
        };
        if let Some(t) = &drawn {
            self.approx_bytes =
                self.approx_bytes.saturating_sub(approx_trigger_bytes(t.subst.len()));
        }
        drawn
    }

    /// Applies the next applicable trigger. Returns `None` when no trigger
    /// remains (the chase is saturated).
    pub fn step(&mut self) -> Option<StepEvent> {
        loop {
            let trigger = self.next_trigger()?;
            if self.skip_if_satisfied(&trigger) {
                continue;
            }
            return Some(self.apply(trigger));
        }
    }

    /// The restricted chase's merge-time re-check: whether the trigger's
    /// head is already satisfied in the *current* instance (in which case
    /// it is counted as a skip). Always false for the (semi-)oblivious
    /// variants.
    pub(crate) fn skip_if_satisfied(&mut self, trigger: &Trigger) -> bool {
        let rule = &self.program.rules()[trigger.rule];
        if self.config.variant.checks_satisfaction()
            && exists_extension_scratch(
                rule.head(),
                rule.var_count(),
                &self.instance,
                &trigger.subst,
                &mut self.scratch,
            )
        {
            self.stats.satisfied_skips += 1;
            if self.config.track_derivation {
                // Remember the skip so incremental retraction can re-open
                // it if its satisfaction witness is later deleted (see
                // `crate::incremental`). Only derivation-tracked machines
                // are updatable, so untracked runs pay nothing.
                self.skipped.push(Trigger {
                    rule: trigger.rule,
                    subst: trigger.subst.clone(),
                });
                self.approx_bytes += approx_trigger_bytes(trigger.subst.len());
            }
            if let Some(t) = &mut self.trace {
                t.core(TraceEvent::TriggerSkipped { rule: trigger.rule });
            }
            true
        } else {
            false
        }
    }

    /// Applies one trigger unconditionally and discovers the triggers its
    /// new atoms enable (the sequential path; also the parallel driver's
    /// narrow-round path, where a frontier too small to fan out is cheaper
    /// to chase inline than to batch through the two-phase split).
    pub(crate) fn apply(&mut self, trigger: Trigger) -> StepEvent {
        let event = self.apply_core(trigger);

        // Discover triggers enabled by the new atoms.
        if self.config.naive_matching {
            if !event.new_atoms.is_empty() {
                for rule_idx in 0..self.program.rules().len() {
                    self.enqueue_matches(rule_idx, None);
                }
            }
        } else {
            for &id in &event.new_atoms {
                for rule_idx in 0..self.program.rules().len() {
                    self.enqueue_matches(rule_idx, Some(id));
                }
            }
        }

        event
    }

    /// Applies one trigger unconditionally *without* trigger discovery:
    /// extends the substitution with fresh nulls, inserts the head images,
    /// and records derivation/Skolem state. The parallel-round driver calls
    /// this for every trigger of a round and defers discovery to the
    /// round's parallel matching phase.
    pub(crate) fn apply_core(&mut self, trigger: Trigger) -> StepEvent {
        let rule = &self.program.rules()[trigger.rule];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.applications += 1;

        // Capture the trigger's identity key before existential binding
        // (it is a projection onto universal variables only). Retraction
        // repair needs it to release `seen` entries for dead matches.
        let key = if self.config.track_derivation {
            self.config.variant.trigger_key(rule, &trigger.subst)
        } else {
            Vec::new()
        };

        // Extend the substitution with fresh nulls for the existentials.
        let mut subst = trigger.subst;
        let mut born = Vec::with_capacity(rule.existentials().len());
        for &ex in rule.existentials() {
            let null = self.instance.fresh_null();
            self.stats.nulls_minted += 1;
            born.push(null);
            subst.bind(ex, Term::Null(null));
        }

        let frontier: Vec<Term> = rule.frontier().iter().map(|&v| subst.get(v).unwrap()).collect();

        if self.config.track_skolem && !born.is_empty() {
            self.record_skolem(trigger.rule, rule.existentials(), &born, &frontier);
        }

        // Resolve parents before inserting new atoms.
        let (parents, primary_parent) = if self.config.track_derivation {
            let parents: Vec<AtomId> = rule
                .body()
                .iter()
                .map(|a| {
                    let image = subst.apply_atom(a);
                    self.instance
                        .id_of(&image)
                        .expect("body image must be in the instance")
                })
                .collect();
            // The primary parent anchors ancestor chains: the guard image
            // for guarded rules, the first body image otherwise.
            let primary = rule
                .guard_index()
                .map(|g| parents[g])
                .or_else(|| parents.first().copied());
            (parents, primary)
        } else {
            (Vec::new(), None)
        };

        let app_idx = if self.config.track_derivation {
            Some(self.derivation.push_application(Application {
                rule: trigger.rule,
                seq,
                parents,
                primary_parent,
                frontier,
                key,
                born_nulls: born,
                produced: Vec::new(),
            }))
        } else {
            // Null births still matter for the skolem/cyclicity machinery,
            // but that is tracked separately; nothing to record here.
            None
        };

        let mut new_atoms = Vec::new();
        let mut duplicates = 0usize;
        for head_atom in rule.head() {
            // Build the head image in the reusable buffer; `insert_terms`
            // copies it into the arena only when the atom is new.
            let mut args_buf = std::mem::take(&mut self.args_buf);
            args_buf.clear();
            args_buf.extend(head_atom.args.iter().map(|&t| subst.apply(t)));
            let arity = args_buf.len();
            let (id, is_new) = self.instance.insert_terms(head_atom.pred, &args_buf);
            self.args_buf = args_buf;
            if is_new {
                self.stats.atoms_added += 1;
                self.approx_bytes += approx_atom_bytes(arity);
                if let Some(app) = app_idx {
                    self.derivation.record_atom(id, app);
                }
                new_atoms.push(id);
            } else {
                self.stats.duplicate_atoms += 1;
                duplicates += 1;
            }
        }

        if let Some(j) = &mut self.journal {
            j.append(self.stats.applications, self.instance.len(), self.instance.null_count());
        }

        if let Some(t) = &mut self.trace {
            t.core(TraceEvent::Applied {
                app: seq,
                rule: trigger.rule,
                new_atoms: new_atoms.len(),
                duplicates,
            });
            for &id in &new_atoms {
                t.core(TraceEvent::AtomInserted {
                    atom: id.index() as u32,
                    pred: self.instance.atom(id).pred.0,
                    rule: trigger.rule,
                    app: seq,
                });
            }
        }

        StepEvent { seq, new_atoms }
    }

    /// Records Skolem ancestry for freshly minted nulls and flags cyclic
    /// terms.
    fn record_skolem(
        &mut self,
        rule_idx: usize,
        exvars: &[chasekit_core::VarId],
        born: &[NullId],
        frontier: &[Term],
    ) {
        // Ancestry of the arguments: union over frontier nulls of
        // (their ancestry ∪ their own tag).
        let mut ancestry: FxHashSet<u32> = FxHashSet::default();
        for t in frontier {
            if let Term::Null(n) = *t {
                if let Some(info) = self.skolem.get(&n) {
                    ancestry.insert(info.tag);
                    ancestry.extend(info.ancestry.iter().copied());
                }
            }
        }
        for (i, &null) in born.iter().enumerate() {
            // Tag = (rule, existential variable), densely encoded.
            let tag = (rule_idx as u32) << 8 | (exvars[i].0 & 0xff);
            if ancestry.contains(&tag) && self.skolem_cyclic.is_none() {
                self.skolem_cyclic = Some(null);
            }
            self.skolem.insert(null, SkolemInfo { tag, ancestry: ancestry.clone() });
        }
    }

    /// Runs until saturation or the first guardrail: application cap, atom
    /// cap, wall-clock deadline, memory ceiling, or cancellation. Always
    /// stops at a step boundary, so the instance, queue, and derivation DAG
    /// stay consistent (and snapshot-able) whatever the reason.
    pub fn run(&mut self, budget: &Budget) -> StopReason {
        let stop = self.run_loop(budget);
        self.finish(stop)
    }

    fn run_loop(&mut self, budget: &Budget) -> StopReason {
        let start = Instant::now();
        // Wall-clock and memory are polled every `PERIOD` applications;
        // both are cheap, but not hot-loop cheap on microsecond steps.
        const PERIOD: u64 = 32;
        loop {
            if self.stats.applications >= budget.max_applications {
                return self.boundary(StopReason::Applications);
            }
            if self.instance.len() >= budget.max_atoms {
                return self.boundary(StopReason::Atoms);
            }
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return self.boundary(StopReason::Cancelled);
                }
            }
            if self.journal_failed().is_some() {
                return self.boundary(StopReason::Io);
            }
            if self.stats.applications.is_multiple_of(PERIOD) {
                if let Some(limit) = budget.max_wall {
                    if start.elapsed() >= limit {
                        return self.boundary(StopReason::WallClock);
                    }
                }
                if let Some(ceiling) = budget.max_memory {
                    if self.approx_bytes >= ceiling {
                        return self.boundary(StopReason::Memory);
                    }
                }
                self.poll_progress();
            }
            if self.step().is_none() {
                return StopReason::Saturated;
            }
        }
    }

    /// Closes a run for tracing purposes: a guardrail stop is noted as a
    /// guard-trip execution event, every stop as a lifecycle stop event,
    /// and the sink is flushed. State is untouched, so calling `run` again
    /// (a new leg of the same machine) simply appends to the trace.
    pub(crate) fn finish(&mut self, stop: StopReason) -> StopReason {
        if let Some(t) = &mut self.trace {
            if stop != StopReason::Saturated {
                t.note(TraceEvent::GuardTrip { reason: stop });
            }
            t.note(TraceEvent::Stop {
                reason: stop,
                applications: self.stats.applications,
                atoms: self.instance.len(),
            });
            t.flush();
        }
        stop
    }

    /// A guardrail tripped — but if no trigger is pending the chase in fact
    /// saturated exactly at the boundary, which takes precedence.
    pub(crate) fn boundary(&self, reason: StopReason) -> StopReason {
        if self.queue.is_empty() {
            StopReason::Saturated
        } else {
            reason
        }
    }
}

/// Candidate triggers for `rule_idx` pinned to `atom_id`, matched against
/// `view`, in the matcher's deterministic enumeration order (body position,
/// then join order). Pure with respect to the machine: both the sequential
/// path (with a full view of the live instance) and the parallel-round
/// workers (with a prefix view at the producing application's boundary)
/// funnel through this function, which is what makes their discovered
/// trigger sequences coincide.
pub(crate) fn matches_pinned(
    program: &Program,
    view: &InstanceView<'_>,
    rule_idx: usize,
    atom_id: AtomId,
    scratch: &mut MatchScratch,
) -> Vec<Substitution> {
    let rule = &program.rules()[rule_idx];
    let pred = view.atom(atom_id).pred;
    let mut found = Vec::new();
    for (body_idx, body_atom) in rule.body().iter().enumerate() {
        if body_atom.pred != pred {
            continue;
        }
        for_each_hom_scratch(
            rule.body(),
            rule.var_count(),
            view,
            None,
            Some((body_idx, atom_id)),
            scratch,
            &mut |s| {
                found.push(s.clone());
                ControlFlow::Continue(())
            },
        );
    }
    found
}

/// Result of a one-shot chase run.
#[derive(Debug)]
pub struct ChaseResult {
    /// How the run ended.
    pub outcome: StopReason,
    /// The final (or partial, on budget exhaustion) instance.
    pub instance: Instance,
    /// Run statistics.
    pub stats: ChaseStats,
}

/// Convenience: runs the chase of `program` on `initial` to completion or
/// budget exhaustion.
pub fn chase(
    program: &Program,
    variant: ChaseVariant,
    initial: Instance,
    budget: &Budget,
) -> ChaseResult {
    let mut machine = ChaseMachine::new(program, ChaseConfig::of(variant), initial);
    let outcome = machine.run(budget);
    let stats = machine.stats().clone();
    ChaseResult { outcome, instance: machine.into_instance(), stats }
}

/// Convenience: chases a program's own facts.
pub fn chase_facts(
    program: &Program,
    variant: ChaseVariant,
    budget: &Budget,
) -> ChaseResult {
    let initial = Instance::from_atoms(program.facts().iter().cloned());
    chase(program, variant, initial, budget)
}

/// Checks that `instance` is a model of the program's rules: every trigger
/// has its head satisfied. Used by tests to validate chase results.
pub fn is_model(program: &Program, instance: &Instance) -> bool {
    for rule in program.rules() {
        let mut ok = true;
        for_each_hom(rule.body(), rule.var_count(), instance, None, None, &mut |s| {
            if exists_extension(rule.head(), rule.var_count(), instance, s) {
                ControlFlow::Continue(())
            } else {
                ok = false;
                ControlFlow::Break(())
            }
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Checks that `instance` contains every atom of `base` (the chase never
/// deletes).
pub fn contains_instance(instance: &Instance, base: &Instance) -> bool {
    base.iter().all(|(_, a)| instance.id_of_parts(a.pred, a.args).is_some())
}

#[allow(unused_imports)]
use chasekit_core::atom::Atom as _AtomForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::instance_hom_exists;

    fn facts(program: &Program) -> Instance {
        Instance::from_atoms(program.facts().iter().cloned())
    }

    /// Paper Example 1: person(X) -> hasFather(X, Y), person(Y). Diverges
    /// under every variant.
    #[test]
    fn example1_diverges_under_all_variants() {
        let p = Program::parse("person(X) -> hasFather(X, Y), person(Y). person(bob).").unwrap();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let r = chase(&p, variant, facts(&p), &Budget::applications(200));
            assert_eq!(r.outcome, StopReason::Applications, "{variant} should diverge");
            assert!(r.stats.applications >= 200);
        }
    }

    /// Paper Example 2: p(a,b), p(X,Y) -> ∃Z p(Y,Z). Diverges; the chase
    /// builds an infinite path.
    #[test]
    fn example2_diverges() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let r = chase(&p, variant, facts(&p), &Budget::applications(100));
            assert_eq!(r.outcome, StopReason::Applications, "{variant} should diverge");
        }
    }

    /// r(X,Y) -> ∃Z r(X,Z): the classic separator — diverges obliviously,
    /// terminates semi-obliviously (frontier {X} never changes).
    #[test]
    fn oblivious_vs_semi_oblivious_separation() {
        let p = Program::parse("r(a, b). r(X, Y) -> r(X, Z).").unwrap();
        let o = chase(&p, ChaseVariant::Oblivious, facts(&p), &Budget::applications(100));
        assert_eq!(o.outcome, StopReason::Applications);

        let so = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::applications(100));
        assert_eq!(so.outcome, StopReason::Saturated);
        // r(a,b) plus one invented r(a, z).
        assert_eq!(so.instance.len(), 2);
        assert!(is_model(&p, &so.instance));
    }

    /// p(x) -> ∃y e(x,y); e(x,y) -> p(x): terminates under o and so.
    #[test]
    fn terminating_cycle_without_null_growth() {
        let p = Program::parse("p(a). p(X) -> e(X, Y). e(X, Y) -> p(X).").unwrap();
        for variant in [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious] {
            let r = chase(&p, variant, facts(&p), &Budget::applications(100));
            assert_eq!(r.outcome, StopReason::Saturated, "{variant}");
            assert!(is_model(&p, &r.instance));
        }
    }

    /// Restricted chase terminates where (semi-)oblivious diverges:
    /// e(X,Y) -> ∃Z e(Y,Z) on a looping database e(a,a).
    #[test]
    fn restricted_skips_satisfied_heads() {
        let p = Program::parse("e(a, a). e(X, Y) -> e(Y, Z).").unwrap();
        let r = chase(&p, ChaseVariant::Restricted, facts(&p), &Budget::applications(100));
        assert_eq!(r.outcome, StopReason::Saturated);
        // e(a,a) already satisfies the head for Y=a; nothing is added.
        assert_eq!(r.instance.len(), 1);
        assert_eq!(r.stats.satisfied_skips, 1);

        let so = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::applications(100));
        assert_eq!(so.outcome, StopReason::Applications);
    }

    /// Datalog programs saturate and compute the expected closure.
    #[test]
    fn datalog_transitive_closure() {
        let p = Program::parse(
            "e(a, b). e(b, c). e(c, d).
             e(X, Y) -> t(X, Y).
             e(X, Y), t(Y, Z) -> t(X, Z).",
        )
        .unwrap();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let r = chase(&p, variant, facts(&p), &Budget::default());
            assert_eq!(r.outcome, StopReason::Saturated, "{variant}");
            // 3 base edges + 6 closure pairs.
            assert_eq!(r.instance.len(), 9, "{variant}");
            assert!(is_model(&p, &r.instance));
        }
    }

    /// The chase result contains the input and is a model (universality
    /// smoke test: the restricted result maps into the semi-oblivious one).
    #[test]
    fn chase_results_are_models_and_universal() {
        let p = Program::parse(
            "emp(alice). emp(X) -> dept(X, D), mgr(D, M). mgr(D, M) -> boss(M).",
        )
        .unwrap();
        let so = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::default());
        let rst = chase(&p, ChaseVariant::Restricted, facts(&p), &Budget::default());
        assert_eq!(so.outcome, StopReason::Saturated);
        assert_eq!(rst.outcome, StopReason::Saturated);
        assert!(is_model(&p, &so.instance));
        assert!(is_model(&p, &rst.instance));
        assert!(contains_instance(&so.instance, &facts(&p)));
        // Universal models embed into each other's models.
        assert!(instance_hom_exists(&rst.instance, &so.instance));
        assert!(instance_hom_exists(&so.instance, &rst.instance));
    }

    #[test]
    fn derivation_tracking_records_parents_and_depths() {
        let p = Program::parse("p(a). p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation(),
            facts(&p),
        );
        assert_eq!(m.run(&Budget::default()), StopReason::Saturated);
        let dag = m.derivation();
        assert_eq!(dag.applications().len(), 2);
        assert_eq!(dag.max_depth(), 2);
        // r(z) was created from q(a, z), which came from p(a).
        let r_pred = p.vocab.pred("r").unwrap();
        let (r_id, _) = m.instance().iter().find(|(_, a)| a.pred == r_pred).unwrap();
        let chain = dag.ancestor_chain(r_id);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn skolem_tracking_flags_cyclic_terms() {
        // person(X) -> person(f(X)) nests the same skolem function forever.
        let p = Program::parse("person(a). person(X) -> father(X, Y), person(Y).").unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_skolem(),
            facts(&p),
        );
        let _ = m.run(&Budget::applications(10));
        assert!(m.skolem_cyclic().is_some());
    }

    #[test]
    fn skolem_tracking_stays_clean_on_acyclic_programs() {
        let p = Program::parse("p(a). p(X) -> q(X, Y). q(X, Y) -> s(Y).").unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_skolem(),
            facts(&p),
        );
        assert_eq!(m.run(&Budget::default()), StopReason::Saturated);
        assert!(m.skolem_cyclic().is_none());
    }

    #[test]
    fn empty_instance_with_no_facts_saturates_immediately() {
        let p = Program::parse("p(X) -> q(X).").unwrap();
        let r = chase(&p, ChaseVariant::Oblivious, Instance::new(), &Budget::default());
        assert_eq!(r.outcome, StopReason::Saturated);
        assert_eq!(r.stats.applications, 0);
        assert!(r.instance.is_empty());
    }

    #[test]
    fn stats_count_dedup_and_duplicates() {
        // Two rules generating the same atom q(a).
        let p = Program::parse("p(a). p(X) -> q(X). r(a). r(X) -> q(X).").unwrap();
        let r = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::default());
        assert_eq!(r.outcome, StopReason::Saturated);
        assert_eq!(r.stats.applications, 2);
        assert_eq!(r.stats.atoms_added, 1);
        assert_eq!(r.stats.duplicate_atoms, 1);
    }

    #[test]
    fn budget_is_respected() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let r = chase(&p, ChaseVariant::Oblivious, facts(&p), &Budget::applications(17));
        assert_eq!(r.stats.applications, 17);
        assert_eq!(r.outcome, StopReason::Applications);
    }

    #[test]
    fn multibody_guarded_rule_fires() {
        let p = Program::parse(
            "r(a, b). s(a).
             r(X, Y), s(X) -> t(X, Y, Z).",
        )
        .unwrap();
        let r = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::default());
        assert_eq!(r.outcome, StopReason::Saturated);
        let t = p.vocab.pred("t").unwrap();
        assert_eq!(r.instance.with_pred(t).len(), 1);
    }

    #[test]
    fn non_guarded_product_rule_fires_for_all_pairs() {
        let p = Program::parse(
            "p(a). p(b). q(c).
             p(X), q(Y) -> link(X, Y).",
        )
        .unwrap();
        let r = chase(&p, ChaseVariant::SemiOblivious, facts(&p), &Budget::default());
        assert_eq!(r.outcome, StopReason::Saturated);
        let link = p.vocab.pred("link").unwrap();
        assert_eq!(r.instance.with_pred(link).len(), 2);
    }
}

#[cfg(test)]
mod scheduling_tests {
    use super::*;
    use chasekit_core::Program;

    /// The restricted chase is order-dependent: on this rule set the FIFO
    /// order diverges (the existential rule keeps outrunning the swap rule),
    /// while many random orders let the swap rule satisfy heads early and
    /// saturate — the CT∃ vs CT∀ distinction the paper's §2 sidesteps for
    /// the (semi-)oblivious chase.
    #[test]
    fn restricted_chase_is_order_dependent() {
        let p = Program::parse("r(a, b). r(X, Y) -> r(Y, Z). r(X, Y) -> r(Y, X).").unwrap();
        let db = || Instance::from_atoms(p.facts().iter().cloned());
        let budget = Budget::applications(300);

        let mut fifo =
            ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Restricted), db());
        let fifo_outcome = fifo.run(&budget);

        let mut saturating_seeds = 0;
        let mut diverging_seeds = 0;
        for seed in 1..=20u64 {
            let cfg = ChaseConfig::of(ChaseVariant::Restricted).with_random_scheduling(seed);
            let mut m = ChaseMachine::new(&p, cfg, db());
            if m.run(&budget).is_saturated() {
                saturating_seeds += 1;
            } else {
                diverging_seeds += 1;
            }
        }

        // Both behaviours must be observable across orders.
        let total_saturating =
            saturating_seeds + (fifo_outcome == StopReason::Saturated) as u32;
        let total_diverging =
            diverging_seeds + (fifo_outcome == StopReason::Applications) as u32;
        assert!(
            total_saturating > 0,
            "expected at least one order to saturate (fifo: {fifo_outcome:?})"
        );
        assert!(
            total_diverging > 0,
            "expected at least one order to keep running (fifo: {fifo_outcome:?})"
        );
    }

    /// Order does NOT affect the (semi-)oblivious chase result set.
    #[test]
    fn oblivious_results_are_order_independent() {
        let p = Program::parse(
            "e(a, b). e(b, c). e(X, Y) -> t(X, Y). e(X, Y), t(Y, Z) -> t(X, Z).",
        )
        .unwrap();
        let db = || Instance::from_atoms(p.facts().iter().cloned());
        let fifo = {
            let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::SemiOblivious), db());
            assert_eq!(m.run(&Budget::default()), StopReason::Saturated);
            m.into_instance()
        };
        for seed in 1..=5u64 {
            let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_random_scheduling(seed);
            let mut m = ChaseMachine::new(&p, cfg, db());
            assert_eq!(m.run(&Budget::default()), StopReason::Saturated);
            let inst = m.into_instance();
            assert_eq!(inst.len(), fifo.len(), "seed {seed}");
            for (_, atom) in fifo.iter() {
                assert!(inst.id_of_parts(atom.pred, atom.args).is_some(), "seed {seed}");
            }
        }
    }

    /// Random scheduling is fair: a diverging workload still applies every
    /// pending trigger eventually (spot check: queue never starves a rule).
    #[test]
    fn random_scheduling_remains_fair_in_practice() {
        let p = Program::parse(
            "person(bob). person(X) -> hasFather(X, Y), person(Y). person(X) -> alive(X).",
        )
        .unwrap();
        let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_random_scheduling(7);
        let mut m = ChaseMachine::new(
            &p,
            cfg,
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        let _ = m.run(&Budget::applications(500));
        // The datalog rule must have fired many times despite the
        // existential rule flooding the queue.
        let alive = p.vocab.pred("alive").unwrap();
        assert!(
            m.instance().with_pred(alive).len() > 50,
            "alive count: {}",
            m.instance().with_pred(alive).len()
        );
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use std::time::Duration;

    const DIVERGING: &str = "p(a, b). p(X, Y) -> p(Y, Z).";

    fn machine(p: &Program) -> ChaseMachine<'_> {
        ChaseMachine::new(
            p,
            ChaseConfig::of(ChaseVariant::Oblivious),
            Instance::from_atoms(p.facts().iter().cloned()),
        )
    }

    /// Every `StopReason` variant is reachable from a real run.
    #[test]
    fn stop_reason_saturated_is_reachable() {
        let p = Program::parse("p(a). p(X) -> q(X).").unwrap();
        assert_eq!(machine(&p).run(&Budget::default()), StopReason::Saturated);
    }

    #[test]
    fn stop_reason_applications_is_reachable() {
        let p = Program::parse(DIVERGING).unwrap();
        assert_eq!(machine(&p).run(&Budget::applications(10)), StopReason::Applications);
    }

    #[test]
    fn stop_reason_atoms_is_reachable() {
        let p = Program::parse(DIVERGING).unwrap();
        let budget = Budget::unlimited().with_atoms(5);
        let mut m = machine(&p);
        assert_eq!(m.run(&budget), StopReason::Atoms);
        assert!(m.instance().len() >= 5);
    }

    #[test]
    fn stop_reason_wall_clock_is_reachable() {
        let p = Program::parse(DIVERGING).unwrap();
        let budget = Budget::unlimited().with_wall_clock(Duration::from_millis(20));
        let mut m = machine(&p);
        assert_eq!(m.run(&budget), StopReason::WallClock);
    }

    #[test]
    fn stop_reason_memory_is_reachable() {
        let p = Program::parse(DIVERGING).unwrap();
        let budget = Budget::unlimited().with_memory(16 * 1024);
        let mut m = machine(&p);
        assert_eq!(m.run(&budget), StopReason::Memory);
        assert!(m.approx_memory_bytes() >= 16 * 1024);
    }

    #[test]
    fn stop_reason_cancelled_is_reachable() {
        let p = Program::parse(DIVERGING).unwrap();
        let mut m = machine(&p);
        let token = CancelToken::new();
        m.set_cancel_token(token.clone());
        // Pre-cancelled: the run must stop on the very first check without
        // applying anything.
        token.cancel();
        assert_eq!(m.run(&Budget::unlimited()), StopReason::Cancelled);
        assert_eq!(m.stats().applications, 0);
    }

    /// Cancellation from another thread stops a diverging run promptly.
    #[test]
    fn cancellation_works_cross_thread() {
        let p = Program::parse(DIVERGING).unwrap();
        let mut m = machine(&p);
        let token = CancelToken::new();
        m.set_cancel_token(token.clone());
        let stop = std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            });
            m.run(&Budget::unlimited().with_wall_clock(Duration::from_secs(30)))
        });
        assert_eq!(stop, StopReason::Cancelled);
    }

    /// A guardrail that trips exactly when the queue happens to drain still
    /// reports saturation (the boundary probe the old binary outcome had).
    #[test]
    fn saturation_at_the_boundary_beats_the_guardrail() {
        // Saturates in exactly 2 applications.
        let p = Program::parse("p(a). p(X) -> q(X). q(X) -> r(X).").unwrap();
        let mut m = machine(&p);
        assert_eq!(m.run(&Budget::applications(2)), StopReason::Saturated);

        // Cancelling after saturation also reports saturation.
        let p2 = Program::parse("p(a). p(X) -> q(X).").unwrap();
        let mut m2 = machine(&p2);
        assert_eq!(m2.run(&Budget::default()), StopReason::Saturated);
        let token = CancelToken::new();
        m2.set_cancel_token(token.clone());
        token.cancel();
        assert_eq!(m2.run(&Budget::default()), StopReason::Saturated);
    }

    /// Asserts the machine's partial state is internally consistent: every
    /// derivation-recorded atom exists, every parent id is a real atom, and
    /// every pending trigger's bound terms refer to existing constants or
    /// already-minted nulls.
    fn assert_consistent(m: &ChaseMachine<'_>) {
        let len = m.instance.len();
        for (id, app) in (0..len).filter_map(|i| {
            let id = AtomId::from_index(i);
            m.derivation.creator_of(id).map(|a| (id, a))
        }) {
            for &parent in &app.parents {
                assert!(parent.index() < len, "dangling parent {parent:?} of {id:?}");
            }
            for &null in &app.born_nulls {
                assert!((null.0 as usize) < m.instance.null_count(), "unminted null {null:?}");
            }
        }
        for t in &m.queue {
            for v in 0..t.subst.len() {
                if let Some(Term::Null(n)) = t.subst.get(chasekit_core::VarId(v as u32)) {
                    assert!(
                        (n.0 as usize) < m.instance.null_count(),
                        "pending trigger references unminted null {n:?}"
                    );
                }
            }
        }
    }

    /// Wall-clock and cancellation stops land on step boundaries: the
    /// partial instance and derivation DAG have no dangling references.
    #[test]
    fn wall_clock_stop_leaves_consistent_partial_state() {
        let p = Program::parse(DIVERGING).unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::Oblivious).with_derivation(),
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        let stop = m.run(&Budget::unlimited().with_wall_clock(Duration::from_millis(15)));
        assert_eq!(stop, StopReason::WallClock);
        assert!(m.stats().applications > 0);
        assert_consistent(&m);
    }

    #[test]
    fn cancelled_stop_leaves_consistent_partial_state() {
        let p = Program::parse(DIVERGING).unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::Oblivious).with_derivation(),
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        // Run a prefix, then cancel and run again: both stops must leave
        // consistent state.
        let _ = m.run(&Budget::applications(40));
        assert_consistent(&m);
        let token = CancelToken::new();
        m.set_cancel_token(token.clone());
        token.cancel();
        assert_eq!(m.run(&Budget::unlimited()), StopReason::Cancelled);
        assert_consistent(&m);
    }

    /// The incremental memory estimate stays in lockstep with a from-scratch
    /// recomputation as the run grows.
    #[test]
    fn memory_accounting_matches_recomputation() {
        let p = Program::parse(DIVERGING).unwrap();
        let mut m = machine(&p);
        for _ in 0..50 {
            if m.step().is_none() {
                break;
            }
            let atoms: usize =
                m.instance.iter().map(|(_, a)| crate::guard::approx_atom_bytes(a.arity())).sum();
            let queue: usize = m
                .queue
                .iter()
                .map(|t| crate::guard::approx_trigger_bytes(t.subst.len()))
                .sum();
            let seen: usize =
                m.seen.iter().map(|(_, k)| crate::guard::approx_identity_bytes(k.len())).sum();
            assert_eq!(m.approx_memory_bytes(), atoms + queue + seen);
        }
    }
}
