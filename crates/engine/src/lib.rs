//! # chasekit-engine
//!
//! Chase engines over the `chasekit-core` data model: the **oblivious**,
//! **semi-oblivious**, and **restricted** chase with fair FIFO scheduling,
//! budgets, derivation tracking, and Skolem-cyclicity tracking (the
//! ingredient of model-faithful acyclicity).
//!
//! The stepwise [`ChaseMachine`] is what the termination procedures drive;
//! [`fn@chase`] and [`chase_facts`] are one-shot conveniences.
//!
//! ```
//! use chasekit_core::Program;
//! use chasekit_engine::{chase_facts, Budget, ChaseVariant, StopReason};
//!
//! // Paper, Example 2: diverges under every chase variant.
//! let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
//! let run = chase_facts(&p, ChaseVariant::SemiOblivious, &Budget::applications(50));
//! assert_eq!(run.outcome, StopReason::Applications);
//! assert!(run.outcome.exhausted());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chase;
pub mod checkpoint;
pub mod core_chase;
pub mod core_min;
pub mod derivation;
pub mod dot;
pub mod failpoint;
pub mod guard;
pub mod incremental;
pub mod journal;
pub mod metrics;
pub(crate) mod pool;
pub mod query;
pub mod round;
pub mod serve;
pub mod trace;
pub mod variant;

pub use chase::{
    chase, chase_facts, contains_instance, is_model, ChaseConfig, ChaseMachine,
    ChaseResult, ChaseStats, Scheduling, StepEvent,
};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use guard::{Budget, CancelToken, StopReason};
pub use incremental::{
    canonical_form, check_support, edited_program, parse_edit_script, Edit, RetractOutcome,
    UpdateError, UpdateReport,
};
pub use journal::{
    needs_recovery, recover, write_snapshot_atomic, JournalWriter, RecoveryReport,
};
pub use core_chase::{core_chase, CoreChaseOutcome, CoreChaseResult};
pub use core_min::{core_of, instances_isomorphic, MAX_CORE_NULLS};
pub use derivation::{Application, DerivationDag};
pub use dot::derivation_to_dot;
pub use metrics::{Histogram, MetricsRegistry, MetricsSink, RuleMetrics};
pub use query::{certain_answers, certainly_holds, ConjunctiveQuery, QueryError};
pub use round::RoundStats;
pub use serve::{serve, JobReport, JobSpec, ServeConfig, ServerHandle};
pub use trace::{
    core_seq, validate_trace_line, JsonlSink, MultiSink, ProgressReport, TraceEvent,
    TraceSink,
};
pub use variant::ChaseVariant;
