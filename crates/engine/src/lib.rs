//! # chasekit-engine
//!
//! Chase engines over the `chasekit-core` data model: the **oblivious**,
//! **semi-oblivious**, and **restricted** chase with fair FIFO scheduling,
//! budgets, derivation tracking, and Skolem-cyclicity tracking (the
//! ingredient of model-faithful acyclicity).
//!
//! The stepwise [`ChaseMachine`] is what the termination procedures drive;
//! [`fn@chase`] and [`chase_facts`] are one-shot conveniences.
//!
//! ```
//! use chasekit_core::Program;
//! use chasekit_engine::{chase_facts, Budget, ChaseOutcome, ChaseVariant};
//!
//! // Paper, Example 2: diverges under every chase variant.
//! let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
//! let run = chase_facts(&p, ChaseVariant::SemiOblivious, &Budget::applications(50));
//! assert_eq!(run.outcome, ChaseOutcome::BudgetExhausted);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chase;
pub mod core_chase;
pub mod core_min;
pub mod derivation;
pub mod dot;
pub mod query;
pub mod variant;

pub use chase::{
    chase, chase_facts, contains_instance, is_model, Budget, ChaseConfig, ChaseMachine,
    ChaseOutcome, ChaseResult, ChaseStats, Scheduling, StepEvent,
};
pub use core_chase::{core_chase, CoreChaseOutcome, CoreChaseResult};
pub use core_min::{core_of, instances_isomorphic, MAX_CORE_NULLS};
pub use derivation::{Application, DerivationDag};
pub use dot::derivation_to_dot;
pub use query::{certain_answers, certainly_holds, ConjunctiveQuery, QueryError};
pub use variant::ChaseVariant;
