//! Graphviz (DOT) export of chase derivations.
//!
//! Renders the derivation DAG of a chase run: atoms as nodes (initial atoms
//! boxed), one edge per body-parent relation, labeled with the rule index.
//! Handy for debugging termination analyses and for documentation figures:
//!
//! ```sh
//! chasekit chase rules.txt --dot out.dot && dot -Tsvg out.dot -o out.svg
//! ```

use std::fmt::Write as _;

use chasekit_core::display::atom_ref_to_string;
use chasekit_core::{Instance, Vocabulary};

use crate::derivation::DerivationDag;

/// Renders a derivation DAG as a DOT digraph.
pub fn derivation_to_dot(
    instance: &Instance,
    derivation: &DerivationDag,
    vocab: &Vocabulary,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph chase {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"monospace\", fontsize=10];");

    for (id, atom) in instance.iter() {
        let label = atom_ref_to_string(atom, vocab, None).replace('"', "\\\"");
        let style = match derivation.creator_of(id) {
            None => "shape=box, style=filled, fillcolor=\"#e8e8e8\"",
            Some(_) => "shape=ellipse",
        };
        let _ = writeln!(out, "  a{} [label=\"{}\", {}];", id.0, label, style);
    }

    for app in derivation.applications() {
        for &child in &app.produced {
            for &parent in &app.parents {
                let _ = writeln!(
                    out,
                    "  a{} -> a{} [label=\"r{}\", fontsize=8];",
                    parent.0, child.0, app.rule
                );
            }
        }
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{ChaseConfig, ChaseMachine};
    use crate::guard::Budget;
    use crate::variant::ChaseVariant;
    use chasekit_core::Program;

    #[test]
    fn dot_output_contains_all_atoms_and_edges() {
        let p = Program::parse("p(a). p(X) -> q(X, Y). q(X, Y) -> r(Y).").unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation(),
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        let _ = m.run(&Budget::default());
        let dot = derivation_to_dot(m.instance(), m.derivation(), &p.vocab);
        assert!(dot.starts_with("digraph chase {"));
        assert!(dot.trim_end().ends_with('}'));
        // 3 atoms: p(a), q(a, n), r(n).
        assert_eq!(dot.matches("label=\"").count(), 3 + 2 /* edge labels */);
        // The initial atom is boxed.
        assert!(dot.contains("shape=box"));
        // Two derivation edges.
        assert!(dot.contains("a0 -> a1 [label=\"r0\""));
        assert!(dot.contains("a1 -> a2 [label=\"r1\""));
    }

    #[test]
    fn quotes_in_constants_are_escaped() {
        let p = Program::parse("p('he said \"hi\"').").unwrap();
        let m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation(),
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        let dot = derivation_to_dot(m.instance(), m.derivation(), &p.vocab);
        assert!(dot.contains("\\\"hi\\\""));
    }
}
