//! Incremental updates: DRed-style retraction over the derivation DAG.
//!
//! A chase run that tracked derivations ([`crate::chase::ChaseConfig::track_derivation`])
//! can be *updated in place* instead of re-chased from scratch:
//!
//! - **Additions** enter through the ordinary delta-matching path: the new
//!   atom is inserted, trigger discovery runs pinned to it, and the
//!   completion run saturates the queue.
//! - **Retractions** follow delete-and-rederive (DRed). Retracting a base
//!   fact computes its *derivation cone* — every application transitively
//!   consuming it and every atom those applications first created — via
//!   [`DerivationDag::cone_of`], tombstones the cone in the instance
//!   ([`Instance::retract`]), and then re-derives survivors: an application
//!   in the cone whose body image still exists (through atoms outside the
//!   cone, or atoms restored earlier in the replay) is re-fired with its
//!   original nulls, so surviving derivations keep their Skolem identity.
//!   Applications with no surviving support are dropped, their trigger
//!   identities are released so future additions can re-admit them, and the
//!   DAG is rebuilt from the surviving applications.
//!
//! Two properties make the replay exact rather than a fixpoint guess:
//!
//! 1. Re-fired applications insert their **full head image**, not just the
//!    atoms they originally produced. An atom that was recorded as a
//!    duplicate at first firing (some earlier application produced it) may
//!    have lost that earlier creator; the re-firing application adopts it.
//! 2. Live applications are scanned for head atoms lost to the cone: their
//!    bodies are intact by construction, so any missing head content is
//!    restored unconditionally. This covers the case where the retracted
//!    fact itself (or a cone atom) is independently derivable — exactly the
//!    "re-derivation" half of DRed.
//!
//! The replay iterates to a fixpoint (a later application's head image can
//!    restore an earlier application's support), which terminates because
//! every pass either re-fires an application or stops.
//!
//! **Variant semantics.** For the oblivious and semi-oblivious chase the
//! updated machine is equivalent to a from-scratch chase of the edited
//! base: same atoms up to the Skolem-canonical naming of nulls (see
//! [`canonical_form`]). The restricted chase is order-dependent, so the
//! updated machine is instead a *restricted-chase-valid* result: a model
//! hom-equivalent to the from-scratch result. To keep that guarantee the
//! machine records triggers skipped as "already satisfied"; a retraction
//! that deletes a skip's satisfaction witness re-opens the trigger.
//!
//! Updated machines cannot be checkpointed (atom ids are no longer dense;
//! see [`crate::checkpoint`]); callers that need a durable artifact should
//! rebuild from the edited program ([`edited_program`]) — that rebuild is
//! bit-identical to a from-scratch run by construction and is what the
//! differential tests pin down.

use chasekit_core::{
    Atom, AtomId, FxHashMap, FxHashSet, Instance, NullId, PredId, Program, Term, Tgd,
};

use crate::chase::ChaseMachine;
use crate::derivation::{Application, DerivationDag};
use crate::guard::{
    approx_atom_bytes, approx_identity_bytes, approx_trigger_bytes, Budget, StopReason,
};
use crate::trace::TraceEvent;

/// One line of an edit script: add or retract a ground base fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Insert the fact into the base (no-op if the content is present).
    Add(Atom),
    /// Retract the fact from the base, with DRed repair of its cone.
    Retract(Atom),
}

/// Errors surfaced by the update subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The machine was built without `track_derivation`; retraction needs
    /// the derivation DAG to compute cones.
    DerivationRequired,
    /// The machine has a write-ahead journal installed. Journals replay
    /// from the base program, which an in-place update invalidates; use a
    /// rebuild through [`edited_program`] for durable runs.
    Journaled,
    /// The retraction target exists but was chase-derived, not a base fact.
    NotABaseFact(String),
    /// The fact contains variables or nulls.
    NonGround(String),
    /// The fact's predicate or arity does not match the program vocabulary.
    Vocabulary(String),
    /// An edit-script line failed to parse (1-based line number).
    Script {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DerivationRequired => {
                write!(f, "incremental updates require a derivation-tracking machine")
            }
            UpdateError::Journaled => {
                write!(f, "cannot update a journaled machine in place; rebuild instead")
            }
            UpdateError::NotABaseFact(a) => {
                write!(f, "cannot retract {a}: it is chase-derived, not a base fact")
            }
            UpdateError::NonGround(a) => write!(f, "edit fact {a} is not ground"),
            UpdateError::Vocabulary(a) => {
                write!(f, "edit fact {a} does not match the program vocabulary")
            }
            UpdateError::Script { line, msg } => write!(f, "edit script line {line}: {msg}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Summary of a single retraction's repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetractOutcome {
    /// The target content was absent; nothing happened.
    pub missing: bool,
    /// Atoms tombstoned, including the base fact itself.
    pub overdeleted: usize,
    /// Applications in the cone that lost their support for good.
    pub invalidated_apps: usize,
    /// Applications in the cone re-fired with surviving support.
    pub rederived_apps: usize,
    /// Atoms restored by re-firing and live-head completion.
    pub restored_atoms: usize,
    /// Restricted only: recorded satisfied-skips re-opened because their
    /// witness died.
    pub reopened_skips: usize,
}

/// Summary of an applied edit script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Add edits that inserted a genuinely new atom.
    pub adds: usize,
    /// Add edits whose content was already present.
    pub duplicate_adds: usize,
    /// Retract edits that removed a present base fact.
    pub retracts: usize,
    /// Retract edits whose target was absent.
    pub missing_retracts: usize,
    /// Total atoms tombstoned across all retractions.
    pub overdeleted: usize,
    /// Total applications permanently invalidated.
    pub invalidated_apps: usize,
    /// Total applications re-fired during repair.
    pub rederived_apps: usize,
    /// Total atoms restored during repair.
    pub restored_atoms: usize,
    /// Total satisfied-skips re-opened (restricted variant).
    pub reopened_skips: usize,
    /// How the completion chase after the edits stopped.
    pub outcome: StopReason,
}

impl<'p> ChaseMachine<'p> {
    fn require_updatable(&self) -> Result<(), UpdateError> {
        if !self.config.track_derivation {
            return Err(UpdateError::DerivationRequired);
        }
        if self.journal.is_some() {
            return Err(UpdateError::Journaled);
        }
        Ok(())
    }

    /// Adds a base fact and discovers the triggers it enables. Returns
    /// whether the content was new. Does **not** run the chase; call
    /// [`run`](Self::run) (or use [`apply_edits`](Self::apply_edits)) to
    /// saturate afterwards.
    pub fn add_fact(&mut self, fact: &Atom) -> Result<bool, UpdateError> {
        self.require_updatable()?;
        check_vocab(self.program, fact)?;
        let (id, fresh) = self.instance.insert(fact.clone());
        if !fresh {
            return Ok(false);
        }
        self.approx_bytes += approx_atom_bytes(fact.arity());
        if self.config.naive_matching {
            for rule_idx in 0..self.program.rules().len() {
                self.enqueue_matches(rule_idx, None);
            }
        } else {
            for rule_idx in 0..self.program.rules().len() {
                self.enqueue_matches(rule_idx, Some(id));
            }
        }
        Ok(true)
    }

    /// Retracts a base fact, deleting its derivation cone and re-deriving
    /// everything with surviving support (DRed). Leaves the machine in a
    /// consistent mid-run state; the pending queue may be non-empty (e.g.
    /// re-opened restricted skips) — [`apply_edits`](Self::apply_edits)
    /// runs the completion chase.
    ///
    /// Retracting an absent content is a lenient no-op (reported via
    /// [`RetractOutcome::missing`]); retracting a *derived* atom is an
    /// error — DRed retraction is defined on the base.
    pub fn retract_fact(&mut self, fact: &Atom) -> Result<RetractOutcome, UpdateError> {
        self.require_updatable()?;
        check_vocab(self.program, fact)?;
        let mut out = RetractOutcome::default();
        let Some(root) = self.instance.id_of(fact) else {
            out.missing = true;
            return Ok(out);
        };
        if self.derivation.creator_of(root).is_some() {
            return Err(UpdateError::NotABaseFact(format!("{fact:?}")));
        }

        // Phase 1: overdelete the cone.
        let (dead_apps, dead_atoms) = self.derivation.cone_of(root);
        for id in std::iter::once(root).chain(dead_atoms.iter().copied()) {
            let arity = self.instance.atom(id).arity();
            if self.instance.retract(id) {
                out.overdeleted += 1;
                self.approx_bytes = self.approx_bytes.saturating_sub(approx_atom_bytes(arity));
            }
        }
        if let Some(t) = &mut self.trace {
            t.note(TraceEvent::Retract { atoms: out.overdeleted, apps: dead_apps.len() });
        }
        let dead_set: FxHashSet<usize> = dead_apps.iter().copied().collect();

        // Phase 2: live-head completion. A live application's body is
        // intact (its parents are outside the cone by construction), so any
        // of its head contents lost to the cone is restored outright. This
        // is what lets an independently-derivable content — including the
        // retracted fact itself — survive the retraction as derived.
        let mut live_extra: FxHashMap<usize, Vec<AtomId>> = FxHashMap::default();
        let mut missing: Vec<(usize, PredId, Vec<Term>)> = Vec::new();
        for (idx, app) in self.derivation.applications().iter().enumerate() {
            if dead_set.contains(&idx) {
                continue;
            }
            let rule = &self.program.rules()[app.rule];
            for (pred, args) in head_images(rule, app) {
                if self.instance.id_of_parts(pred, &args).is_none() {
                    missing.push((idx, pred, args));
                }
            }
        }
        for (idx, pred, args) in missing {
            let (id, fresh) = self.instance.insert_terms(pred, &args);
            if fresh {
                out.restored_atoms += 1;
                self.approx_bytes += approx_atom_bytes(args.len());
                live_extra.entry(idx).or_default().push(id);
            }
        }

        // Phase 3: replay the cone to a fixpoint, ascending seq order. An
        // application re-fires iff every parent's *content* is present
        // (original live atoms, or atoms restored earlier in the replay);
        // re-firing reuses the original nulls, so surviving derivations
        // keep their identity. Later passes can succeed where earlier ones
        // failed — a re-fired application's full head image may restore a
        // content some earlier application depends on.
        let mut pending_dead: Vec<usize> = dead_apps;
        let mut refired: FxHashMap<usize, Application> = FxHashMap::default();
        loop {
            let mut progressed = false;
            let mut still: Vec<usize> = Vec::new();
            for &idx in &pending_dead {
                let app = self.derivation.app(idx);
                let parents_now: Option<Vec<AtomId>> = app
                    .parents
                    .iter()
                    .map(|&p| {
                        let content = self.instance.atom(p);
                        self.instance.id_of_parts(content.pred, content.args)
                    })
                    .collect();
                let Some(parents) = parents_now else {
                    still.push(idx);
                    continue;
                };
                let rule = &self.program.rules()[app.rule];
                let primary = rule.guard_index().and_then(|g| parents.get(g).copied());
                let primary = primary.or_else(|| parents.first().copied());
                let mut new_app = Application {
                    rule: app.rule,
                    seq: app.seq,
                    parents,
                    primary_parent: primary,
                    frontier: app.frontier.clone(),
                    key: app.key.clone(),
                    born_nulls: app.born_nulls.clone(),
                    produced: Vec::new(),
                };
                let images = head_images(rule, app);
                for (pred, args) in images {
                    let (id, fresh) = self.instance.insert_terms(pred, &args);
                    if fresh {
                        out.restored_atoms += 1;
                        self.approx_bytes += approx_atom_bytes(args.len());
                        new_app.produced.push(id);
                    }
                }
                refired.insert(idx, new_app);
                out.rederived_apps += 1;
                progressed = true;
            }
            pending_dead = still;
            if !progressed || pending_dead.is_empty() {
                break;
            }
        }

        // Phase 4: permanently dead applications release their trigger
        // identity (a future addition may legitimately re-admit the same
        // match) and their Skolem records.
        for &idx in &pending_dead {
            let app = self.derivation.app(idx);
            let key_len = app.key.len();
            let entry = (app.rule as u32, app.key.clone());
            let born = app.born_nulls.clone();
            if self.seen.remove(&entry) {
                self.approx_bytes =
                    self.approx_bytes.saturating_sub(approx_identity_bytes(key_len));
            }
            if self.config.track_skolem {
                for n in born {
                    self.skolem.remove(&n);
                }
            }
            out.invalidated_apps += 1;
        }
        let forever_dead: FxHashSet<usize> = pending_dead.iter().copied().collect();

        // Phase 5: rebuild the DAG from survivors, original seq order.
        // Live applications keep their atom ids verbatim (their parents and
        // products are outside the cone); re-fired ones carry re-resolved
        // ids; permanently dead ones vanish.
        let mut merged: Vec<Application> =
            Vec::with_capacity(self.derivation.applications().len() - forever_dead.len());
        for (idx, app) in self.derivation.applications().iter().enumerate() {
            if let Some(new_app) = refired.remove(&idx) {
                merged.push(new_app);
            } else if !forever_dead.contains(&idx) {
                let mut a = app.clone();
                if let Some(extra) = live_extra.remove(&idx) {
                    a.produced.extend(extra);
                }
                merged.push(a);
            }
        }
        self.derivation = DerivationDag::from_applications(merged);

        // Phase 6: queue repair. Pending triggers whose body image lost an
        // atom are dropped and their identities released; body images are
        // checked by content, so a trigger over restored atoms survives.
        let queue = std::mem::take(&mut self.queue);
        for t in queue {
            let rule = &self.program.rules()[t.rule];
            let holds = rule.body().iter().all(|a| self.instance.contains(&t.subst.apply_atom(a)));
            if holds {
                self.queue.push_back(t);
            } else {
                self.approx_bytes =
                    self.approx_bytes.saturating_sub(approx_trigger_bytes(t.subst.len()));
                let key = self.config.variant.trigger_key(rule, &t.subst);
                let key_len = key.len();
                if self.seen.remove(&(t.rule as u32, key)) {
                    self.approx_bytes =
                        self.approx_bytes.saturating_sub(approx_identity_bytes(key_len));
                }
            }
        }

        // Phase 7 (restricted only): re-open recorded satisfied-skips whose
        // witness died. A skip whose body also died is forgotten entirely —
        // its identity is released like any other dead match.
        if self.config.variant.checks_satisfaction() {
            let skips = std::mem::take(&mut self.skipped);
            for t in skips {
                let rule = &self.program.rules()[t.rule];
                let body_holds =
                    rule.body().iter().all(|a| self.instance.contains(&t.subst.apply_atom(a)));
                self.approx_bytes =
                    self.approx_bytes.saturating_sub(approx_trigger_bytes(t.subst.len()));
                if !body_holds {
                    let key = self.config.variant.trigger_key(rule, &t.subst);
                    let key_len = key.len();
                    if self.seen.remove(&(t.rule as u32, key)) {
                        self.approx_bytes =
                            self.approx_bytes.saturating_sub(approx_identity_bytes(key_len));
                    }
                    continue;
                }
                let satisfied = chasekit_core::exists_extension_scratch(
                    rule.head(),
                    rule.var_count(),
                    &self.instance,
                    &t.subst,
                    &mut self.scratch,
                );
                if satisfied {
                    self.approx_bytes += approx_trigger_bytes(t.subst.len());
                    self.skipped.push(t);
                } else {
                    let key = self.config.variant.trigger_key(rule, &t.subst);
                    let key_len = key.len();
                    if self.seen.remove(&(t.rule as u32, key)) {
                        self.approx_bytes =
                            self.approx_bytes.saturating_sub(approx_identity_bytes(key_len));
                    }
                    self.admit_trigger(t.rule, t.subst);
                    out.reopened_skips += 1;
                }
            }
        }

        if let Some(t) = &mut self.trace {
            t.note(TraceEvent::Rederive { apps: out.rederived_apps, atoms: out.restored_atoms });
        }
        Ok(out)
    }

    /// Applies an edit script in order, then runs the completion chase.
    ///
    /// The budget is cumulative over the machine's lifetime (the completion
    /// run continues the original counters), so pass a budget larger than
    /// what the initial run consumed if the program diverges.
    pub fn apply_edits(
        &mut self,
        edits: &[Edit],
        budget: &Budget,
    ) -> Result<UpdateReport, UpdateError> {
        self.require_updatable()?;
        let mut report = UpdateReport {
            adds: 0,
            duplicate_adds: 0,
            retracts: 0,
            missing_retracts: 0,
            overdeleted: 0,
            invalidated_apps: 0,
            rederived_apps: 0,
            restored_atoms: 0,
            reopened_skips: 0,
            outcome: StopReason::Saturated,
        };
        for edit in edits {
            match edit {
                Edit::Add(atom) => {
                    if self.add_fact(atom)? {
                        report.adds += 1;
                    } else {
                        report.duplicate_adds += 1;
                    }
                }
                Edit::Retract(atom) => {
                    let o = self.retract_fact(atom)?;
                    if o.missing {
                        report.missing_retracts += 1;
                    } else {
                        report.retracts += 1;
                        report.overdeleted += o.overdeleted;
                        report.invalidated_apps += o.invalidated_apps;
                        report.rederived_apps += o.rederived_apps;
                        report.restored_atoms += o.restored_atoms;
                        report.reopened_skips += o.reopened_skips;
                    }
                }
            }
        }
        if let Some(t) = &mut self.trace {
            t.note(TraceEvent::EditApply {
                adds: report.adds + report.duplicate_adds,
                retracts: report.retracts + report.missing_retracts,
            });
        }
        report.outcome = self.run(budget);
        Ok(report)
    }
}

/// Validates a fact against the program vocabulary.
fn check_vocab(program: &Program, fact: &Atom) -> Result<(), UpdateError> {
    if !fact.is_ground() {
        return Err(UpdateError::NonGround(format!("{fact:?}")));
    }
    if fact.pred.index() >= program.vocab.pred_count()
        || program.vocab.arity(fact.pred) != fact.arity()
    {
        return Err(UpdateError::Vocabulary(format!("{fact:?}")));
    }
    Ok(())
}

/// Reconstructs an application's full head image — every head atom under
/// the frontier assignment and the originally-minted nulls, in head order.
fn head_images(rule: &Tgd, app: &Application) -> Vec<(PredId, Vec<Term>)> {
    let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
    for (v, t) in rule.frontier().iter().zip(&app.frontier) {
        binding[v.index()] = Some(*t);
    }
    for (v, n) in rule.existentials().iter().zip(&app.born_nulls) {
        binding[v.index()] = Some(Term::Null(*n));
    }
    rule.head()
        .iter()
        .map(|a| {
            let args = a
                .args
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => {
                        binding[v.index()].expect("head variables are frontier or existential")
                    }
                    ground => ground,
                })
                .collect();
            (a.pred, args)
        })
        .collect()
}

/// Parses an edit script: one edit per line, `add <atom>.` or
/// `retract <atom>.`, with `%`-comments and blank lines ignored. Predicate
/// and constant names are interned into `program`'s vocabulary (new
/// constants are declared; predicates must agree on arity).
pub fn parse_edit_script(text: &str, program: &mut Program) -> Result<Vec<Edit>, UpdateError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let Some((op, rest)) = line.split_once(char::is_whitespace) else {
            return Err(UpdateError::Script {
                line: lineno,
                msg: "expected `add <atom>.` or `retract <atom>.`".into(),
            });
        };
        let atom = parse_fact(rest.trim(), program)
            .map_err(|msg| UpdateError::Script { line: lineno, msg })?;
        match op {
            "add" => out.push(Edit::Add(atom)),
            "retract" => out.push(Edit::Retract(atom)),
            other => {
                return Err(UpdateError::Script {
                    line: lineno,
                    msg: format!("unknown edit op `{other}` (want `add` or `retract`)"),
                });
            }
        }
    }
    Ok(out)
}

/// Parses one ground fact and interns its names into `program`'s vocab.
fn parse_fact(text: &str, program: &mut Program) -> Result<Atom, String> {
    let mini = Program::parse(text).map_err(|e| e.to_string())?;
    if !mini.rules().is_empty() || mini.facts().len() != 1 {
        return Err("each edit line must contain exactly one fact".into());
    }
    let fact = &mini.facts()[0];
    let pred = program
        .vocab
        .declare_pred(mini.vocab.pred_name(fact.pred), fact.arity())
        .map_err(|e| e.to_string())?;
    let args = fact
        .args
        .iter()
        .map(|&t| match t {
            Term::Const(c) => Ok(Term::Const(program.vocab.intern_const(mini.vocab.const_name(c)))),
            other => Err(format!("edit facts must be ground: found {other:?}")),
        })
        .collect::<Result<Vec<Term>, String>>()?;
    Ok(Atom::new(pred, args))
}

/// Applies an edit script to a program's base facts, returning the edited
/// program. `Add` is idempotent on the fact list; `Retract` removes every
/// occurrence. This is the canonical-rebuild path: chasing the returned
/// program from scratch is the reference an updated machine is tested
/// against, and the route `chasekit serve` takes (the derivation DAG is
/// not durable, so server-side updates re-admit rather than repair).
pub fn edited_program(program: &Program, edits: &[Edit]) -> Program {
    let mut p = program.clone();
    for e in edits {
        match e {
            Edit::Add(a) => {
                if !p.facts().contains(a) {
                    p.add_fact(a.clone()).expect("edit atoms are validated against the vocabulary");
                }
            }
            Edit::Retract(a) => {
                p.remove_fact(a);
            }
        }
    }
    p
}

/// Renders an instance as a sorted list of atom strings with nulls named by
/// their Skolem identity: `s<rule>.<ex>(<canonical key terms>)`, recursing
/// through nulls in the key. Two saturated oblivious (or semi-oblivious)
/// runs over the same base produce the same canonical form regardless of
/// trigger order, null numbering, or update history — this is the equality
/// the incremental differential tests check for those variants.
pub fn canonical_form(instance: &Instance, dag: &DerivationDag) -> Vec<String> {
    fn null_name(n: NullId, dag: &DerivationDag, names: &mut FxHashMap<NullId, String>) -> String {
        if let Some(s) = names.get(&n) {
            return s.clone();
        }
        let s = match dag.minter_of(n) {
            // Nulls imported with the initial instance have no minter; their
            // ids are already canonical (identical across runs).
            None => format!("n{}", n.index()),
            Some(idx) => {
                let (rule, ex, key) = {
                    let app = dag.app(idx);
                    let ex = app
                        .born_nulls
                        .iter()
                        .position(|&b| b == n)
                        .expect("minter lists its null");
                    (app.rule, ex, app.key.clone())
                };
                let args: Vec<String> = key.iter().map(|&t| term_name(t, dag, names)).collect();
                format!("s{rule}.{ex}({})", args.join(","))
            }
        };
        names.insert(n, s.clone());
        s
    }
    fn term_name(t: Term, dag: &DerivationDag, names: &mut FxHashMap<NullId, String>) -> String {
        match t {
            Term::Const(c) => format!("c{}", c.index()),
            Term::Null(n) => null_name(n, dag, names),
            Term::Var(v) => format!("v{}", v.index()),
        }
    }
    let mut names: FxHashMap<NullId, String> = FxHashMap::default();
    let mut out: Vec<String> = Vec::with_capacity(instance.len());
    for (_, a) in instance.iter() {
        let args: Vec<String> = a.args.iter().map(|&t| term_name(t, dag, &mut names)).collect();
        out.push(format!("p{}({})", a.pred.index(), args.join(",")));
    }
    out.sort();
    out
}

/// Checks the DRed support invariant: every live derived atom's creating
/// application has only live parents, and the creator graph is acyclic (so
/// every survivor is grounded in surviving base facts). Returns the first
/// violation found.
pub fn check_support(instance: &Instance, dag: &DerivationDag) -> Result<(), String> {
    for (id, _) in instance.iter() {
        if let Some(app) = dag.creator_of(id) {
            for &p in &app.parents {
                if !instance.is_live(p) {
                    return Err(format!(
                        "atom #{} (creator seq {}) has dead parent #{}",
                        id.index(),
                        app.seq,
                        p.index()
                    ));
                }
            }
        }
    }
    // Acyclicity of atom -> creator-parents edges, iterative three-color DFS.
    const IN_STACK: u8 = 1;
    const DONE: u8 = 2;
    let mut state: FxHashMap<AtomId, u8> = FxHashMap::default();
    for (start, _) in instance.iter() {
        if state.get(&start) == Some(&DONE) {
            continue;
        }
        let mut stack: Vec<(AtomId, usize)> = vec![(start, 0)];
        state.insert(start, IN_STACK);
        while let Some(&(cur, child)) = stack.last() {
            let parents = dag.creator_of(cur).map(|a| a.parents.as_slice()).unwrap_or(&[]);
            if child >= parents.len() {
                state.insert(cur, DONE);
                stack.pop();
                continue;
            }
            stack.last_mut().expect("stack is non-empty").1 += 1;
            let next = parents[child];
            match state.get(&next) {
                Some(&IN_STACK) => {
                    return Err(format!(
                        "derivation cycle through atom #{}",
                        next.index()
                    ));
                }
                Some(&DONE) => {}
                _ => {
                    state.insert(next, IN_STACK);
                    stack.push((next, 0));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{is_model, ChaseConfig};
    use crate::variant::ChaseVariant;

    fn machine(p: &Program, variant: ChaseVariant) -> ChaseMachine<'_> {
        ChaseMachine::new(
            p,
            ChaseConfig::of(variant).with_derivation(),
            Instance::from_atoms(p.facts().iter().cloned()),
        )
    }

    fn scratch_canonical(p: &Program, variant: ChaseVariant) -> Vec<String> {
        let mut m = machine(p, variant);
        assert!(m.run(&Budget::unlimited()).is_saturated());
        canonical_form(m.instance(), m.derivation())
    }

    const DATALOG: &str = "\
        p(X) -> q(X).\n\
        q(X) -> r(X).\n\
        p(a). p(b). q(a).\n";

    #[test]
    fn retraction_requires_derivation_tracking() {
        let mut p = Program::parse(DATALOG).unwrap();
        let edits = parse_edit_script("retract p(a).", &mut p).unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious),
            Instance::from_atoms(p.facts().iter().cloned()),
        );
        assert_eq!(
            m.apply_edits(&edits, &Budget::unlimited()),
            Err(UpdateError::DerivationRequired)
        );
    }

    #[test]
    fn retract_matches_from_scratch_chase() {
        for variant in [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious] {
            let mut p = Program::parse(DATALOG).unwrap();
            let edits = parse_edit_script("retract p(b).", &mut p).unwrap();
            let mut m = machine(&p, variant);
            assert!(m.run(&Budget::unlimited()).is_saturated());
            let report = m.apply_edits(&edits, &Budget::unlimited()).unwrap();
            assert!(report.outcome.is_saturated());
            assert_eq!(report.retracts, 1);
            check_support(m.instance(), m.derivation()).unwrap();
            let reference = scratch_canonical(&edited_program(&p, &edits), variant);
            assert_eq!(canonical_form(m.instance(), m.derivation()), reference);
        }
    }

    #[test]
    fn rederivable_base_fact_survives_as_derived() {
        // q(a) is base AND derivable from p(a); retracting the base
        // assertion must keep the content alive (DRed re-derivation) and
        // keep its consumers (r(a)) alive with it.
        let mut p = Program::parse(DATALOG).unwrap();
        let edits = parse_edit_script("retract q(a).", &mut p).unwrap();
        let mut m = machine(&p, ChaseVariant::SemiOblivious);
        assert!(m.run(&Budget::unlimited()).is_saturated());
        let report = m.apply_edits(&edits, &Budget::unlimited()).unwrap();
        assert!(report.restored_atoms >= 1, "q(a) must be restored: {report:?}");
        let q_a = p.facts()[2].clone(); // q(a) from the original text
        assert!(m.instance().contains(&q_a));
        assert!(
            m.instance().id_of(&q_a).map(|id| m.derivation().creator_of(id).is_some())
                == Some(true),
            "restored q(a) must be derived, not base"
        );
        check_support(m.instance(), m.derivation()).unwrap();
        let reference =
            scratch_canonical(&edited_program(&p, &edits), ChaseVariant::SemiOblivious);
        assert_eq!(canonical_form(m.instance(), m.derivation()), reference);
    }

    #[test]
    fn retracting_a_derived_atom_is_an_error() {
        let mut p = Program::parse("p(X) -> q(X).\np(a).\n").unwrap();
        let edits = parse_edit_script("retract q(a).", &mut p).unwrap();
        let mut m = machine(&p, ChaseVariant::SemiOblivious);
        assert!(m.run(&Budget::unlimited()).is_saturated());
        assert!(matches!(
            m.apply_edits(&edits, &Budget::unlimited()),
            Err(UpdateError::NotABaseFact(_))
        ));
    }

    #[test]
    fn existential_cone_is_deleted_and_nulls_reused_elsewhere() {
        // Example 1 of the paper: retracting person(b) kills only b's
        // father chain; a's chain keeps its original nulls.
        let text = "person(X) -> hasFather(X, Y), person(Y).\nperson(a). person(b).\n";
        for variant in [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious] {
            let mut p = Program::parse(text).unwrap();
            let edits = parse_edit_script("retract person(b).", &mut p).unwrap();
            let mut m = machine(&p, variant);
            let _ = m.run(&Budget::applications(12));
            let report = m.apply_edits(&edits, &Budget::applications(12)).unwrap();
            assert!(report.overdeleted >= 1);
            assert!(report.invalidated_apps >= 1);
            check_support(m.instance(), m.derivation()).unwrap();
            // The survivors are exactly a's chain: a from-scratch run on the
            // edited base reaches the same state after that many firings
            // (budgets are cumulative, so the updated machine applied
            // nothing new — its 12 are spent).
            let ep = edited_program(&p, &edits);
            let mut reference = machine(&ep, variant);
            let _ = reference.run(&Budget::applications(12 - report.invalidated_apps as u64));
            assert_eq!(
                canonical_form(m.instance(), m.derivation()),
                canonical_form(reference.instance(), reference.derivation()),
            );
        }
    }

    #[test]
    fn restricted_reopens_skips_whose_witness_died() {
        // Both rules want e(a, _). Whichever fires first satisfies the
        // other, which is skipped. Retracting the fired rule's base fact
        // deletes the witness; the skip must re-open and fire.
        let text = "p(X) -> e(X, Y).\nh(X) -> e(X, Y).\np(a). h(a).\n";
        let mut p = Program::parse(text).unwrap();
        let edits = parse_edit_script("retract p(a).", &mut p).unwrap();
        let mut m = machine(&p, ChaseVariant::Restricted);
        assert!(m.run(&Budget::unlimited()).is_saturated());
        assert_eq!(m.stats().satisfied_skips, 1);
        let report = m.apply_edits(&edits, &Budget::unlimited()).unwrap();
        assert!(report.outcome.is_saturated());
        assert_eq!(report.reopened_skips, 1);
        assert!(is_model(&p, m.instance()), "h-rule must be satisfied again");
        check_support(m.instance(), m.derivation()).unwrap();
    }

    #[test]
    fn interleaved_script_matches_from_scratch() {
        let mut p = Program::parse(DATALOG).unwrap();
        let script = "% refresh the b column\nretract p(b).\nadd p(c).\nadd q(b).\nretract p(a).\n";
        let edits = parse_edit_script(script, &mut p).unwrap();
        for variant in [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious] {
            let mut m = machine(&p, variant);
            assert!(m.run(&Budget::unlimited()).is_saturated());
            let report = m.apply_edits(&edits, &Budget::unlimited()).unwrap();
            assert!(report.outcome.is_saturated());
            assert_eq!(report.adds, 2);
            assert_eq!(report.retracts, 2);
            check_support(m.instance(), m.derivation()).unwrap();
            let reference = scratch_canonical(&edited_program(&p, &edits), variant);
            assert_eq!(canonical_form(m.instance(), m.derivation()), reference);
        }
    }

    #[test]
    fn edit_script_parse_errors_carry_line_numbers() {
        let mut p = Program::parse(DATALOG).unwrap();
        let err = parse_edit_script("add p(a).\ndrop p(b).", &mut p).unwrap_err();
        assert!(matches!(err, UpdateError::Script { line: 2, .. }), "{err}");
        let err = parse_edit_script("add p(a, b).", &mut p).unwrap_err();
        assert!(matches!(err, UpdateError::Script { line: 1, .. }), "{err}");
        // New predicates and constants are interned on the fly.
        let edits = parse_edit_script("add fresh(z).", &mut p).unwrap();
        assert_eq!(edits.len(), 1);
        assert!(p.vocab.pred("fresh").is_some());
    }

    #[test]
    fn update_after_budget_stop_repairs_the_queue() {
        // Stop mid-run with pending triggers, retract, then finish: the
        // final state must match the from-scratch chase of the edited base.
        let mut p = Program::parse(DATALOG).unwrap();
        let edits = parse_edit_script("retract p(a).", &mut p).unwrap();
        let mut m = machine(&p, ChaseVariant::SemiOblivious);
        let _ = m.run(&Budget::applications(1));
        let report = m.apply_edits(&edits, &Budget::unlimited()).unwrap();
        assert!(report.outcome.is_saturated());
        check_support(m.instance(), m.derivation()).unwrap();
        let reference = scratch_canonical(&edited_program(&p, &edits), ChaseVariant::SemiOblivious);
        assert_eq!(canonical_form(m.instance(), m.derivation()), reference);
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let text = "person(X) -> hasFather(X, Y), person(Y).\nperson(a). person(b).\n";
        let p = Program::parse(text).unwrap();
        let canon = |seed: u64| {
            let mut m = ChaseMachine::new(
                &p,
                ChaseConfig::of(ChaseVariant::Oblivious)
                    .with_random_scheduling(seed)
                    .with_derivation(),
                Instance::from_atoms(p.facts().iter().cloned()),
            );
            let _ = m.run(&Budget::applications(20));
            canonical_form(m.instance(), m.derivation())
        };
        // Null numbering depends on trigger order, so the canonical form of
        // a *saturated* run must be schedule-invariant; non-saturated runs
        // only get a rendering smoke check.
        let p2 = Program::parse(DATALOG).unwrap();
        let canon2 = |seed: u64| {
            let mut m = ChaseMachine::new(
                &p2,
                ChaseConfig::of(ChaseVariant::Oblivious)
                    .with_random_scheduling(seed)
                    .with_derivation(),
                Instance::from_atoms(p2.facts().iter().cloned()),
            );
            assert!(m.run(&Budget::unlimited()).is_saturated());
            canonical_form(m.instance(), m.derivation())
        };
        assert_eq!(canon2(7), canon2(1234));
        assert!(canon(7).iter().any(|a| a.contains("s0.0(")));
    }
}
