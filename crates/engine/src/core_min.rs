//! Cores of instances: folding away redundant nulls.
//!
//! A chase result is a *universal model*, but different chase variants
//! produce different-sized universal models of the same theory. Their
//! **core** — the smallest instance they retract onto — is unique up to
//! isomorphism, which makes cores the right tool for comparing chase
//! variants semantically (two universal models are homomorphically
//! equivalent iff their cores are isomorphic).
//!
//! The implementation is the classic folding loop: while some *proper*
//! endomorphism exists (an instance→instance homomorphism whose image
//! loses at least one null), apply it and restart. Core computation is
//! NP-hard in general; this is intended for the moderate instances that
//! appear in tests and experiments, and carries an explicit size guard.

use std::ops::ControlFlow;

use chasekit_core::{
    for_each_hom, Atom, FxHashMap, FxHashSet, Instance, NullId, Term, VarId,
};

/// Upper bound on nulls for which [`core_of`] will attempt folding.
pub const MAX_CORE_NULLS: usize = 64;

/// Computes the core of `instance` by iterated folding. Returns `None`
/// when the instance has more than [`MAX_CORE_NULLS`] nulls (the search
/// would be unreasonable).
pub fn core_of(instance: &Instance) -> Option<Instance> {
    let mut current = instance.clone();
    loop {
        let nulls: Vec<NullId> = distinct_nulls(&current);
        if nulls.len() > MAX_CORE_NULLS {
            return None;
        }
        if nulls.is_empty() {
            return Some(current);
        }
        match find_folding(&current, &nulls) {
            Some(mapping) => {
                current = apply_mapping(&current, &mapping);
            }
            None => return Some(current),
        }
    }
}

fn distinct_nulls(instance: &Instance) -> Vec<NullId> {
    let mut seen: FxHashSet<NullId> = FxHashSet::default();
    let mut out = Vec::new();
    for (_, atom) in instance.iter() {
        for n in atom.nulls() {
            if seen.insert(n) {
                out.push(n);
            }
        }
    }
    out
}

/// Looks for an endomorphism whose image drops at least one null.
fn find_folding(instance: &Instance, nulls: &[NullId]) -> Option<FxHashMap<NullId, Term>> {
    // Express the instance as a conjunction with nulls as variables.
    let var_of: FxHashMap<NullId, VarId> = nulls
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, VarId::from_index(i)))
        .collect();
    let patterns: Vec<Atom> = instance
        .iter()
        .map(|(_, a)| {
            a.map_args(|t| match t {
                Term::Null(n) => Term::Var(var_of[&n]),
                other => other,
            })
        })
        .collect();

    let mut found: Option<FxHashMap<NullId, Term>> = None;
    for_each_hom(&patterns, nulls.len(), instance, None, None, &mut |s| {
        // Does this endomorphism lose a null? (Either maps one to a
        // constant, or merges two.)
        let mut image: FxHashSet<Term> = FxHashSet::default();
        let mut lossy = false;
        for (i, _) in nulls.iter().enumerate() {
            let t = s.get(VarId::from_index(i)).expect("total homomorphism");
            if t.is_const() || !image.insert(t) {
                lossy = true;
                break;
            }
        }
        if lossy {
            let mapping = nulls
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, s.get(VarId::from_index(i)).unwrap()))
                .collect();
            found = Some(mapping);
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

fn apply_mapping(instance: &Instance, mapping: &FxHashMap<NullId, Term>) -> Instance {
    Instance::from_atoms(instance.iter().map(|(_, a)| {
        a.map_args(|t| match t {
            Term::Null(n) => mapping.get(&n).copied().unwrap_or(t),
            other => other,
        })
    }))
}

/// Whether two instances are isomorphic: a bijective, constant-fixing null
/// renaming turning one into the other. (Both directions of injective
/// homomorphism over equal cardinalities.)
pub fn instances_isomorphic(a: &Instance, b: &Instance) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let a_nulls = distinct_nulls(a);
    let b_nulls = distinct_nulls(b);
    if a_nulls.len() != b_nulls.len() {
        return false;
    }
    // Injective homomorphism a -> b with full atom coverage is an iso when
    // sizes match.
    let var_of: FxHashMap<NullId, VarId> = a_nulls
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, VarId::from_index(i)))
        .collect();
    let patterns: Vec<Atom> = a
        .iter()
        .map(|(_, atom)| {
            atom.map_args(|t| match t {
                Term::Null(n) => Term::Var(var_of[&n]),
                other => other,
            })
        })
        .collect();
    let mut iso = false;
    for_each_hom(&patterns, a_nulls.len(), b, None, None, &mut |s| {
        let mut image: FxHashSet<Term> = FxHashSet::default();
        let injective = (0..a_nulls.len()).all(|i| {
            let t = s.get(VarId::from_index(i)).unwrap();
            t.is_null() && image.insert(t)
        });
        if injective {
            iso = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    iso
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::PredId;

    fn c(i: u32) -> Term {
        Term::Const(chasekit_core::ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn ground_instances_are_their_own_core() {
        let inst = Instance::from_atoms([atom(0, vec![c(0), c(1)])]);
        let core = core_of(&inst).unwrap();
        assert_eq!(core.len(), 1);
    }

    #[test]
    fn redundant_null_folds_onto_a_constant() {
        // e(a, b) and e(a, z): z folds onto b.
        let inst = Instance::from_atoms([
            atom(0, vec![c(0), c(1)]),
            atom(0, vec![c(0), n(0)]),
        ]);
        let core = core_of(&inst).unwrap();
        assert_eq!(core.len(), 1);
        assert!(core.contains(&atom(0, vec![c(0), c(1)])));
    }

    #[test]
    fn non_redundant_null_survives() {
        // e(a, z) alone: z is the only witness; the core keeps it.
        let inst = Instance::from_atoms([atom(0, vec![c(0), n(0)])]);
        let core = core_of(&inst).unwrap();
        assert_eq!(core.len(), 1);
        assert_eq!(distinct_nulls(&core).len(), 1);
    }

    #[test]
    fn null_chain_folds_partially() {
        // e(a, z1), e(a, z2), e(z2, z3): z1 merges into z2 (the edge
        // e(a, z2) covers e(a, z1)), but z2 cannot fold further — its image
        // would need both an incoming a-edge and an outgoing edge, and only
        // z2 itself has both. Core: {e(a, z2), e(z2, z3)}.
        let inst = Instance::from_atoms([
            atom(0, vec![c(0), n(1)]),
            atom(0, vec![c(0), n(2)]),
            atom(0, vec![n(2), n(3)]),
        ]);
        let core = core_of(&inst).unwrap();
        assert_eq!(core.len(), 2);
        assert_eq!(distinct_nulls(&core).len(), 2);
    }

    #[test]
    fn cycles_are_cores() {
        // Directed null-cycles have only rotation endomorphisms (no
        // 2-loop inside to retract onto), so they are their own cores.
        for len in [3u32, 4] {
            let inst = Instance::from_atoms(
                (0..len).map(|i| atom(0, vec![n(i), n((i + 1) % len)])),
            );
            let core = core_of(&inst).unwrap();
            assert_eq!(core.len(), len as usize, "C{len} is a core");
        }
    }

    #[test]
    fn pendant_path_folds_into_a_two_cycle() {
        // 2-cycle with a pendant edge: the pendant folds into the cycle.
        let inst = Instance::from_atoms([
            atom(0, vec![n(0), n(1)]),
            atom(0, vec![n(1), n(0)]),
            atom(0, vec![n(1), n(2)]),
        ]);
        let core = core_of(&inst).unwrap();
        assert_eq!(core.len(), 2, "pendant edge retracts onto the cycle");
        let two = Instance::from_atoms([
            atom(0, vec![n(7), n(8)]),
            atom(0, vec![n(8), n(7)]),
        ]);
        assert!(instances_isomorphic(&core, &two));
    }

    #[test]
    fn isomorphism_is_null_renaming_only() {
        let a = Instance::from_atoms([atom(0, vec![c(0), n(0)])]);
        let b = Instance::from_atoms([atom(0, vec![c(0), n(9)])]);
        let diff = Instance::from_atoms([atom(0, vec![c(1), n(0)])]);
        assert!(instances_isomorphic(&a, &b));
        assert!(!instances_isomorphic(&a, &diff));
    }

    #[test]
    fn cores_of_different_chase_variants_are_isomorphic() {
        use crate::chase::chase;
        use crate::guard::Budget;
        use crate::variant::ChaseVariant;
        use chasekit_core::Program;
        let p = Program::parse(
            "emp(a). emp(b).
             emp(X) -> dept(X, D), mgr(D, M). mgr(D, M) -> boss(M).",
        )
        .unwrap();
        let db = Instance::from_atoms(p.facts().iter().cloned());
        let so = chase(&p, ChaseVariant::SemiOblivious, db.clone(), &Budget::default());
        let rst = chase(&p, ChaseVariant::Restricted, db, &Budget::default());
        let core_so = core_of(&so.instance).unwrap();
        let core_rst = core_of(&rst.instance).unwrap();
        assert!(
            instances_isomorphic(&core_so, &core_rst),
            "universal models of the same theory share a core"
        );
    }

    #[test]
    fn oversized_instances_are_refused() {
        let atoms: Vec<Atom> = (0..(MAX_CORE_NULLS as u32 + 1))
            .map(|i| atom(0, vec![n(i), n(i + 1000)]))
            .collect();
        let inst = Instance::from_atoms(atoms);
        assert!(core_of(&inst).is_none());
    }
}
