//! Checkpoint/resume for chase runs.
//!
//! A [`Checkpoint`] captures everything a [`ChaseMachine`] needs to pick a
//! run back up exactly where it stopped: the instance (with the null
//! high-water mark), the pending-trigger queue, the trigger-identity set,
//! the scheduler RNG state, sequence counter, run statistics, and — when
//! tracking is enabled — the derivation DAG and Skolem-ancestry tables.
//!
//! **Determinism guarantee.** For a FIFO-scheduled run, interrupting at
//! any step boundary (deadline, cancellation, any budget), snapshotting,
//! and resuming yields *exactly* the same final instance, stats, and
//! derivation as the uninterrupted run — the queue order and identity set
//! are preserved verbatim. The same holds for `Scheduling::Random` because
//! the xorshift state is part of the snapshot. This is what makes
//! wall-clock guardrails safe to use in experiments: a killed-and-resumed
//! sample is the same sample.
//!
//! Checkpoints serialize to a line-oriented text format
//! ([`Checkpoint::to_text`]/[`Checkpoint::from_text`]) so the CLI can park
//! long runs on disk (`chasekit chase --checkpoint FILE`). The text format
//! intentionally excludes derivation/Skolem tracking state (those runs
//! are analysis runs, not long-haul runs); in-memory snapshots carry both.
//! A fingerprint of the program text guards against resuming a checkpoint
//! under a different program, which would silently corrupt the run.

use chasekit_core::display::program_to_string;
use chasekit_core::{
    Atom, FxHashMap, FxHashSet, Instance, NullId, PredId, Program, Substitution, Term, VarId,
};

use crate::chase::{ChaseConfig, ChaseMachine, ChaseStats, Scheduling, SkolemInfo, Trigger};
use crate::variant::ChaseVariant;

/// Why a checkpoint could not be created, serialized, or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was taken under a different program than the one
    /// offered for resume.
    ProgramMismatch {
        /// Fingerprint recorded in the checkpoint.
        expected: u64,
        /// Fingerprint of the program offered for resume.
        found: u64,
    },
    /// The checkpoint references state the program cannot supply (e.g. a
    /// rule index out of range).
    Inconsistent(String),
    /// This checkpoint cannot be written as text (derivation or Skolem
    /// tracking was enabled; only in-memory snapshots carry those).
    Unserializable(&'static str),
    /// The text form could not be parsed.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::ProgramMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different program \
                 (fingerprint {expected:016x}, offered program has {found:016x})"
            ),
            CheckpointError::Inconsistent(msg) => {
                write!(f, "checkpoint is inconsistent with the program: {msg}")
            }
            CheckpointError::Unserializable(what) => {
                write!(f, "checkpoint cannot be serialized: {what}")
            }
            CheckpointError::Parse(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A point-in-time capture of a chase run. See the module docs.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    config: ChaseConfig,
    program_fingerprint: u64,
    atoms: Vec<Atom>,
    next_null: u32,
    /// Pending triggers in queue order: rule index + substitution slots.
    queue: Vec<(usize, Vec<Option<Term>>)>,
    /// Trigger-identity entries, sorted for a canonical byte representation.
    seen: Vec<(u32, Vec<Term>)>,
    stats: ChaseStats,
    next_seq: u64,
    rng_state: u64,
    derivation: crate::derivation::DerivationDag,
    skolem: Vec<(NullId, SkolemInfo)>,
    skolem_cyclic: Option<NullId>,
}

/// FNV-1a over the canonical program text: cheap, stable across runs, and
/// collision-resistant enough for "is this the same program file".
pub(crate) fn program_fingerprint(program: &Program) -> u64 {
    let text = program_to_string(program);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<'p> ChaseMachine<'p> {
    /// Captures the machine's complete run state. Cheap relative to a chase
    /// run (clones the instance, queue, and identity set); callable at any
    /// step boundary, including after a guardrail stop.
    pub fn snapshot(&self) -> Checkpoint {
        // An updated machine (see `crate::incremental`) holds tombstoned
        // slab ids that the derivation DAG still references; re-numbering
        // the atoms densely here would silently detach the DAG.
        debug_assert!(
            self.instance.len() == self.instance.slab_len() || !self.config.track_derivation,
            "cannot snapshot a machine with retracted atoms"
        );
        let mut seen: Vec<(u32, Vec<Term>)> = self.seen.iter().cloned().collect();
        seen.sort();
        let mut skolem: Vec<(NullId, SkolemInfo)> =
            self.skolem.iter().map(|(k, v)| (*k, v.clone())).collect();
        skolem.sort_by_key(|(n, _)| *n);
        Checkpoint {
            config: self.config,
            program_fingerprint: program_fingerprint(self.program),
            atoms: self.instance.iter().map(|(_, a)| a.to_atom()).collect(),
            next_null: self.instance.null_count() as u32,
            queue: self
                .queue
                .iter()
                .map(|t| {
                    let slots = (0..t.subst.len())
                        .map(|v| t.subst.get(VarId(v as u32)))
                        .collect();
                    (t.rule, slots)
                })
                .collect(),
            seen,
            stats: self.stats.clone(),
            next_seq: self.next_seq,
            rng_state: self.rng_state,
            derivation: self.derivation.clone(),
            skolem,
            skolem_cyclic: self.skolem_cyclic,
        }
    }
}

impl Checkpoint {
    /// Run statistics at the moment of the snapshot.
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// Number of pending triggers captured.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of instance atoms captured.
    pub fn atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Reconstructs a runnable machine from this checkpoint.
    ///
    /// `program` must be the same program the checkpoint was taken under
    /// (checked by fingerprint). The resumed machine continues the run
    /// deterministically: same queue order, same identity set, same RNG
    /// state, same statistics.
    pub fn resume<'p>(&self, program: &'p Program) -> Result<ChaseMachine<'p>, CheckpointError> {
        let found = program_fingerprint(program);
        if found != self.program_fingerprint {
            return Err(CheckpointError::ProgramMismatch {
                expected: self.program_fingerprint,
                found,
            });
        }

        let mut instance = Instance::from_atoms(self.atoms.iter().cloned());
        // Restore the null high-water mark: nulls may have been minted past
        // the highest null occurring in an atom (e.g. imported instances).
        while instance.null_count() < self.next_null as usize {
            instance.fresh_null();
        }

        let mut queue = std::collections::VecDeque::with_capacity(self.queue.len());
        let mut queue_bytes = 0usize;
        for (rule_idx, slots) in &self.queue {
            let rule = program.rules().get(*rule_idx).ok_or_else(|| {
                CheckpointError::Inconsistent(format!(
                    "pending trigger references rule #{rule_idx}, but the program has {} rules",
                    program.rules().len()
                ))
            })?;
            if slots.len() != rule.var_count() {
                return Err(CheckpointError::Inconsistent(format!(
                    "pending trigger for rule #{rule_idx} has {} slots, rule has {} variables",
                    slots.len(),
                    rule.var_count()
                )));
            }
            let mut subst = Substitution::new(slots.len());
            for (v, slot) in slots.iter().enumerate() {
                if let Some(t) = slot {
                    subst.bind(VarId(v as u32), *t);
                }
            }
            queue_bytes += crate::guard::approx_trigger_bytes(subst.len());
            queue.push_back(Trigger { rule: *rule_idx, subst });
        }

        let mut seen: FxHashSet<(u32, Vec<Term>)> = FxHashSet::default();
        let mut seen_bytes = 0usize;
        for entry in &self.seen {
            seen_bytes += crate::guard::approx_identity_bytes(entry.1.len());
            seen.insert(entry.clone());
        }

        let atom_bytes: usize = instance
            .iter()
            .map(|(_, a)| crate::guard::approx_atom_bytes(a.arity()))
            .sum();

        let skolem: FxHashMap<NullId, SkolemInfo> =
            self.skolem.iter().map(|(k, v)| (*k, v.clone())).collect();

        Ok(ChaseMachine {
            program,
            config: self.config,
            instance,
            queue,
            seen,
            derivation: self.derivation.clone(),
            stats: self.stats.clone(),
            skolem,
            skolem_cyclic: self.skolem_cyclic,
            next_seq: self.next_seq,
            rng_state: self.rng_state,
            approx_bytes: atom_bytes + queue_bytes + seen_bytes,
            cancel: None,
            round_stats: crate::round::RoundStats::default(),
            trace: None,
            progress: None,
            journal: None,
            scratch: chasekit_core::MatchScratch::default(),
            args_buf: Vec::new(),
            pool: None,
            skipped: Vec::new(),
        })
    }

    /// Serializes the checkpoint to the line-oriented text format.
    ///
    /// Fails with [`CheckpointError::Unserializable`] if the run tracked
    /// derivations or Skolem ancestry — those analysis structures are only
    /// carried by in-memory snapshots.
    pub fn to_text(&self) -> Result<String, CheckpointError> {
        if self.config.track_derivation {
            return Err(CheckpointError::Unserializable(
                "derivation tracking is enabled; use an in-memory snapshot",
            ));
        }
        if self.config.track_skolem {
            return Err(CheckpointError::Unserializable(
                "skolem tracking is enabled; use an in-memory snapshot",
            ));
        }

        let mut out = String::new();
        out.push_str("chasekit-checkpoint v1\n");
        out.push_str(&format!("program {:016x}\n", self.program_fingerprint));
        let variant = match self.config.variant {
            ChaseVariant::Oblivious => "oblivious",
            ChaseVariant::SemiOblivious => "semi-oblivious",
            ChaseVariant::Restricted => "restricted",
        };
        out.push_str(&format!("variant {variant}\n"));
        out.push_str(&format!("naive-matching {}\n", self.config.naive_matching as u8));
        match self.config.scheduling {
            Scheduling::Fifo => out.push_str("scheduling fifo\n"),
            Scheduling::Random(seed) => out.push_str(&format!("scheduling random {seed}\n")),
        }
        out.push_str(&format!("rng {}\n", self.rng_state));
        out.push_str(&format!("seq {}\n", self.next_seq));
        out.push_str(&format!("nulls {}\n", self.next_null));
        let s = &self.stats;
        out.push_str(&format!(
            "stats {} {} {} {} {} {} {}\n",
            s.applications,
            s.atoms_added,
            s.duplicate_atoms,
            s.triggers_enqueued,
            s.triggers_deduped,
            s.satisfied_skips,
            s.nulls_minted
        ));

        out.push_str(&format!("atoms {}\n", self.atoms.len()));
        for atom in &self.atoms {
            out.push_str(&format!("a {}", atom.pred.0));
            for &t in &atom.args {
                out.push(' ');
                out.push_str(&term_token(t)?);
            }
            out.push('\n');
        }

        out.push_str(&format!("queue {}\n", self.queue.len()));
        for (rule, slots) in &self.queue {
            out.push_str(&format!("q {rule}"));
            for slot in slots {
                out.push(' ');
                match slot {
                    Some(t) => out.push_str(&term_token(*t)?),
                    None => out.push('_'),
                }
            }
            out.push('\n');
        }

        out.push_str(&format!("seen {}\n", self.seen.len()));
        for (rule, key) in &self.seen {
            out.push_str(&format!("s {rule}"));
            for &t in key {
                out.push(' ');
                out.push_str(&term_token(t)?);
            }
            out.push('\n');
        }
        out.push_str("end\n");
        // Integrity trailer: CRC32 over every byte above, so recovery can
        // tell a corrupted snapshot from a valid one (not just a torn one).
        let crc = crate::journal::crc32(out.as_bytes());
        out.push_str(&format!("crc {crc:08x}\n"));
        Ok(out)
    }

    /// Parses the text format produced by [`Checkpoint::to_text`].
    ///
    /// Strict in both directions: every parse error names the offending
    /// line, a `crc` trailer (written by every current [`to_text`](Self::to_text))
    /// is verified against the content, and any bytes after the final
    /// section are rejected as trailing garbage.
    pub fn from_text(text: &str) -> Result<Checkpoint, CheckpointError> {
        let all: Vec<&str> = text.lines().collect();
        let mut idx = 0usize;
        let mut next = |what: &str| -> Result<(usize, &str), CheckpointError> {
            if idx >= all.len() {
                return Err(CheckpointError::Parse(format!(
                    "line {}: unexpected end of file, expected {what}",
                    all.len() + 1
                )));
            }
            idx += 1;
            Ok((idx, all[idx - 1]))
        };

        let (_, header) = next("header")?;
        if header.trim() != "chasekit-checkpoint v1" {
            return Err(CheckpointError::Parse(format!(
                "line 1: bad header {header:?} (expected \"chasekit-checkpoint v1\")"
            )));
        }

        let program_fingerprint = {
            let (n, l) = next("program line")?;
            let rest = l.strip_prefix("program ").ok_or_else(|| bad(n, l, "program <hex>"))?;
            u64::from_str_radix(rest.trim(), 16).map_err(|_| bad(n, l, "program <hex>"))?
        };

        let variant = {
            let (n, l) = next("variant line")?;
            let rest = l.strip_prefix("variant ").ok_or_else(|| bad(n, l, "variant <name>"))?;
            match rest.trim() {
                "oblivious" => ChaseVariant::Oblivious,
                "semi-oblivious" => ChaseVariant::SemiOblivious,
                "restricted" => ChaseVariant::Restricted,
                other => {
                    return Err(CheckpointError::Parse(format!(
                        "line {n}: unknown chase variant {other:?}"
                    )))
                }
            }
        };

        let naive_matching = {
            let (n, l) = next("naive-matching line")?;
            let rest =
                l.strip_prefix("naive-matching ").ok_or_else(|| bad(n, l, "naive-matching <0|1>"))?;
            match rest.trim() {
                "0" => false,
                "1" => true,
                _ => return Err(bad(n, l, "naive-matching <0|1>")),
            }
        };

        let scheduling = {
            let (n, l) = next("scheduling line")?;
            let rest = l.strip_prefix("scheduling ").ok_or_else(|| bad(n, l, "scheduling <policy>"))?;
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("fifo"), None) => Scheduling::Fifo,
                (Some("random"), Some(seed)) => Scheduling::Random(
                    seed.parse().map_err(|_| bad(n, l, "scheduling random <seed>"))?,
                ),
                _ => return Err(bad(n, l, "scheduling fifo|random <seed>")),
            }
        };

        let rng_state: u64 = {
            let (n, l) = next("rng line")?;
            kv(n, l, "rng")?
        };
        let next_seq: u64 = {
            let (n, l) = next("seq line")?;
            kv(n, l, "seq")?
        };
        let next_null: u32 = {
            let (n, l) = next("nulls line")?;
            kv(n, l, "nulls")?
        };

        let stats = {
            let (n, l) = next("stats line")?;
            let rest = l.strip_prefix("stats ").ok_or_else(|| bad(n, l, "stats <7 counters>"))?;
            let nums: Vec<u64> = rest
                .split_whitespace()
                .map(|w| w.parse::<u64>())
                .collect::<Result<_, _>>()
                .map_err(|_| bad(n, l, "stats <7 counters>"))?;
            if nums.len() != 7 {
                return Err(bad(n, l, "stats <7 counters>"));
            }
            ChaseStats {
                applications: nums[0],
                atoms_added: nums[1],
                duplicate_atoms: nums[2],
                triggers_enqueued: nums[3],
                triggers_deduped: nums[4],
                satisfied_skips: nums[5],
                nulls_minted: nums[6],
            }
        };

        let atom_count: usize = {
            let (n, l) = next("atoms line")?;
            kv(n, l, "atoms")?
        };
        let mut atoms = Vec::with_capacity(atom_count);
        for _ in 0..atom_count {
            let (n, l) = next("atom line")?;
            let rest = l.strip_prefix("a ").ok_or_else(|| bad(n, l, "a <pred> <terms...>"))?;
            let mut parts = rest.split_whitespace();
            let pred: u32 = parts
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| bad(n, l, "a <pred> <terms...>"))?;
            let args = parts
                .map(|w| parse_term_token(w).ok_or_else(|| bad(n, l, "term token")))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|t| t.ok_or_else(|| bad(n, l, "ground term (no `_`)")))
                .collect::<Result<Vec<_>, _>>()?;
            atoms.push(Atom::new(PredId(pred), args));
        }

        let queue_count: usize = {
            let (n, l) = next("queue line")?;
            kv(n, l, "queue")?
        };
        let mut queue = Vec::with_capacity(queue_count);
        for _ in 0..queue_count {
            let (n, l) = next("queue line")?;
            let rest = l.strip_prefix("q ").ok_or_else(|| bad(n, l, "q <rule> <slots...>"))?;
            let mut parts = rest.split_whitespace();
            let rule: usize = parts
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| bad(n, l, "q <rule> <slots...>"))?;
            let slots = parts
                .map(|w| parse_term_token(w).ok_or_else(|| bad(n, l, "slot token")))
                .collect::<Result<Vec<_>, _>>()?;
            queue.push((rule, slots));
        }

        let seen_count: usize = {
            let (n, l) = next("seen line")?;
            kv(n, l, "seen")?
        };
        let mut seen = Vec::with_capacity(seen_count);
        for _ in 0..seen_count {
            let (n, l) = next("seen line")?;
            let rest = l.strip_prefix("s ").ok_or_else(|| bad(n, l, "s <rule> <terms...>"))?;
            let mut parts = rest.split_whitespace();
            let rule: u32 = parts
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| bad(n, l, "s <rule> <terms...>"))?;
            let key = parts
                .map(|w| parse_term_token(w).ok_or_else(|| bad(n, l, "term token")))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|t| t.ok_or_else(|| bad(n, l, "ground term (no `_`)")))
                .collect::<Result<Vec<_>, _>>()?;
            seen.push((rule, key));
        }

        let (n, l) = next("end line")?;
        if l.trim() != "end" {
            return Err(bad(n, l, "end"));
        }
        let mut pos = n; // 0-based index of the line after `end`

        // Integrity trailer (optional on input for pre-trailer files):
        // CRC32 over everything through the `end` line.
        if pos < all.len() && all[pos].starts_with("crc") {
            let lineno = pos + 1;
            let l = all[pos];
            let want = l
                .strip_prefix("crc ")
                .and_then(|r| u32::from_str_radix(r.trim(), 16).ok())
                .ok_or_else(|| bad(lineno, l, "crc <hex>"))?;
            // `to_text` writes `\n` endings, so the joined lines reproduce
            // the hashed bytes exactly; anything else (e.g. `\r\n`) is not
            // a file we wrote and fails the check as corruption.
            let mut covered = all[..pos].join("\n");
            covered.push('\n');
            let got = crate::journal::crc32(covered.as_bytes());
            if got != want {
                return Err(CheckpointError::Parse(format!(
                    "line {lineno}: checkpoint CRC mismatch (trailer {want:08x}, content {got:08x})"
                )));
            }
            pos += 1;
        }

        if pos < all.len() {
            return Err(CheckpointError::Parse(format!(
                "line {}: trailing garbage after checkpoint end: {:?}",
                pos + 1,
                all[pos]
            )));
        }

        Ok(Checkpoint {
            config: ChaseConfig {
                variant,
                track_derivation: false,
                track_skolem: false,
                naive_matching,
                scheduling,
            },
            program_fingerprint,
            atoms,
            next_null,
            queue,
            seen,
            stats,
            next_seq,
            rng_state,
            derivation: crate::derivation::DerivationDag::new(),
            skolem: Vec::new(),
            skolem_cyclic: None,
        })
    }
}

fn bad(line: usize, content: &str, expected: &str) -> CheckpointError {
    CheckpointError::Parse(format!("line {line}: {content:?} (expected `{expected}`)"))
}

/// Parses a `<key> <number>` line.
fn kv<T: std::str::FromStr>(n: usize, l: &str, key: &str) -> Result<T, CheckpointError> {
    let expected = format!("{key} <number>");
    let rest = l
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| bad(n, l, &expected))?;
    rest.trim().parse().map_err(|_| bad(n, l, &expected))
}

/// `c<id>` for constants, `n<id>` for nulls, `_` for an unbound slot.
/// Variables never occur in checkpoints (all captured terms are ground).
fn term_token(t: Term) -> Result<String, CheckpointError> {
    match t {
        Term::Const(c) => Ok(format!("c{}", c.0)),
        Term::Null(n) => Ok(format!("n{}", n.0)),
        Term::Var(_) => Err(CheckpointError::Unserializable(
            "checkpoint contains a non-ground term",
        )),
    }
}

/// Inverse of [`term_token`]: `Some(None)` is the `_` unbound marker.
fn parse_term_token(w: &str) -> Option<Option<Term>> {
    if w == "_" {
        return Some(None);
    }
    let (kind, id) = w.split_at(1);
    let id: u32 = id.parse().ok()?;
    match kind {
        "c" => Some(Some(Term::Const(chasekit_core::ConstId(id)))),
        "n" => Some(Some(Term::Null(NullId(id)))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{ChaseConfig, ChaseMachine};
    use crate::guard::Budget;

    fn facts(p: &Program) -> Instance {
        Instance::from_atoms(p.facts().iter().cloned())
    }

    /// Runs `program` straight through under `budget_total` applications,
    /// and again interrupted at `cut` applications + snapshot + resume;
    /// asserts both paths produce identical instances and stats.
    fn assert_resume_transparent(text: &str, variant: ChaseVariant, cut: u64, total: u64) {
        let p = Program::parse(text).unwrap();

        let mut straight = ChaseMachine::new(&p, ChaseConfig::of(variant), facts(&p));
        let straight_stop = straight.run(&Budget::applications(total));

        let mut first = ChaseMachine::new(&p, ChaseConfig::of(variant), facts(&p));
        let first_stop = first.run(&Budget::applications(cut));
        assert!(first_stop.exhausted() || straight_stop.is_saturated());

        let snap = first.snapshot();
        // Round-trip through the text format too, so the CLI path gets the
        // same guarantee.
        let snap = Checkpoint::from_text(&snap.to_text().unwrap()).unwrap();
        let mut resumed = snap.resume(&p).unwrap();
        let resumed_stop = resumed.run(&Budget::applications(total));

        assert_eq!(resumed_stop, straight_stop);
        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(resumed.instance().len(), straight.instance().len());
        for (i, (_, atom)) in straight.instance().iter().enumerate() {
            assert_eq!(
                resumed.instance().atom(chasekit_core::AtomId::from_index(i)),
                atom,
                "atom #{i} diverged after resume"
            );
        }
        assert_eq!(
            resumed.approx_memory_bytes(),
            straight.approx_memory_bytes(),
            "memory accounting diverged after resume"
        );
    }

    /// Paper Example 1 (diverging): interrupting and resuming the FIFO run
    /// is invisible in the final instance.
    #[test]
    fn resume_is_transparent_on_paper_example_1() {
        let text = "person(X) -> hasFather(X, Y), person(Y). person(bob).";
        for variant in
            [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted]
        {
            for cut in [1, 7, 50] {
                assert_resume_transparent(text, variant, cut, 120);
            }
        }
    }

    /// Paper Example 2 (diverging path-builder): same transparency.
    #[test]
    fn resume_is_transparent_on_paper_example_2() {
        let text = "p(a, b). p(X, Y) -> p(Y, Z).";
        for variant in
            [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted]
        {
            for cut in [1, 13, 60] {
                assert_resume_transparent(text, variant, cut, 90);
            }
        }
    }

    /// A terminating workload: interrupt mid-run, resume, and the run still
    /// saturates to the identical model.
    #[test]
    fn resume_is_transparent_on_terminating_workloads() {
        let text = "e(a, b). e(b, c). e(c, d).
                    e(X, Y) -> t(X, Y).
                    e(X, Y), t(Y, Z) -> t(X, Z).";
        assert_resume_transparent(text, ChaseVariant::SemiOblivious, 2, 100_000);
        assert_resume_transparent(text, ChaseVariant::Restricted, 3, 100_000);
    }

    /// Random scheduling snapshots the xorshift state, so resume stays
    /// deterministic there as well.
    #[test]
    fn resume_preserves_random_scheduling_state() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z). p(X, Y) -> q(X).").unwrap();
        let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_random_scheduling(42);

        let mut straight = ChaseMachine::new(&p, cfg, facts(&p));
        let _ = straight.run(&Budget::applications(80));

        let mut first = ChaseMachine::new(&p, cfg, facts(&p));
        let _ = first.run(&Budget::applications(25));
        let snap = Checkpoint::from_text(&first.snapshot().to_text().unwrap()).unwrap();
        let mut resumed = snap.resume(&p).unwrap();
        let _ = resumed.run(&Budget::applications(80));

        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(resumed.instance().len(), straight.instance().len());
        for (_, atom) in straight.instance().iter() {
            assert!(resumed.instance().id_of_parts(atom.pred, atom.args).is_some());
        }
    }

    /// Cross-mode interop: a mid-run checkpoint taken under one execution
    /// mode resumes under the other and still lands bit-identically on the
    /// straight sequential run — execution mode is not part of the
    /// checkpointed state.
    fn assert_cross_mode_resume(text: &str, variant: ChaseVariant, cut: u64, total: u64) {
        let p = Program::parse(text).unwrap();

        let mut straight = ChaseMachine::new(&p, ChaseConfig::of(variant), facts(&p));
        let straight_stop = straight.run(&Budget::applications(total));
        let straight_text = straight.snapshot().to_text().unwrap();

        // Sequential prefix, parallel continuation.
        let mut seq_first = ChaseMachine::new(&p, ChaseConfig::of(variant), facts(&p));
        let _ = seq_first.run(&Budget::applications(cut));
        let snap = Checkpoint::from_text(&seq_first.snapshot().to_text().unwrap()).unwrap();
        let mut par_resumed = snap.resume(&p).unwrap();
        assert_eq!(
            par_resumed.run_parallel(&Budget::applications(total), 4),
            straight_stop,
            "stop reason diverged resuming sequential -> parallel"
        );
        assert_eq!(
            par_resumed.snapshot().to_text().unwrap(),
            straight_text,
            "state diverged resuming sequential -> parallel"
        );

        // Parallel prefix, sequential continuation.
        let mut par_first = ChaseMachine::new(&p, ChaseConfig::of(variant), facts(&p));
        let _ = par_first.run_parallel(&Budget::applications(cut), 4);
        let snap = Checkpoint::from_text(&par_first.snapshot().to_text().unwrap()).unwrap();
        let mut seq_resumed = snap.resume(&p).unwrap();
        assert_eq!(
            seq_resumed.run(&Budget::applications(total)),
            straight_stop,
            "stop reason diverged resuming parallel -> sequential"
        );
        assert_eq!(
            seq_resumed.snapshot().to_text().unwrap(),
            straight_text,
            "state diverged resuming parallel -> sequential"
        );
    }

    /// Paper Examples 1 and 2: checkpoints migrate between the sequential
    /// and the parallel-round engine in both directions.
    #[test]
    fn checkpoints_are_interchangeable_between_execution_modes() {
        for variant in
            [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted]
        {
            assert_cross_mode_resume(
                "person(X) -> hasFather(X, Y), person(Y). person(bob).",
                variant,
                7,
                90,
            );
            assert_cross_mode_resume("p(a, b). p(X, Y) -> p(Y, Z).", variant, 13, 70);
        }
    }

    /// Same interop on a terminating workload: the saturated model is
    /// reached from either mode's mid-run checkpoint.
    #[test]
    fn checkpoints_migrate_across_modes_on_terminating_workloads() {
        let text = "e(a, b). e(b, c). e(c, d).
                    e(X, Y) -> t(X, Y).
                    e(X, Y), t(Y, Z) -> t(X, Z).";
        assert_cross_mode_resume(text, ChaseVariant::SemiOblivious, 2, 100_000);
        assert_cross_mode_resume(text, ChaseVariant::Restricted, 3, 100_000);
    }

    #[test]
    fn resume_under_a_different_program_is_rejected() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let other = Program::parse("p(a, b). p(X, Y) -> p(X, Z).").unwrap();
        let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Oblivious), facts(&p));
        let _ = m.run(&Budget::applications(5));
        let snap = m.snapshot();
        match snap.resume(&other) {
            Err(CheckpointError::ProgramMismatch { .. }) => {}
            other => panic!("expected ProgramMismatch, got {other:?}"),
        }
    }

    #[test]
    fn text_form_is_canonical_and_round_trips() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::SemiOblivious), facts(&p));
        let _ = m.run(&Budget::applications(9));
        let text = m.snapshot().to_text().unwrap();
        let reparsed = Checkpoint::from_text(&text).unwrap();
        assert_eq!(reparsed.to_text().unwrap(), text);
        assert_eq!(reparsed.pending(), m.pending());
        assert_eq!(reparsed.atoms(), m.instance().len());
    }

    #[test]
    fn tracked_runs_refuse_text_serialization() {
        let p = Program::parse("p(a). p(X) -> q(X, Y).").unwrap();
        let mut m = ChaseMachine::new(
            &p,
            ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation(),
            facts(&p),
        );
        let _ = m.run(&Budget::default());
        assert!(matches!(m.snapshot().to_text(), Err(CheckpointError::Unserializable(_))));
    }

    /// In-memory snapshots do carry the derivation DAG and skolem state.
    #[test]
    fn in_memory_snapshot_preserves_tracking_state() {
        let p = Program::parse("person(a). person(X) -> father(X, Y), person(Y).").unwrap();
        let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation().with_skolem();

        let mut straight = ChaseMachine::new(&p, cfg, facts(&p));
        let _ = straight.run(&Budget::applications(20));

        let mut first = ChaseMachine::new(&p, cfg, facts(&p));
        let _ = first.run(&Budget::applications(6));
        let mut resumed = first.snapshot().resume(&p).unwrap();
        let _ = resumed.run(&Budget::applications(20));

        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(
            resumed.derivation().applications().len(),
            straight.derivation().applications().len()
        );
        assert_eq!(resumed.skolem_cyclic(), straight.skolem_cyclic());
    }

    #[test]
    fn malformed_text_is_reported_with_line_context() {
        assert!(matches!(
            Checkpoint::from_text("not a checkpoint"),
            Err(CheckpointError::Parse(_))
        ));
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::Oblivious), facts(&p));
        let _ = m.run(&Budget::applications(3));
        let good = m.snapshot().to_text().unwrap();
        let truncated = &good[..good.len() / 2];
        assert!(matches!(Checkpoint::from_text(truncated), Err(CheckpointError::Parse(_))));
    }
}
