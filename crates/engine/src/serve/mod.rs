//! `chasekit serve`: a crash-resilient multi-tenant chase service.
//!
//! PRs 1–4 built the production bones — budgets, cancellation, traces,
//! checkpoints, crash-safe journals — but they only composed inside one
//! CLI invocation. This subsystem composes them behind a long-running
//! server so many clients can submit programs concurrently, each chase an
//! isolated, fault-contained, durably journaled **job**:
//!
//! * [`protocol`] — the newline-delimited flat-JSON wire format and the
//!   hardened line reader at the trust boundary;
//! * [`runner`] — [`runner::run_job`], the one durable execution loop
//!   both fresh submissions and restart recovery go through;
//! * [`store`] — the on-disk job store whose `meta`/`result` markers
//!   carry the crash-consistency protocol;
//! * [`server`] — admission control, the worker pool, connection
//!   handling, the recovery scan, and the result cache.
//!
//! The design contract, inherited from the journal layer and enforced by
//! the kill-at-every-failpoint suite: **bit-identical or cleanly
//! truncated, never fabricated**. A server SIGKILL'd at any point —
//! mid-append, mid-snapshot, in the admit window, between a job's final
//! checkpoint and its result marker — recovers on restart to a state from
//! which every admitted job completes with a final checkpoint
//! byte-identical to a run that never crashed.

pub mod protocol;
pub mod runner;
pub mod server;
pub mod store;

pub use protocol::{parse_request, read_line_capped, ReadLine, Request};
pub use runner::{run_job, JobPaths, JobReport, JobSpec};
pub use server::{serve, ServeConfig, ServerHandle};
pub use store::{JobResult, JobStore, ScanReport, StoredJob};
