//! Wire protocol of `chasekit serve`: newline-delimited flat JSON.
//!
//! The build is offline (no HTTP or serde crates), so the protocol is the
//! smallest thing a shell script can speak: one JSON object per line, one
//! response line per request (plus trace-event lines when streaming). The
//! grammar is deliberately **flat and closed** — every value is a string
//! or a non-negative integer, and every field name is checked against the
//! request's schema, in the same spirit as
//! [`validate_trace_line`](crate::trace::validate_trace_line).
//!
//! ```text
//! {"op":"submit","program":"p(a). p(X) -> p(Y).","variant":"so","steps":500}
//! {"op":"update","job":"job-3","script":"retract p(a).\nadd p(b)."}
//! {"op":"status","job":"job-3"}
//! {"op":"wait","job":"job-3"}
//! {"op":"cancel","job":"job-3"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! This module is the server's **trust boundary**: request lines arrive
//! from arbitrary clients and may be truncated, oversized, non-UTF-8, or
//! structurally hostile. Every such defect maps to a structured error
//! response — the connection handler never panics and the stream stays
//! line-synchronized (an oversized line is discarded up to its newline, so
//! the next request parses cleanly).

use std::io::{self, BufRead};

use chasekit_core::display::json_string;

use crate::journal::{parse_variant, variant_token};
use crate::ChaseVariant;

/// Default cap on a request line, including the program text (1 MiB).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Capped line reading.
// ---------------------------------------------------------------------------

/// One read attempt from a client connection.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadLine {
    /// A complete UTF-8 line (without its terminator).
    Line(String),
    /// The line exceeded the byte cap; the tail up to its newline was
    /// discarded, so the stream is still synchronized.
    Oversized,
    /// The line was complete but not valid UTF-8.
    NonUtf8,
    /// The connection ended mid-line: `n` bytes arrived with no newline.
    TruncatedEof(usize),
    /// Clean end of stream at a line boundary.
    Eof,
}

/// Reads one `\n`-terminated line, holding at most `max` bytes in memory.
/// An over-long line is consumed (not buffered) through its newline and
/// reported as [`ReadLine::Oversized`] — a hostile client cannot balloon
/// the server's memory, and the reader stays aligned to line boundaries.
pub fn read_line_capped(reader: &mut impl BufRead, max: usize) -> io::Result<ReadLine> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF.
            if oversized {
                return Ok(ReadLine::Oversized);
            }
            if bytes.is_empty() {
                return Ok(ReadLine::Eof);
            }
            return Ok(ReadLine::TruncatedEof(bytes.len()));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if !oversized {
                    bytes.extend_from_slice(&buf[..i]);
                }
                reader.consume(i + 1);
                if oversized || bytes.len() > max {
                    return Ok(ReadLine::Oversized);
                }
                // Tolerate CRLF clients.
                if bytes.last() == Some(&b'\r') {
                    bytes.pop();
                }
                return match String::from_utf8(bytes) {
                    Ok(s) => Ok(ReadLine::Line(s)),
                    Err(_) => Ok(ReadLine::NonUtf8),
                };
            }
            None => {
                let n = buf.len();
                if !oversized {
                    bytes.extend_from_slice(buf);
                    if bytes.len() > max {
                        bytes = Vec::new();
                        oversized = true;
                    }
                }
                reader.consume(n);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Flat JSON object parsing.
// ---------------------------------------------------------------------------

/// A protocol value: the grammar is flat, so only these two shapes exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string (escapes decoded).
    Str(String),
    /// A non-negative integer.
    Num(u64),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
        }
    }
}

/// Parses one flat JSON object — `{"key": "string" | integer, ...}` — into
/// its fields in source order. Escapes (`\"`, `\\`, `\/`, `\b`, `\f`,
/// `\n`, `\r`, `\t`, `\uXXXX` with surrogate pairs) are decoded, so
/// program text with newlines round-trips. Anything outside the grammar —
/// nesting, floats, negatives, booleans, trailing bytes, duplicate keys —
/// is a structured error naming the defect.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields: Vec<(String, Value)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string().map_err(|e| format!("object key: {e}"))?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value().map_err(|e| format!("value of `{key}`: {e}"))?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(c) => return Err(format!("expected `,` or `}}`, found `{}`", c as char)),
                None => return Err("unterminated object".to_string()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(format!("expected `{}`, found `{}`", want as char, b as char)),
            None => Err(format!("expected `{}`, found end of line", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'0'..=b'9') => Ok(Value::Num(self.parse_number()?)),
            Some(b'{' | b'[') => Err("nested values are outside the flat grammar".to_string()),
            Some(b't' | b'f' | b'n') => {
                Err("booleans/null are outside the flat grammar (use 0/1)".to_string())
            }
            Some(b'-') => Err("negative numbers are outside the grammar".to_string()),
            Some(c) => Err(format!("unexpected `{}`", c as char)),
            None => Err("end of line".to_string()),
        }
    }

    fn parse_number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err("non-integer numbers are outside the grammar".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>().map_err(|_| format!("integer `{text}` does not fit in 64 bits"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    None => return Err("unterminated escape".to_string()),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err("unpaired surrogate escape".to_string());
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let code =
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err("escape is not a scalar value".to_string()),
                        }
                    }
                    Some(c) => return Err(format!("unknown escape `\\{}`", c as char)),
                },
                Some(b) if b < 0x20 => {
                    return Err("raw control character inside string".to_string())
                }
                Some(b) => {
                    // Re-assemble the UTF-8 sequence this byte starts. The
                    // line was already validated as UTF-8, so this cannot
                    // fail; the arithmetic stays defensive anyway.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err("malformed UTF-8 inside string".to_string()),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        for _ in 0..4 {
            if self.next().is_none() {
                return Err("truncated \\u escape".to_string());
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ASCII in \\u escape".to_string())?;
        u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))
    }
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// Budget and variant overrides a `submit` request may carry; `None`
/// falls back to the server-wide default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOverrides {
    /// Chase variant (`o`/`so`/`restricted` tokens as in the CLI).
    pub variant: Option<ChaseVariant>,
    /// Application budget (`--steps`).
    pub steps: Option<u64>,
    /// Wall-clock deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Atom-count ceiling.
    pub max_atoms: Option<u64>,
    /// Approximate memory ceiling in bytes.
    pub max_memory: Option<u64>,
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a program for an isolated chase job.
    Submit {
        /// The program text (rules + facts, CLI rules-file format).
        program: String,
        /// Budget/variant overrides over the server defaults.
        overrides: SubmitOverrides,
        /// Stream trace events to this connection while the job runs.
        stream: bool,
        /// Bypass the result cache (benchmarks and tests).
        fresh: bool,
    },
    /// Derive a new job from an existing one by applying an edit script
    /// (`add <atom>.` / `retract <atom>.` lines) to its base facts. The
    /// edited program is admitted as a fresh job — the server re-chases it
    /// from scratch (derivation DAGs are not durable), so the result is
    /// the canonical Mode-2 rebuild of the incremental-update model.
    Update {
        /// The job whose program the edits apply to.
        job: String,
        /// The edit script, in the CLI `--edits` file format.
        script: String,
        /// Budget/variant overrides for the derived job.
        overrides: SubmitOverrides,
        /// Stream trace events for the derived job to this connection.
        stream: bool,
    },
    /// Report a job's current state.
    Status {
        /// The job id the server assigned at submit.
        job: String,
    },
    /// Block until a job reaches a terminal state, then report it.
    Wait {
        /// The job id the server assigned at submit.
        job: String,
    },
    /// Cooperatively cancel a queued or running job.
    Cancel {
        /// The job id the server assigned at submit.
        job: String,
    },
    /// Server-wide counters.
    Stats,
    /// Graceful shutdown: stop accepting, interrupt running jobs (they
    /// recover on the next start), exit.
    Shutdown,
}

fn take_str(fields: &[(String, Value)], key: &str) -> Result<Option<String>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Str(s))) => Ok(Some(s.clone())),
        Some((_, v)) => Err(format!("field `{key}` must be a string, got a {}", v.kind())),
    }
}

fn take_num(fields: &[(String, Value)], key: &str) -> Result<Option<u64>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Num(n))) => Ok(Some(*n)),
        Some((_, v)) => Err(format!("field `{key}` must be a number, got a {}", v.kind())),
    }
}

fn take_flag(fields: &[(String, Value)], key: &str) -> Result<bool, String> {
    match take_num(fields, key)? {
        None | Some(0) => Ok(false),
        Some(1) => Ok(true),
        Some(n) => Err(format!("field `{key}` must be 0 or 1, got {n}")),
    }
}

fn check_schema(fields: &[(String, Value)], op: &str, allowed: &[&str]) -> Result<(), String> {
    for (key, _) in fields {
        if key != "op" && !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown field `{key}` for op `{op}` (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn required_job(fields: &[(String, Value)], op: &str) -> Result<String, String> {
    check_schema(fields, op, &["job"])?;
    take_str(fields, "job")?.ok_or_else(|| format!("op `{op}` requires a `job` field"))
}

/// Parses a request line against the closed schema. Every defect — bad
/// JSON, unknown op, missing or mistyped or extra fields — is an error
/// message naming the offender, which the server wraps in a structured
/// error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_object(line)?;
    let op = take_str(&fields, "op")?.ok_or("request has no `op` field")?;
    match op.as_str() {
        "submit" => {
            check_schema(
                &fields,
                "submit",
                &["program", "variant", "steps", "timeout_ms", "max_atoms", "max_memory",
                  "stream", "fresh"],
            )?;
            let program = take_str(&fields, "program")?
                .ok_or("op `submit` requires a `program` field")?;
            let variant = match take_str(&fields, "variant")? {
                None => None,
                Some(raw) => Some(parse_variant_token(&raw)?),
            };
            Ok(Request::Submit {
                program,
                overrides: SubmitOverrides {
                    variant,
                    steps: take_num(&fields, "steps")?,
                    timeout_ms: take_num(&fields, "timeout_ms")?,
                    max_atoms: take_num(&fields, "max_atoms")?,
                    max_memory: take_num(&fields, "max_memory")?,
                },
                stream: take_flag(&fields, "stream")?,
                fresh: take_flag(&fields, "fresh")?,
            })
        }
        "update" => {
            check_schema(
                &fields,
                "update",
                &["job", "script", "variant", "steps", "timeout_ms", "max_atoms", "max_memory",
                  "stream"],
            )?;
            let job = take_str(&fields, "job")?.ok_or("op `update` requires a `job` field")?;
            let script =
                take_str(&fields, "script")?.ok_or("op `update` requires a `script` field")?;
            let variant = match take_str(&fields, "variant")? {
                None => None,
                Some(raw) => Some(parse_variant_token(&raw)?),
            };
            Ok(Request::Update {
                job,
                script,
                overrides: SubmitOverrides {
                    variant,
                    steps: take_num(&fields, "steps")?,
                    timeout_ms: take_num(&fields, "timeout_ms")?,
                    max_atoms: take_num(&fields, "max_atoms")?,
                    max_memory: take_num(&fields, "max_memory")?,
                },
                stream: take_flag(&fields, "stream")?,
            })
        }
        "status" => Ok(Request::Status { job: required_job(&fields, "status")? }),
        "wait" => Ok(Request::Wait { job: required_job(&fields, "wait")? }),
        "cancel" => Ok(Request::Cancel { job: required_job(&fields, "cancel")? }),
        "stats" => {
            check_schema(&fields, "stats", &[])?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            check_schema(&fields, "shutdown", &[])?;
            Ok(Request::Shutdown)
        }
        other => Err(format!(
            "unknown op `{other}` (expected submit, update, status, wait, cancel, stats, shutdown)"
        )),
    }
}

/// Parses the CLI/protocol variant spelling (`o`, `so`, `restricted` and
/// their long forms).
pub fn parse_variant_token(raw: &str) -> Result<ChaseVariant, String> {
    match raw {
        "o" => Ok(ChaseVariant::Oblivious),
        "so" => Ok(ChaseVariant::SemiOblivious),
        "standard" => Ok(ChaseVariant::Restricted),
        other => parse_variant(other)
            .ok_or_else(|| format!("`variant` expects o|so|restricted, got `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// Builds a response line from `(key, value)` pairs; string values are
/// escaped via the same routine the trace stream uses. `ok` leads so a
/// human tailing the socket sees success/failure first.
pub fn response(ok: bool, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str(if ok { "{\"ok\":1" } else { "{\"ok\":0" });
    for (key, value) in fields {
        out.push(',');
        out.push_str(&json_string(key));
        out.push(':');
        match value {
            Value::Str(s) => out.push_str(&json_string(s)),
            Value::Num(n) => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
            }
        }
    }
    out.push('}');
    out
}

/// A structured error response: `{"ok":0,"error":code,"detail":msg}`.
pub fn error_response(code: &str, detail: &str) -> String {
    response(
        false,
        &[("error", Value::Str(code.to_string())), ("detail", Value::Str(detail.to_string()))],
    )
}

/// Re-exported for response building: the stable chase-variant token.
pub fn variant_str(v: ChaseVariant) -> &'static str {
    variant_token(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn read_line_capped_handles_every_shape() {
        let data = b"short\nsecond\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::Line("short".into()));
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::Line("second".into()));
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::Eof);

        // Oversized: discarded through its newline, next line still parses.
        let mut big = vec![b'x'; 100];
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut r = BufReader::with_capacity(8, &big[..]);
        assert_eq!(read_line_capped(&mut r, 16).unwrap(), ReadLine::Oversized);
        assert_eq!(read_line_capped(&mut r, 16).unwrap(), ReadLine::Line("after".into()));

        // Non-UTF-8 complete line.
        let data = b"\xff\xfe\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::NonUtf8);

        // Truncated EOF.
        let data = b"no newline".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::TruncatedEof(10));

        // CRLF tolerance.
        let data = b"line\r\n".to_vec();
        let mut r = BufReader::new(&data[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), ReadLine::Line("line".into()));
    }

    #[test]
    fn parse_object_decodes_escapes() {
        let fields =
            parse_object(r#"{"a":"x\ny\t\"z\"","b":42,"c":"A😀"}"#).unwrap();
        assert_eq!(fields[0], ("a".into(), Value::Str("x\ny\t\"z\"".into())));
        assert_eq!(fields[1], ("b".into(), Value::Num(42)));
        assert_eq!(fields[2], ("c".into(), Value::Str("A\u{1f600}".into())));
    }

    #[test]
    fn parse_object_rejects_out_of_grammar_shapes() {
        for (line, needle) in [
            ("", "expected `{`"),
            ("{", "key"),
            ("{}x", "trailing"),
            (r#"{"a":{}}"#, "nested"),
            (r#"{"a":[1]}"#, "nested"),
            (r#"{"a":true}"#, "flat grammar"),
            (r#"{"a":-1}"#, "negative"),
            (r#"{"a":1.5}"#, "non-integer"),
            (r#"{"a":1,"a":2}"#, "duplicate"),
            (r#"{"a":"\q"}"#, "unknown escape"),
            (r#"{"a":"\ud800x"}"#, "surrogate"),
            (r#"{"a":99999999999999999999}"#, "64 bits"),
            (r#"{"a":"unterminated"#, "unterminated"),
        ] {
            let err = parse_object(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn request_round_trips_and_schema_is_closed() {
        let req = parse_request(
            r#"{"op":"submit","program":"p(a).\np(X) -> p(Y).","variant":"o","steps":7,"stream":1}"#,
        )
        .unwrap();
        match req {
            Request::Submit { program, overrides, stream, fresh } => {
                assert_eq!(program, "p(a).\np(X) -> p(Y).");
                assert_eq!(overrides.variant, Some(ChaseVariant::Oblivious));
                assert_eq!(overrides.steps, Some(7));
                assert!(stream);
                assert!(!fresh);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op":"cancel","job":"job-3"}"#).unwrap(),
            Request::Cancel { job: "job-3".into() }
        );
        match parse_request(
            r#"{"op":"update","job":"job-1","script":"retract p(a).\nadd q(b).","steps":9}"#,
        )
        .unwrap()
        {
            Request::Update { job, script, overrides, stream } => {
                assert_eq!(job, "job-1");
                assert_eq!(script, "retract p(a).\nadd q(b).");
                assert_eq!(overrides.steps, Some(9));
                assert!(!stream);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        for (line, needle) in [
            (r#"{"op":"submit"}"#, "program"),
            (r#"{"op":"submit","program":"p(a).","bogus":1}"#, "bogus"),
            (r#"{"op":"submit","program":7}"#, "must be a string"),
            (r#"{"op":"submit","program":"p(a).","stream":2}"#, "0 or 1"),
            (r#"{"op":"submit","program":"p(a).","variant":"zz"}"#, "zz"),
            (r#"{"op":"status"}"#, "job"),
            (r#"{"op":"update","job":"job-1"}"#, "script"),
            (r#"{"op":"update","script":"add p(a)."}"#, "job"),
            (r#"{"op":"update","job":"job-1","script":"add p(a).","fresh":1}"#, "unknown field"),
            (r#"{"op":"stats","job":"j"}"#, "unknown field"),
            (r#"{"op":"levitate"}"#, "unknown op"),
            (r#"{"no_op":1}"#, "no `op`"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn responses_are_flat_objects_the_parser_accepts() {
        let line = response(
            true,
            &[("job", Value::Str("job-1".into())), ("queued", Value::Num(2))],
        );
        assert_eq!(line, r#"{"ok":1,"job":"job-1","queued":2}"#);
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields[0], ("ok".into(), Value::Num(1)));
        let err = error_response("overloaded", "queue full: 16 of 16");
        let fields = parse_object(&err).unwrap();
        assert_eq!(fields[1], ("error".into(), Value::Str("overloaded".into())));
    }
}
