//! The on-disk job store `chasekit serve` survives kills with.
//!
//! Layout: one directory per job under the store root, named `job-<seq>`
//! (the sequence number is the job id clients see, so ids are stable
//! across restarts):
//!
//! ```text
//! store/
//!   job-0/
//!     program.rules    submitted program text, verbatim
//!     meta             the JobSpec, written last + atomically at admission
//!     state.ckpt       working snapshot (durable loop)
//!     state.journal    write-ahead journal past the snapshot
//!     final.ckpt       final checkpoint, once the chase stopped
//!     result           terminal outcome marker, written last by the server
//! ```
//!
//! The two markers carry the crash-consistency protocol: a directory
//! without a complete `meta` was never admitted (the submit response is
//! only sent after `meta` lands, so the client saw no acknowledgement) and
//! is garbage; a directory with `meta` but no `result` is an **in-flight
//! job** the restart scan hands back to the worker pool; a directory with
//! `result` is complete and only feeds the result cache. Both files are
//! published with [`write_snapshot_atomic`], so a reader never sees a
//! torn marker.

use std::io;
use std::path::{Path, PathBuf};

use crate::journal::{parse_variant, variant_token, write_snapshot_atomic};
use crate::serve::runner::{JobPaths, JobSpec};
use crate::StopReason;

/// Magic first line of the `meta` file.
pub const META_MAGIC: &str = "chasekit-job v1";
/// Magic first line of the `result` file.
pub const RESULT_MAGIC: &str = "chasekit-result v1";
/// Magic first line of the sequence high-water file compaction leaves
/// behind (`next-seq` at the store root).
pub const SEQ_MAGIC: &str = "chasekit-seq v1";

/// A terminal job outcome, as persisted in the `result` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The stable [`StopReason`] keyword (`saturated`, `applications`, …).
    pub outcome: String,
    /// Trigger applications performed.
    pub applications: u64,
    /// Final instance size in atoms.
    pub atoms: u64,
    /// Labelled nulls minted.
    pub nulls: u64,
    /// Fingerprint of the (genesis) program, for cache priming.
    pub fingerprint: u64,
    /// Variant keyword, for cache priming.
    pub variant: String,
}

impl JobResult {
    fn to_text(&self) -> String {
        format!(
            "{RESULT_MAGIC}\noutcome {}\napplications {}\natoms {}\nnulls {}\n\
             fingerprint {:016x}\nvariant {}\n",
            self.outcome, self.applications, self.atoms, self.nulls, self.fingerprint,
            self.variant
        )
    }

    fn from_text(text: &str) -> Result<JobResult, String> {
        let mut lines = text.lines();
        if lines.next() != Some(RESULT_MAGIC) {
            return Err(format!("result line 1: expected `{RESULT_MAGIC}`"));
        }
        let mut field = |key: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("result: missing `{key}`"))?;
            line.strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("result: expected `{key} <value>`, got {line:?}"))
        };
        let outcome = field("outcome")?;
        if parse_stop_keyword(&outcome).is_none() {
            return Err(format!("result: unknown outcome `{outcome}`"));
        }
        let parse_u64 = |key: &str, raw: String| {
            raw.parse::<u64>().map_err(|_| format!("result: `{key}` is not a number: {raw:?}"))
        };
        let applications = parse_u64("applications", field("applications")?)?;
        let atoms = parse_u64("atoms", field("atoms")?)?;
        let nulls = parse_u64("nulls", field("nulls")?)?;
        let fp_raw = field("fingerprint")?;
        let fingerprint = u64::from_str_radix(&fp_raw, 16)
            .map_err(|_| format!("result: bad fingerprint {fp_raw:?}"))?;
        let variant = field("variant")?;
        parse_variant(&variant).ok_or_else(|| format!("result: unknown variant `{variant}`"))?;
        Ok(JobResult { outcome, applications, atoms, nulls, fingerprint, variant })
    }
}

/// Maps a persisted outcome keyword back to its [`StopReason`].
pub fn parse_stop_keyword(s: &str) -> Option<StopReason> {
    [
        StopReason::Saturated,
        StopReason::Applications,
        StopReason::Atoms,
        StopReason::WallClock,
        StopReason::Memory,
        StopReason::Cancelled,
        StopReason::Io,
    ]
    .into_iter()
    .find(|r| r.keyword() == s)
}

fn spec_to_text(spec: &JobSpec) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "none".to_string(), |n| n.to_string());
    format!(
        "{META_MAGIC}\nvariant {}\nsteps {}\ntimeout-ms {}\nmax-atoms {}\nmax-memory {}\n\
         checkpoint-every {}\nflush-every {}\n",
        variant_token(spec.variant),
        spec.steps,
        opt(spec.timeout_ms),
        opt(spec.max_atoms.map(|n| n as u64)),
        opt(spec.max_memory.map(|n| n as u64)),
        spec.checkpoint_every,
        spec.flush_every,
    )
}

fn spec_from_text(text: &str) -> Result<JobSpec, String> {
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(format!("meta line 1: expected `{META_MAGIC}`"));
    }
    let mut field = |key: &str| -> Result<String, String> {
        let line = lines.next().ok_or_else(|| format!("meta: missing `{key}`"))?;
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| format!("meta: expected `{key} <value>`, got {line:?}"))
    };
    let variant_raw = field("variant")?;
    let variant = parse_variant(&variant_raw)
        .ok_or_else(|| format!("meta: unknown variant `{variant_raw}`"))?;
    let num = |key: &str, raw: String| {
        raw.parse::<u64>().map_err(|_| format!("meta: `{key}` is not a number: {raw:?}"))
    };
    let opt_num = |key: &str, raw: String| -> Result<Option<u64>, String> {
        if raw == "none" {
            Ok(None)
        } else {
            raw.parse::<u64>()
                .map(Some)
                .map_err(|_| format!("meta: `{key}` is not a number or `none`: {raw:?}"))
        }
    };
    let steps = num("steps", field("steps")?)?;
    let timeout_ms = opt_num("timeout-ms", field("timeout-ms")?)?;
    let max_atoms = opt_num("max-atoms", field("max-atoms")?)?.map(|n| n as usize);
    let max_memory = opt_num("max-memory", field("max-memory")?)?.map(|n| n as usize);
    let checkpoint_every = num("checkpoint-every", field("checkpoint-every")?)?;
    let flush_every = num("flush-every", field("flush-every")?)?;
    Ok(JobSpec { variant, steps, timeout_ms, max_atoms, max_memory, checkpoint_every, flush_every })
}

/// A job loaded back from disk.
#[derive(Debug, Clone)]
pub struct StoredJob {
    /// The job id (= directory name).
    pub id: String,
    /// The job directory.
    pub dir: PathBuf,
    /// The submitted program text.
    pub program_text: String,
    /// The persisted spec.
    pub spec: JobSpec,
}

/// What a startup scan of the store found.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Admitted jobs without a result: killed in flight, to be re-run.
    pub in_flight: Vec<StoredJob>,
    /// Completed jobs, for cache priming.
    pub completed: Vec<(String, JobResult)>,
    /// Directories that were never admitted (no complete `meta`) or whose
    /// markers fail validation — reported, never silently deleted.
    pub discarded: Vec<String>,
    /// The next free job sequence number.
    pub next_seq: u64,
}

/// The durable job store: a directory of job directories.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: &Path) -> io::Result<JobStore> {
        std::fs::create_dir_all(root)?;
        Ok(JobStore { root: root.to_path_buf() })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory for job `id`.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Persists a new job: directory, program text, then — last and
    /// atomically — the `meta` marker that makes the job *admitted*. A
    /// kill anywhere before the marker leaves an unadmitted directory the
    /// scan reports as garbage; a kill after it leaves a recoverable job.
    pub fn create_job(&self, id: &str, program_text: &str, spec: &JobSpec) -> io::Result<PathBuf> {
        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir)?;
        let paths = JobPaths::new(&dir);
        std::fs::write(paths.program(), program_text)?;
        write_snapshot_atomic(&paths.meta(), &spec_to_text(spec))?;
        Ok(dir)
    }

    /// Loads an admitted job back (program text + spec).
    pub fn load_job(&self, id: &str) -> Result<StoredJob, String> {
        let dir = self.job_dir(id);
        let paths = JobPaths::new(&dir);
        let program_text = std::fs::read_to_string(paths.program())
            .map_err(|e| format!("cannot read {}: {e}", paths.program().display()))?;
        let meta = std::fs::read_to_string(paths.meta())
            .map_err(|e| format!("cannot read {}: {e}", paths.meta().display()))?;
        let spec = spec_from_text(&meta).map_err(|e| format!("{id}: {e}"))?;
        Ok(StoredJob { id: id.to_string(), dir, program_text, spec })
    }

    /// Publishes a job's terminal result (atomically, last).
    pub fn write_result(&self, id: &str, result: &JobResult) -> io::Result<()> {
        let paths = JobPaths::new(&self.job_dir(id));
        write_snapshot_atomic(&paths.result(), &result.to_text())
    }

    /// Reads a job's result marker, if present and valid.
    pub fn read_result(&self, id: &str) -> Result<Option<JobResult>, String> {
        let paths = JobPaths::new(&self.job_dir(id));
        match std::fs::read_to_string(paths.result()) {
            Ok(text) => JobResult::from_text(&text).map(Some).map_err(|e| format!("{id}: {e}")),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("cannot read {}: {e}", paths.result().display())),
        }
    }

    fn seq_floor_path(&self) -> PathBuf {
        self.root.join("next-seq")
    }

    /// Persists a floor for the job sequence number, atomically. Written
    /// *before* compaction deletes any directory, so job ids are never
    /// reused even when every `job-<n>` directory is gone — a reused id
    /// could alias a client's memory of an old job.
    pub fn write_seq_floor(&self, next_seq: u64) -> io::Result<()> {
        write_snapshot_atomic(&self.seq_floor_path(), &format!("{SEQ_MAGIC}\nnext {next_seq}\n"))
    }

    fn read_seq_floor(&self) -> io::Result<u64> {
        let text = match std::fs::read_to_string(self.seq_floor_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        // The file is published atomically, so a malformed one is outside
        // interference; refusing to guess keeps ids from ever aliasing.
        let mut lines = text.lines();
        if lines.next() != Some(SEQ_MAGIC) {
            return Err(io::Error::other(format!(
                "{}: expected `{SEQ_MAGIC}` on line 1",
                self.seq_floor_path().display()
            )));
        }
        lines
            .next()
            .and_then(|l| l.strip_prefix("next "))
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| {
                io::Error::other(format!(
                    "{}: expected `next <seq>` on line 2",
                    self.seq_floor_path().display()
                ))
            })
    }

    /// Deletes the oldest *completed* job directories beyond `keep`,
    /// returning the ids removed. The sequence floor is persisted first,
    /// so a crash mid-compaction can lose directories but never a
    /// sequence number. In-flight and discarded directories are never
    /// touched — compaction only reclaims what the result marker proves
    /// finished.
    pub fn compact(&self, keep: usize, next_seq_floor: u64) -> io::Result<Vec<String>> {
        let scan = self.scan()?;
        if scan.completed.len() <= keep {
            return Ok(Vec::new());
        }
        self.write_seq_floor(next_seq_floor.max(scan.next_seq))?;
        let doomed = scan.completed.len() - keep;
        let mut deleted = Vec::with_capacity(doomed);
        // `scan.completed` is already in ascending sequence order.
        for (id, _) in scan.completed.into_iter().take(doomed) {
            std::fs::remove_dir_all(self.job_dir(&id))?;
            deleted.push(id);
        }
        Ok(deleted)
    }

    /// The restart scan: classifies every `job-<n>` directory as
    /// in-flight, completed, or discarded, and computes the next free
    /// sequence number (never below the persisted floor, so compacted-away
    /// ids are not reused). Deterministic order (by sequence number), so
    /// recovered jobs re-enter the queue in admission order.
    pub fn scan(&self) -> io::Result<ScanReport> {
        let mut report =
            ScanReport { next_seq: self.read_seq_floor()?, ..ScanReport::default() };
        let mut seqs: Vec<(u64, String)> = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            match name.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
                Some(seq) => seqs.push((seq, name)),
                None => continue, // not ours; leave foreign directories alone
            }
        }
        seqs.sort_unstable();
        for (seq, id) in seqs {
            report.next_seq = report.next_seq.max(seq + 1);
            match self.read_result(&id) {
                Ok(Some(result)) => report.completed.push((id, result)),
                Ok(None) => match self.load_job(&id) {
                    Ok(job) => report.in_flight.push(job),
                    Err(_) => report.discarded.push(id),
                },
                Err(_) => report.discarded.push(id),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChaseVariant;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("chasekit-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> JobSpec {
        JobSpec {
            variant: ChaseVariant::Oblivious,
            steps: 123,
            timeout_ms: Some(5000),
            max_atoms: None,
            max_memory: Some(1 << 20),
            checkpoint_every: 10,
            flush_every: 8,
        }
    }

    #[test]
    fn meta_and_result_round_trip() {
        let s = spec();
        assert_eq!(spec_from_text(&spec_to_text(&s)).unwrap(), s);
        let r = JobResult {
            outcome: "applications".into(),
            applications: 99,
            atoms: 42,
            nulls: 7,
            fingerprint: 0xdead_beef_cafe_f00d,
            variant: "semi-oblivious".into(),
        };
        assert_eq!(JobResult::from_text(&r.to_text()).unwrap(), r);
        assert!(JobResult::from_text("garbage").is_err());
        assert!(spec_from_text(&spec_to_text(&s).replace("steps 123", "steps lots")).is_err());
    }

    #[test]
    fn scan_classifies_in_flight_completed_and_garbage() {
        let root = scratch("scan");
        let store = JobStore::open(&root).unwrap();
        // job-0: admitted, no result -> in flight.
        store.create_job("job-0", "p(a). p(X) -> p(Y).", &spec()).unwrap();
        // job-2: admitted and completed.
        store.create_job("job-2", "q(a).", &spec()).unwrap();
        let result = JobResult {
            outcome: "saturated".into(),
            applications: 0,
            atoms: 1,
            nulls: 0,
            fingerprint: 1,
            variant: "oblivious".into(),
        };
        store.write_result("job-2", &result).unwrap();
        // job-5: a kill before `meta` landed -> garbage, never admitted.
        std::fs::create_dir_all(store.job_dir("job-5")).unwrap();
        std::fs::write(store.job_dir("job-5").join("program.rules"), "r(a).").unwrap();
        // Not a job directory at all: ignored.
        std::fs::create_dir_all(root.join("lost+found")).unwrap();

        let scan = store.scan().unwrap();
        assert_eq!(scan.in_flight.len(), 1);
        assert_eq!(scan.in_flight[0].id, "job-0");
        assert_eq!(scan.in_flight[0].spec, spec());
        assert_eq!(scan.completed, vec![("job-2".to_string(), result)]);
        assert_eq!(scan.discarded, vec!["job-5".to_string()]);
        assert_eq!(scan.next_seq, 6);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_keeps_newest_completed_and_never_reuses_sequence_numbers() {
        let root = scratch("compact");
        let store = JobStore::open(&root).unwrap();
        let result = |seq: u64| JobResult {
            outcome: "saturated".into(),
            applications: seq,
            atoms: 1,
            nulls: 0,
            fingerprint: seq,
            variant: "oblivious".into(),
        };
        for seq in 0..5 {
            let id = format!("job-{seq}");
            store.create_job(&id, "p(a).", &spec()).unwrap();
            store.write_result(&id, &result(seq)).unwrap();
        }
        // job-5 is in flight: compaction must not touch it.
        store.create_job("job-5", "q(a). q(X) -> q(Y).", &spec()).unwrap();

        let deleted = store.compact(2, 6).unwrap();
        assert_eq!(deleted, vec!["job-0", "job-1", "job-2"]);
        let scan = store.scan().unwrap();
        assert_eq!(
            scan.completed.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(),
            vec!["job-3", "job-4"]
        );
        assert_eq!(scan.in_flight.len(), 1);
        assert_eq!(scan.in_flight[0].id, "job-5");
        assert_eq!(scan.next_seq, 6);

        // Below the cap: a no-op.
        assert!(store.compact(2, 6).unwrap().is_empty());

        // Even with every directory gone, the floor pins the sequence.
        let deleted = store.compact(0, 6).unwrap();
        assert_eq!(deleted, vec!["job-3", "job-4"]);
        std::fs::remove_dir_all(store.job_dir("job-5")).unwrap();
        assert_eq!(store.scan().unwrap().next_seq, 6);

        // A corrupt floor file refuses to guess rather than alias ids.
        std::fs::write(root.join("next-seq"), "garbage").unwrap();
        assert!(store.scan().is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
