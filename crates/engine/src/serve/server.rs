//! The `chasekit serve` server: a thread-per-connection front-end over a
//! bounded worker pool, with crash recovery at startup.
//!
//! Responsibilities and their isolation story:
//!
//! * **Admission control** — submissions are serialized through one
//!   admission lock; a full queue yields a structured `overloaded`
//!   response, never a panic or a silent drop. Once a job's `meta` marker
//!   is on disk the submission is *admitted*: a kill at any later point
//!   (including before the acknowledgement reaches the client) leaves a
//!   job the restart scan recovers.
//! * **Fault isolation** — each job runs on a pool worker under
//!   `catch_unwind`; a panicking job (hostile program, injected fault)
//!   marks that job failed and the worker keeps serving.
//! * **Budgets** — per-request overrides are merged over the server-wide
//!   default [`JobSpec`] and enforced by the engine's own `guard::Budget`.
//! * **Recovery** — startup scans the job store, re-queues every admitted
//!   job without a result marker, and primes the result cache from
//!   completed ones. Recovery work bypasses the admission cap: admitted
//!   jobs are never lost to a restart.
//! * **Result cache** — saturated outcomes are cached by (program
//!   fingerprint, variant) and served to compatible resubmissions without
//!   re-running the chase.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use chasekit_core::display::program_to_string;
use chasekit_core::Program;

use crate::checkpoint::program_fingerprint;
use crate::incremental::{edited_program, parse_edit_script};
use crate::failpoint::{self, points};
use crate::serve::protocol::{
    self, error_response, parse_request, read_line_capped, ReadLine, Request, SubmitOverrides,
    Value,
};
use crate::serve::runner::{run_job, JobSpec};
use crate::serve::store::{JobResult, JobStore};
use crate::trace::{JsonlSink, TraceSink};
use crate::{CancelToken, StopReason};

/// Server configuration: socket, store, pool shape, and default budgets.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Job-store root directory.
    pub store: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission cap: jobs queued-or-running before submissions are
    /// rejected as overloaded.
    pub queue_capacity: usize,
    /// Server-wide default budgets; `submit` fields override per request.
    pub defaults: JobSpec,
    /// Request-line byte cap (protocol trust boundary).
    pub max_line_bytes: usize,
    /// Concurrent-connection cap: connections beyond it receive a
    /// structured `too-many-connections` rejection and are closed, so a
    /// client opening sockets in a loop cannot exhaust threads (admission
    /// control bounds jobs; this bounds the front-end).
    pub max_connections: usize,
    /// Terminal job entries kept in memory. Older done/failed entries are
    /// evicted; `status`/`wait` on an evicted completed job fall back to
    /// its on-disk `result` marker, so eviction is invisible for anything
    /// the store remembers.
    pub terminal_retention: usize,
    /// Result-cache capacity (entries; oldest evicted first).
    pub cache_capacity: usize,
    /// On-disk retention of completed job directories: after each job
    /// completes (and once at startup), the oldest completed directories
    /// beyond this count are deleted. The sequence floor file keeps job
    /// ids from ever being reused; `status` on a compacted-away job
    /// answers `unknown-job` once its in-memory entry is also evicted.
    /// `None` keeps everything (the default).
    pub keep_completed: Option<usize>,
}

impl ServeConfig {
    /// Defaults for a store rooted at `store`: loopback on an ephemeral
    /// port, 2 workers, a 16-job admission window.
    pub fn new(store: &std::path::Path) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store: store.to_path_buf(),
            workers: 2,
            queue_capacity: 16,
            defaults: JobSpec::server_default(),
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            max_connections: 64,
            terminal_retention: 1024,
            cache_capacity: 1024,
            keep_completed: None,
        }
    }
}

/// A job's lifecycle state. `queued -> running -> done | failed`;
/// `cancel` is cooperative and lands as `done` with outcome `cancelled`.
/// `interrupted` is the shutdown window only: the job is still in flight
/// on disk and the next start recovers it, so it is neither done nor
/// failed.
#[derive(Debug, Clone)]
enum Phase {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
    Interrupted,
}

#[derive(Debug)]
struct JobEntry {
    phase: Phase,
    cancel: CancelToken,
    /// Set by a client `cancel` request. Distinguishes a user-cancelled
    /// job (terminal: result is persisted) from one interrupted by server
    /// shutdown (left in-flight on disk for the next start to recover).
    user_cancelled: bool,
    /// Pending trace stream, handed to the worker when the job starts.
    stream: Option<mpsc::Sender<String>>,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
}

/// The saturated-result cache, bounded: once `capacity` entries are held,
/// each insert evicts the oldest. Insertion order is good enough here —
/// the cache is a bandwidth saver, not a correctness layer, and every
/// evicted result is still on disk for the next restart scan to re-prime.
#[derive(Debug)]
struct ResultCache {
    capacity: usize,
    map: HashMap<(u64, String), JobResult>,
    order: VecDeque<(u64, String)>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache { capacity, map: HashMap::new(), order: VecDeque::new() }
    }

    fn get(&self, key: &(u64, String)) -> Option<&JobResult> {
        self.map.get(key)
    }

    fn insert(&mut self, key: (u64, String), result: JobResult) {
        if self.map.insert(key.clone(), result).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > self.capacity {
            let Some(old) = self.order.pop_front() else { break };
            self.map.remove(&old);
        }
    }
}

struct Shared {
    config: ServeConfig,
    store: JobStore,
    /// Every job this process knows of, by id.
    jobs: Mutex<HashMap<String, JobEntry>>,
    /// Signalled whenever some job reaches a terminal phase.
    done_cv: Condvar,
    /// Jobs awaiting a worker (ids; the store holds the payload).
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    /// Serializes the admission check-persist-enqueue window so the
    /// capacity bound is exact.
    admission: Mutex<()>,
    /// Saturated outcomes by (program fingerprint, variant token).
    cache: Mutex<ResultCache>,
    /// Terminal job ids, oldest first, for bounded retention: the tail
    /// beyond `terminal_retention` is evicted from `jobs`.
    terminal_order: Mutex<VecDeque<String>>,
    /// Live client connections (front-end cap, distinct from admission).
    connections: std::sync::atomic::AtomicUsize,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
    /// Job ids the startup scan re-queued.
    recovered: Vec<String>,
}

// Lock helpers: a panicking job thread must never wedge the server, so
// every lock tolerates poisoning (the protected state is only ever
// mutated in small, complete critical sections).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Releases one connection slot when its handler thread ends — by
/// returning or by unwinding — so the cap never leaks slots.
struct ConnSlot(Arc<Shared>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Shared {
    fn active_jobs(&self) -> usize {
        lock(&self.jobs)
            .values()
            .filter(|e| matches!(e.phase, Phase::Queued | Phase::Running))
            .count()
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`]
/// (the CLI blocks on it until a client sends `{"op":"shutdown"}`).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (real port even when configured with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Job ids the startup scan found in flight and re-queued.
    pub fn recovered_jobs(&self) -> &[String] {
        &self.shared.recovered
    }

    /// Initiates shutdown and joins every server thread. Running jobs are
    /// cooperatively cancelled and left in-flight on disk — the next
    /// start recovers and completes them.
    pub fn shutdown(mut self) {
        initiate_shutdown(&self.shared, self.addr);
        self.join();
    }

    /// Blocks until the server shuts down (via a client `shutdown` op).
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

fn initiate_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::Release);
    // Interrupt running jobs; their durable state recovers next start.
    for entry in lock(&shared.jobs).values() {
        if matches!(entry.phase, Phase::Running) {
            entry.cancel.cancel();
        }
    }
    shared.queue_cv.notify_all();
    shared.done_cv.notify_all();
    // Unblock the accept loop.
    let _ = TcpStream::connect(addr);
}

/// Starts the server: opens the store, runs the recovery scan, binds the
/// socket, and spawns the worker pool and accept loop.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let store = JobStore::open(&config.store)?;
    let scan = store.scan().map_err(|e| {
        std::io::Error::other(format!("cannot scan job store {}: {e}", config.store.display()))
    })?;

    let mut cache = ResultCache::new(config.cache_capacity);
    for (_, result) in &scan.completed {
        if result.outcome == StopReason::Saturated.keyword() {
            cache.insert((result.fingerprint, result.variant.clone()), result.clone());
        }
    }

    // Startup compaction, after the cache is primed from the directories
    // about to be reclaimed. In-flight jobs are untouched by construction.
    if let Some(keep) = config.keep_completed {
        store.compact(keep, scan.next_seq).map_err(|e| {
            std::io::Error::other(format!(
                "cannot compact job store {}: {e}",
                config.store.display()
            ))
        })?;
    }

    let mut jobs = HashMap::new();
    let mut queue = VecDeque::new();
    let mut recovered = Vec::new();
    for job in &scan.in_flight {
        // Recovered jobs bypass the admission cap: they were admitted
        // before the kill and must not be lost.
        jobs.insert(
            job.id.clone(),
            JobEntry {
                phase: Phase::Queued,
                cancel: CancelToken::new(),
                user_cancelled: false,
                stream: None,
            },
        );
        queue.push_back(job.id.clone());
        recovered.push(job.id.clone());
    }

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);

    let shared = Arc::new(Shared {
        store,
        jobs: Mutex::new(jobs),
        done_cv: Condvar::new(),
        queue: Mutex::new(queue),
        queue_cv: Condvar::new(),
        admission: Mutex::new(()),
        cache: Mutex::new(cache),
        terminal_order: Mutex::new(VecDeque::new()),
        connections: std::sync::atomic::AtomicUsize::new(0),
        next_seq: AtomicU64::new(scan.next_seq),
        shutdown: AtomicBool::new(false),
        counters: Counters::default(),
        recovered,
        config,
    });

    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    shared.queue_cv.notify_all();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            let cap = accept_shared.config.max_connections.max(1);
            if accept_shared.connections.fetch_add(1, Ordering::AcqRel) >= cap {
                accept_shared.connections.fetch_sub(1, Ordering::AcqRel);
                // Best-effort structured rejection on the accept thread; a
                // short write timeout so a slow client cannot stall accepts.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let resp = error_response(
                    "too-many-connections",
                    &format!("connection limit {cap} reached; retry later"),
                );
                let _ = send_line(&mut stream, &resp);
                continue;
            }
            let slot = ConnSlot(Arc::clone(&accept_shared));
            std::thread::spawn(move || handle_connection(&slot.0, stream));
        }
    });

    Ok(ServerHandle { addr, shared, accept: Some(accept), workers: worker_handles })
}

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let (cancel, stream, user_cancel_at_start) = {
            let mut jobs = lock(&shared.jobs);
            let Some(entry) = jobs.get_mut(&id) else { continue };
            entry.phase = Phase::Running;
            (entry.cancel.clone(), entry.stream.take(), entry.user_cancelled)
        };
        let _ = user_cancel_at_start; // a pre-cancelled token stops the job immediately

        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| execute_job(shared, &id, cancel, stream)));
        let phase = match outcome {
            Ok(Ok(Some(result))) => {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                Phase::Done(result)
            }
            Ok(Ok(None)) => {
                // Interrupted by shutdown: leave the job in-flight on disk
                // (no result marker) so the next start recovers it, and
                // report it as such — not as a failure.
                Phase::Interrupted
            }
            Ok(Err(msg)) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                Phase::Failed(msg)
            }
            Err(panic) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Phase::Failed(format!("job panicked: {msg}"))
            }
        };
        {
            let mut jobs = lock(&shared.jobs);
            let terminal = matches!(phase, Phase::Done(_) | Phase::Failed(_));
            if let Some(entry) = jobs.get_mut(&id) {
                entry.phase = phase;
            }
            // Bounded retention: evict the oldest terminal entries beyond
            // the cap (inside the same critical section, so anyone who
            // observes this job terminal also observes the eviction).
            // Evicted completed jobs still answer from their on-disk
            // result marker; interrupted jobs are never evicted — they
            // are still in flight.
            if terminal {
                let mut order = lock(&shared.terminal_order);
                order.push_back(id.clone());
                while order.len() > shared.config.terminal_retention {
                    let Some(old) = order.pop_front() else { break };
                    jobs.remove(&old);
                }
            }
        }
        shared.done_cv.notify_all();
    }
}

/// Runs one job end-to-end: load from the store, chase, publish the
/// result marker, update the cache. Returns `Ok(None)` when the job was
/// interrupted by shutdown (not terminal — no result is written).
fn execute_job(
    shared: &Arc<Shared>,
    id: &str,
    cancel: CancelToken,
    stream: Option<mpsc::Sender<String>>,
) -> Result<Option<JobResult>, String> {
    let stored = shared.store.load_job(id)?;
    let program = Program::parse(&stored.program_text)
        .map_err(|e| format!("program no longer parses: {e}"))?;
    let fingerprint = program_fingerprint(&program);
    let sink: Option<Box<dyn TraceSink>> = stream.map(|tx| {
        Box::new(JsonlSink::new(ChannelWriter { tx, buf: Vec::new() }, &program))
            as Box<dyn TraceSink>
    });

    let report = run_job(&program, &stored.spec, &stored.dir, cancel, sink)?;

    let user_cancelled = lock(&shared.jobs).get(id).is_some_and(|e| e.user_cancelled);
    if report.outcome == StopReason::Cancelled && !user_cancelled {
        return Ok(None);
    }

    // The crash window between the final checkpoint and the result marker.
    if let Err(e) = failpoint::trip_io(points::SERVE_RESULT) {
        return Err(format!("cannot publish result for {id}: {e}"));
    }
    let result = JobResult {
        outcome: report.outcome.keyword().to_string(),
        applications: report.applications,
        atoms: report.atoms as u64,
        nulls: report.nulls as u64,
        fingerprint,
        variant: protocol::variant_str(stored.spec.variant).to_string(),
    };
    shared
        .store
        .write_result(id, &result)
        .map_err(|e| format!("cannot publish result for {id}: {e}"))?;

    if report.outcome == StopReason::Saturated {
        lock(&shared.cache)
            .insert((fingerprint, result.variant.clone()), result.clone());
    }

    // Bounded on-disk retention. Under the admission lock so the floor
    // file never races a concurrent sequence allocation; the job that
    // just finished is the newest completed directory, so it survives
    // any retention of at least one.
    if let Some(keep) = shared.config.keep_completed {
        let _admit = lock(&shared.admission);
        let floor = shared.next_seq.load(Ordering::Relaxed);
        if let Err(e) = shared.store.compact(keep, floor) {
            eprintln!("chasekit serve: compaction failed (continuing): {e}");
        }
    }
    Ok(Some(result))
}

/// Adapts the mpsc stream channel to the `Write` bound [`JsonlSink`]
/// needs: buffers until each newline, sends complete lines. A vanished
/// client (closed receiver) is ignored — the job's execution must not
/// depend on who is watching.
struct ChannelWriter {
    tx: mpsc::Sender<String>,
    buf: Vec<u8>,
}

impl Write for ChannelWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=i).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let _ = self.tx.send(text);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Connections.
// ---------------------------------------------------------------------------

fn send_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    loop {
        let line = match read_line_capped(&mut reader, shared.config.max_line_bytes) {
            Err(_) | Ok(ReadLine::Eof) => return,
            Ok(ReadLine::Oversized) => {
                let resp = error_response(
                    "oversized",
                    &format!("request line exceeds {} bytes", shared.config.max_line_bytes),
                );
                if send_line(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
            Ok(ReadLine::NonUtf8) => {
                let resp = error_response("non-utf8", "request line is not valid UTF-8");
                if send_line(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
            Ok(ReadLine::TruncatedEof(n)) => {
                // Best effort: the peer may still read our half.
                let resp = error_response(
                    "truncated",
                    &format!("connection closed mid-line after {n} bytes"),
                );
                let _ = send_line(&mut stream, &resp);
                return;
            }
            Ok(ReadLine::Line(l)) => l,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(r) => r,
            Err(msg) => {
                if send_line(&mut stream, &error_response("bad-request", &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Submit { program, overrides, stream: want_stream, fresh } => {
                handle_submit(shared, &mut stream, &program, &overrides, want_stream, fresh)
            }
            Request::Update { job, script, overrides, stream: want_stream } => {
                handle_update(shared, &mut stream, &job, &script, &overrides, want_stream)
            }
            Request::Status { job } => {
                let resp = job_response(shared, &job);
                send_line(&mut stream, &resp).is_ok()
            }
            Request::Wait { job } => handle_wait(shared, &mut stream, &job),
            Request::Cancel { job } => handle_cancel(shared, &mut stream, &job),
            Request::Stats => {
                let resp = stats_response(shared);
                send_line(&mut stream, &resp).is_ok()
            }
            Request::Shutdown => {
                let addr = stream.local_addr().ok();
                let _ = send_line(
                    &mut stream,
                    &protocol::response(true, &[("shutdown", Value::Num(1))]),
                );
                if let Some(addr) = addr {
                    initiate_shutdown(shared, addr);
                }
                false
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn effective_spec(defaults: &JobSpec, overrides: &SubmitOverrides) -> JobSpec {
    JobSpec {
        variant: overrides.variant.unwrap_or(defaults.variant),
        steps: overrides.steps.unwrap_or(defaults.steps),
        timeout_ms: overrides.timeout_ms.or(defaults.timeout_ms),
        max_atoms: overrides.max_atoms.map(|n| n as usize).or(defaults.max_atoms),
        max_memory: overrides.max_memory.map(|n| n as usize).or(defaults.max_memory),
        checkpoint_every: defaults.checkpoint_every,
        flush_every: defaults.flush_every,
    }
}

/// Whether a cached saturated result answers a request under `spec`: every
/// requested ceiling must provably not have cut the cached run short.
fn cache_serves(cached: &JobResult, spec: &JobSpec) -> bool {
    cached.outcome == StopReason::Saturated.keyword()
        && cached.applications <= spec.steps
        && spec.max_atoms.is_none_or(|cap| cached.atoms <= cap as u64)
        && spec.max_memory.is_none() // peak memory is not recorded; be conservative
        // A wall-clock deadline could have stopped a live run before the
        // fixpoint; run-time is not recorded, so a request with a timeout
        // always runs for real — identical submissions must not flip
        // between `saturated` and `wall-clock` on cache warmth.
        && spec.timeout_ms.is_none()
}

fn handle_submit(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    program_text: &str,
    overrides: &SubmitOverrides,
    want_stream: bool,
    fresh: bool,
) -> bool {
    if shared.shutdown.load(Ordering::Acquire) {
        return send_line(stream, &error_response("shutting-down", "server is shutting down"))
            .is_ok();
    }
    let program = match Program::parse(program_text) {
        Ok(p) => p,
        Err(e) => {
            return send_line(stream, &error_response("parse", &e.to_string())).is_ok();
        }
    };
    let spec = effective_spec(&shared.config.defaults, overrides);

    // Result cache: a compatible saturated run answers without chasing.
    if !fresh {
        let key = (program_fingerprint(&program), protocol::variant_str(spec.variant).to_string());
        let hit = lock(&shared.cache).get(&key).filter(|c| cache_serves(c, &spec)).cloned();
        if let Some(cached) = hit {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let resp = protocol::response(
                true,
                &[
                    ("cached", Value::Num(1)),
                    ("state", Value::Str("done".into())),
                    ("outcome", Value::Str(cached.outcome.clone())),
                    ("applications", Value::Num(cached.applications)),
                    ("atoms", Value::Num(cached.atoms)),
                    ("nulls", Value::Num(cached.nulls)),
                ],
            );
            return send_line(stream, &resp).is_ok();
        }
    }

    // Admission: one exact check-persist-enqueue critical section. The
    // lock is released before any streaming so admission never blocks on
    // a slow client.
    let admitted: Result<(String, Option<mpsc::Receiver<String>>), String> = {
        let _admit = lock(&shared.admission);
        let active = shared.active_jobs();
        if active >= shared.config.queue_capacity {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Err(protocol::response(
                false,
                &[
                    ("error", Value::Str("overloaded".into())),
                    ("active", Value::Num(active as u64)),
                    ("capacity", Value::Num(shared.config.queue_capacity as u64)),
                ],
            ))
        } else {
            let id = format!("job-{}", shared.next_seq.fetch_add(1, Ordering::Relaxed));
            match shared.store.create_job(&id, program_text, &spec) {
                Err(e) => {
                    let _ = remove_unadmitted(shared, &id);
                    Err(error_response("store-io", &format!("cannot persist job: {e}")))
                }
                Ok(_) => {
                    // The admit crash window: the job is durable but not
                    // yet acknowledged. An injected exit here must leave a
                    // job the restart scan runs.
                    if let Err(e) = failpoint::trip_io(points::SERVE_ADMIT) {
                        let _ = remove_unadmitted(shared, &id);
                        Err(error_response("store-io", &format!("cannot admit job: {e}")))
                    } else {
                        let (tx, rx) = if want_stream {
                            let (tx, rx) = mpsc::channel();
                            (Some(tx), Some(rx))
                        } else {
                            (None, None)
                        };
                        lock(&shared.jobs).insert(
                            id.clone(),
                            JobEntry {
                                phase: Phase::Queued,
                                cancel: CancelToken::new(),
                                user_cancelled: false,
                                stream: tx,
                            },
                        );
                        lock(&shared.queue).push_back(id.clone());
                        shared.queue_cv.notify_one();
                        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                        Ok((id, rx))
                    }
                }
            }
        }
    };
    match admitted {
        Err(resp) => send_line(stream, &resp).is_ok(),
        Ok((id, rx)) => {
            let resp = protocol::response(
                true,
                &[("job", Value::Str(id.clone())), ("state", Value::Str("queued".into()))],
            );
            if send_line(stream, &resp).is_err() {
                return false;
            }
            match rx {
                Some(rx) => stream_job(shared, stream, &id, rx),
                None => true,
            }
        }
    }
}

/// Derives a new job from an existing one: loads the referenced job's
/// program text from the store, applies the edit script to its base facts
/// ([`parse_edit_script`] + [`edited_program`]), and admits the edited
/// program through the ordinary submission path — same admission cap,
/// same durability, same result cache. The derived job re-chases from
/// scratch: derivation DAGs are not persisted, so the in-place DRed
/// repair cannot outlive the process, and the from-scratch chase of the
/// edited program is the canonical state every repair is checked against
/// anyway (see `incremental`).
fn handle_update(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    job: &str,
    script: &str,
    overrides: &SubmitOverrides,
    want_stream: bool,
) -> bool {
    if !is_job_id(job) {
        let resp = protocol::response(
            false,
            &[("error", Value::Str("unknown-job".into())), ("job", Value::Str(job.into()))],
        );
        return send_line(stream, &resp).is_ok();
    }
    let stored = match shared.store.load_job(job) {
        Ok(s) => s,
        Err(_) => {
            let resp = protocol::response(
                false,
                &[("error", Value::Str("unknown-job".into())), ("job", Value::Str(job.into()))],
            );
            return send_line(stream, &resp).is_ok();
        }
    };
    let mut program = match Program::parse(&stored.program_text) {
        Ok(p) => p,
        Err(e) => {
            let resp =
                error_response("parse", &format!("stored program no longer parses: {e}"));
            return send_line(stream, &resp).is_ok();
        }
    };
    let edits = match parse_edit_script(script, &mut program) {
        Ok(e) => e,
        Err(e) => {
            return send_line(stream, &error_response("edit-script", &e.to_string())).is_ok();
        }
    };
    let edited = edited_program(&program, &edits);
    let edited_text = program_to_string(&edited);
    handle_submit(shared, stream, &edited_text, overrides, want_stream, false)
}

/// Removes a job directory that failed before acknowledgement; best
/// effort, and never silent: a leftover directory without `meta` is
/// reported by the next scan as discarded, not run.
fn remove_unadmitted(shared: &Arc<Shared>, id: &str) -> std::io::Result<()> {
    std::fs::remove_dir_all(shared.store.job_dir(id))
}

/// Streams trace lines to the submitting client until the job's sink
/// closes, then sends the terminal response. The client reads event lines
/// (each has a `type` field) until the line with an `ok` field.
fn stream_job(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    id: &str,
    rx: mpsc::Receiver<String>,
) -> bool {
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(line) => {
                if send_line(stream, &line).is_err() {
                    // Client gone: drain silently so the job finishes.
                    while rx.recv().is_ok() {}
                    return false;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    let _ = send_line(
                        stream,
                        &error_response("shutting-down", "server is shutting down"),
                    );
                    return false;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    handle_wait(shared, stream, id)
}

fn job_response(shared: &Arc<Shared>, id: &str) -> String {
    {
        let jobs = lock(&shared.jobs);
        if let Some(entry) = jobs.get(id) {
            let mut fields: Vec<(&str, Value)> = vec![("job", Value::Str(id.into()))];
            match &entry.phase {
                Phase::Queued => fields.push(("state", Value::Str("queued".into()))),
                Phase::Running => fields.push(("state", Value::Str("running".into()))),
                Phase::Done(result) => {
                    fields.push(("state", Value::Str("done".into())));
                    fields.push(("outcome", Value::Str(result.outcome.clone())));
                    fields.push(("applications", Value::Num(result.applications)));
                    fields.push(("atoms", Value::Num(result.atoms)));
                    fields.push(("nulls", Value::Num(result.nulls)));
                }
                Phase::Failed(msg) => {
                    fields.push(("state", Value::Str("failed".into())));
                    fields.push(("detail", Value::Str(msg.clone())));
                }
                Phase::Interrupted => {
                    fields.push(("state", Value::Str("interrupted".into())));
                    fields.push((
                        "detail",
                        Value::Str(
                            "interrupted by server shutdown; \
                             still in flight on disk, recovers on restart"
                                .into(),
                        ),
                    ));
                }
            }
            return protocol::response(true, &fields);
        }
    }
    // Not in memory: a completed job evicted by terminal retention (or
    // finished before a restart) still answers from its on-disk result
    // marker. The id is validated as one of ours before it touches a path.
    if is_job_id(id) {
        if let Ok(Some(result)) = shared.store.read_result(id) {
            return protocol::response(
                true,
                &[
                    ("job", Value::Str(id.into())),
                    ("state", Value::Str("done".into())),
                    ("outcome", Value::Str(result.outcome.clone())),
                    ("applications", Value::Num(result.applications)),
                    ("atoms", Value::Num(result.atoms)),
                    ("nulls", Value::Num(result.nulls)),
                ],
            );
        }
    }
    protocol::response(
        false,
        &[("error", Value::Str("unknown-job".into())), ("job", Value::Str(id.into()))],
    )
}

/// Whether a client-supplied job id has the `job-<seq>` shape the store
/// generates — anything else never reaches the filesystem.
fn is_job_id(id: &str) -> bool {
    id.strip_prefix("job-")
        .is_some_and(|n| !n.is_empty() && n.len() <= 20 && n.bytes().all(|b| b.is_ascii_digit()))
}

fn handle_wait(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> bool {
    let mut jobs = lock(&shared.jobs);
    loop {
        match jobs.get(id) {
            None => break,
            Some(entry)
                if matches!(
                    entry.phase,
                    Phase::Done(_) | Phase::Failed(_) | Phase::Interrupted
                ) =>
            {
                break
            }
            Some(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    drop(jobs);
                    return send_line(
                        stream,
                        &error_response("shutting-down", "server is shutting down"),
                    )
                    .is_ok();
                }
                jobs = shared
                    .done_cv
                    .wait_timeout(jobs, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }
    drop(jobs);
    let resp = job_response(shared, id);
    send_line(stream, &resp).is_ok()
}

fn handle_cancel(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> bool {
    let resp = {
        let mut jobs = lock(&shared.jobs);
        match jobs.get_mut(id) {
            None => protocol::response(
                false,
                &[("error", Value::Str("unknown-job".into())), ("job", Value::Str(id.into()))],
            ),
            Some(entry) => {
                entry.user_cancelled = true;
                entry.cancel.cancel();
                protocol::response(
                    true,
                    &[("job", Value::Str(id.into())), ("cancelling", Value::Num(1))],
                )
            }
        }
    };
    send_line(stream, &resp).is_ok()
}

fn stats_response(shared: &Arc<Shared>) -> String {
    let queued = lock(&shared.queue).len() as u64;
    let running = lock(&shared.jobs)
        .values()
        .filter(|e| matches!(e.phase, Phase::Running))
        .count() as u64;
    protocol::response(
        true,
        &[
            ("submitted", Value::Num(shared.counters.submitted.load(Ordering::Relaxed))),
            ("completed", Value::Num(shared.counters.completed.load(Ordering::Relaxed))),
            ("failed", Value::Num(shared.counters.failed.load(Ordering::Relaxed))),
            ("rejected", Value::Num(shared.counters.rejected.load(Ordering::Relaxed))),
            ("cache_hits", Value::Num(shared.counters.cache_hits.load(Ordering::Relaxed))),
            ("recovered", Value::Num(shared.recovered.len() as u64)),
            ("queued", Value::Num(queued)),
            ("running", Value::Num(running)),
        ],
    )
}
