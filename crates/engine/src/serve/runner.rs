//! `JobRunner`: one chase job, durably, from genesis or from wreckage.
//!
//! [`run_job`] is the single entry point the server's worker pool uses for
//! both fresh submissions and jobs found half-done by the restart scan —
//! the two cases are deliberately the same code path, so the recovery
//! differential ("a killed job, resumed, is bit-identical to one that
//! never crashed") is a property of the only loop there is. The loop
//! mirrors the CLI's `chase --checkpoint --journal --checkpoint-every`
//! driver exactly: legs of `checkpoint_every` applications, each leg
//! followed by a synced journal, an atomically published snapshot, and a
//! re-based journal, under one overall wall-clock deadline.
//!
//! A job directory owns four well-known files (see [`JobPaths`]): the
//! working snapshot + journal pair the durable loop maintains, the final
//! checkpoint published when the chase stops, and the result marker the
//! *server* writes last — its presence is what the restart scan treats as
//! "complete", so a kill anywhere before it simply re-runs the
//! deterministic tail.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use chasekit_core::{CriticalInstance, Instance, Program};

use crate::journal::{recover, write_snapshot_atomic, JournalWriter};
use crate::trace::TraceSink;
use crate::{Budget, CancelToken, ChaseConfig, ChaseMachine, ChaseVariant, StopReason};

/// The per-job budget and durability cadence, persisted in the job's
/// `meta` file so a restarted server re-runs the job under identical
/// rules. Wall-clock deadlines restart from zero on recovery (elapsed
/// time before the kill is unknowable); deterministic workloads use the
/// application/atom/memory budgets, which replay exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Chase variant.
    pub variant: ChaseVariant,
    /// Application budget (the CLI's `--steps`).
    pub steps: u64,
    /// Wall-clock deadline in milliseconds, if any.
    pub timeout_ms: Option<u64>,
    /// Atom-count ceiling, if any.
    pub max_atoms: Option<usize>,
    /// Approximate memory ceiling in bytes, if any.
    pub max_memory: Option<usize>,
    /// Snapshot + journal re-base cadence in applications (0 = only the
    /// final checkpoint, no periodic durability).
    pub checkpoint_every: u64,
    /// Journal group-commit batch size (records per `write(2)`).
    pub flush_every: u64,
}

impl JobSpec {
    /// The server's built-in defaults: semi-oblivious chase, a generous
    /// but finite application budget, periodic durability every 256
    /// applications, write-per-record journaling.
    pub fn server_default() -> JobSpec {
        JobSpec {
            variant: ChaseVariant::SemiOblivious,
            steps: 1_000_000,
            timeout_ms: None,
            max_atoms: None,
            max_memory: None,
            checkpoint_every: 256,
            flush_every: 1,
        }
    }
}

/// The well-known files inside one job directory.
#[derive(Debug, Clone)]
pub struct JobPaths {
    /// The job directory itself.
    pub dir: PathBuf,
}

impl JobPaths {
    /// Wraps a job directory.
    pub fn new(dir: &Path) -> JobPaths {
        JobPaths { dir: dir.to_path_buf() }
    }

    /// The submitted program text, exactly as received.
    pub fn program(&self) -> PathBuf {
        self.dir.join("program.rules")
    }

    /// The job spec (`meta`), written last and atomically at admission.
    pub fn meta(&self) -> PathBuf {
        self.dir.join("meta")
    }

    /// The working snapshot the durable loop re-publishes every leg.
    pub fn state_checkpoint(&self) -> PathBuf {
        self.dir.join("state.ckpt")
    }

    /// The write-ahead journal covering everything past the snapshot.
    pub fn journal(&self) -> PathBuf {
        self.dir.join("state.journal")
    }

    /// The final checkpoint, published when the chase stops.
    pub fn final_checkpoint(&self) -> PathBuf {
        self.dir.join("final.ckpt")
    }

    /// The result marker the server writes last; its presence means done.
    pub fn result(&self) -> PathBuf {
        self.dir.join("result")
    }
}

/// What [`run_job`] accomplished.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Why the chase stopped.
    pub outcome: StopReason,
    /// Trigger applications performed (including recovered ones).
    pub applications: u64,
    /// Final instance size in atoms.
    pub atoms: usize,
    /// Labelled nulls minted.
    pub nulls: usize,
    /// Whether the job resumed from on-disk state (restart recovery).
    pub recovered: bool,
    /// Journal records replayed during recovery.
    pub replayed: u64,
    /// The final checkpoint text (also on disk at
    /// [`JobPaths::final_checkpoint`]) — the byte-identity witness the
    /// differential suite compares.
    pub checkpoint_text: String,
    /// The sticky journal error when `outcome` is [`StopReason::Io`].
    pub io_error: Option<String>,
}

/// Runs one job to a terminal state inside `dir`, fresh or recovered.
///
/// If the directory holds a prior `state.ckpt`/`state.journal` pair (the
/// server was killed mid-job), the machine is recovered from them —
/// verified deterministic replay, torn tails truncated — and continues;
/// otherwise the chase starts from the program's facts (or its critical
/// instance when it has none), exactly like the CLI. Returns an error
/// string for structural failures (unreadable state, mismatched files,
/// unwritable final checkpoint); budget and I/O stops are *successful*
/// reports with the corresponding [`StopReason`].
pub fn run_job(
    program: &Program,
    spec: &JobSpec,
    dir: &Path,
    cancel: CancelToken,
    sink: Option<Box<dyn TraceSink>>,
) -> Result<JobReport, String> {
    let paths = JobPaths::new(dir);
    let mut program = program.clone();
    let config = ChaseConfig::of(spec.variant);

    let snapshot_text = match std::fs::read_to_string(paths.state_checkpoint()) {
        Ok(t) => Some(t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("cannot read {}: {e}", paths.state_checkpoint().display())),
    };
    let journal_bytes = match std::fs::read(paths.journal()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", paths.journal().display())),
    };

    let genesis = if program.facts().is_empty() {
        CriticalInstance::build(&mut program).instance
    } else {
        Instance::from_atoms(program.facts().iter().cloned())
    };

    let recovered = snapshot_text.is_some() || !journal_bytes.is_empty();
    let mut replayed = 0;
    let mut machine = if recovered {
        let (mut m, report) =
            recover(&program, snapshot_text.as_deref(), &journal_bytes, genesis, config)
                .map_err(|e| format!("cannot recover job state: {e}"))?;
        replayed = report.records_replayed;
        if let Some(sink) = sink {
            // Sequence numbers continue from the recovered stats; the
            // stream is a suffix of an uncrashed run's stream.
            m.set_trace_sink(sink);
        }
        m
    } else {
        match sink {
            Some(sink) => ChaseMachine::new_with_trace(&program, config, genesis, sink),
            None => ChaseMachine::new(&program, config, genesis),
        }
    };
    machine.set_cancel_token(cancel);

    if recovered {
        // Republish the recovered state as the working snapshot *before*
        // the journal is re-based on it (the CLI's `run_recovery` order).
        // The re-base truncates the journal to base = recovered
        // applications; if a second kill lands before the next leg
        // publish, the old snapshot would trail that base and recover()
        // would reject the pair as inconsistent, failing the job on every
        // subsequent restart.
        let text = machine
            .snapshot()
            .to_text()
            .map_err(|e| format!("cannot serialize recovered snapshot: {e}"))?;
        write_snapshot_atomic(&paths.state_checkpoint(), &text).map_err(|e| {
            format!("cannot write checkpoint {}: {e}", paths.state_checkpoint().display())
        })?;
    }

    let journal = JournalWriter::for_machine(&paths.journal(), &machine)
        .map_err(|e| format!("cannot create journal {}: {e}", paths.journal().display()))?
        .with_flush_every(spec.flush_every);
    machine.set_journal(journal);

    // One overall wall-clock deadline across all snapshot legs, exactly
    // like the CLI driver.
    let deadline = spec.timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut publish_error: Option<String> = None;
    let mut outcome = loop {
        let target = if spec.checkpoint_every > 0 {
            machine.stats().applications.saturating_add(spec.checkpoint_every).min(spec.steps)
        } else {
            spec.steps
        };
        let mut budget = Budget::applications(target);
        if let Some(d) = deadline {
            let left = d.saturating_duration_since(Instant::now());
            budget = budget.with_timeout_ms(left.as_millis() as u64);
        }
        if let Some(atoms) = spec.max_atoms {
            budget = budget.with_atoms(atoms);
        }
        if let Some(bytes) = spec.max_memory {
            budget = budget.with_memory(bytes);
        }
        let stop = machine.run(&budget);
        if stop == StopReason::Applications && target < spec.steps {
            // Leg boundary with budget to spare: publish and keep going.
            // A publish failure (ENOSPC, EACCES, injected fault) is a
            // durability stop, not a server error: the job ends with
            // StopReason::Io and the named error text.
            match publish_leg(&mut machine, &paths, spec) {
                Ok(()) => continue,
                Err(msg) => {
                    publish_error = Some(msg);
                    break StopReason::Io;
                }
            }
        }
        break stop;
    };

    machine.flush_trace();

    // Finalization. A journal that cannot be synced is a durability
    // failure: surface it as StopReason::Io, never swallow it.
    let mut io_error = None;
    if outcome == StopReason::Io {
        io_error = publish_error.or_else(|| machine.journal_failed().map(str::to_string));
        let _ = machine.take_journal();
    } else if let Some(mut j) = machine.take_journal() {
        if let Err(e) = j.sync() {
            io_error = Some(format!("cannot sync journal {}: {e}", j.path().display()));
            outcome = StopReason::Io;
        }
    }

    let checkpoint_text = machine
        .snapshot()
        .to_text()
        .map_err(|e| format!("cannot serialize final checkpoint: {e}"))?;
    write_snapshot_atomic(&paths.final_checkpoint(), &checkpoint_text).map_err(|e| {
        format!("cannot write final checkpoint {}: {e}", paths.final_checkpoint().display())
    })?;

    Ok(JobReport {
        outcome,
        applications: machine.stats().applications,
        atoms: machine.instance().len(),
        nulls: machine.stats().nulls_minted as usize,
        recovered,
        replayed,
        checkpoint_text,
        io_error,
    })
}

/// Syncs the journal, atomically publishes the working snapshot, and
/// re-bases the journal on it — the CLI's `write_durable_snapshot`, with
/// the group-commit batch size carried across the re-base.
fn publish_leg(
    machine: &mut ChaseMachine<'_>,
    paths: &JobPaths,
    spec: &JobSpec,
) -> Result<(), String> {
    let text = machine
        .snapshot()
        .to_text()
        .map_err(|e| format!("cannot serialize snapshot: {e}"))?;
    if let Some(mut j) = machine.take_journal() {
        j.sync().map_err(|e| format!("cannot sync journal {}: {e}", j.path().display()))?;
    }
    write_snapshot_atomic(&paths.state_checkpoint(), &text)
        .map_err(|e| format!("cannot write checkpoint {}: {e}", paths.state_checkpoint().display()))?;
    let j = JournalWriter::for_machine(&paths.journal(), machine)
        .map_err(|e| format!("cannot re-base journal {}: {e}", paths.journal().display()))?
        .with_flush_every(spec.flush_every);
    machine.set_journal(j);
    Ok(())
}
