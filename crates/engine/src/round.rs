//! The parallel-round execution mode: frontier-at-once chase rounds with
//! concurrent trigger discovery.
//!
//! [`ChaseMachine::run_parallel`] drives the chase in **rounds**. Each
//! round takes the pending-trigger frontier (the queue as it stands at
//! round start) and splits the work the sequential machine interleaves
//! into two phases:
//!
//! 1. **Apply** (sequential, cheap): pop the frontier triggers in FIFO
//!    order and apply each one — satisfaction re-checks for the restricted
//!    chase, null minting, head-image insertion, derivation/Skolem
//!    recording. After each application the instance length is recorded as
//!    that application's *horizon*.
//! 2. **Discover** (parallel, hot): the atoms born this round are turned
//!    into `(atom, rule)` work items and fed to the machine's **persistent
//!    worker pool** ([`crate::pool::DiscoveryPool`] — spawned once on the
//!    first fanned-out round, parked between rounds, joined on drop), which
//!    distributes them in chunks through an atomic claim cursor. Each
//!    worker matches rule bodies pinned to its atom against a **read-only
//!    prefix view** of the instance clipped to the producing application's
//!    horizon ([`chasekit_core::InstanceView`]), so it reproduces exactly
//!    the matches the sequential machine found at that moment. Results are
//!    merged on the driver thread in deterministic (application, atom,
//!    rule) order — the order the sequential machine enqueues — through
//!    the same dedup-and-admit path.
//!
//! **Narrow rounds** skip the split entirely: a frontier too small to
//! amortise the pool handshake (fewer than `threads * 4` triggers) is
//! chased through the sequential per-application path under round
//! accounting, which is what keeps `--threads N` near sequential speed on
//! narrow-frontier workloads (and on low-core hosts). The choice is
//! invisible to the result: the two-phase merge replays the sequential
//! order by construction, so running the sequential code *is* the
//! reference behaviour.
//!
//! **Determinism.** Because (a) the apply phase performs the same
//! applications in the same order as the sequential FIFO machine, (b) the
//! horizon views make every pinned match see exactly the instance the
//! sequential machine saw when it matched, and (c) the merge replays the
//! sequential enqueue order through the same identity set, a parallel run
//! produces **bit-identical** instances (atom ids, null numbering),
//! derivation DAGs, queue contents, identity sets, and [`ChaseStats`] to
//! `run` — for every variant, at every thread count. The restricted
//! chase's order-dependence is therefore also preserved: its head
//! re-checks happen at dequeue time against the live merged instance,
//! which is the same instance state the sequential machine re-checked
//! against. Round/worker counters live in [`RoundStats`], *not* in
//! [`ChaseStats`], precisely so that stats stay comparable across modes.
//!
//! **Guardrails.** Budgets, the wall-clock deadline, the memory ceiling,
//! and cancellation are checked between applications exactly like the
//! sequential hot loop, so budget stops land on the same step boundary
//! with the same [`StopReason`]. Workers additionally poll the deadline
//! and the [`crate::guard::CancelToken`] between work chunks; a trip observed during
//! discovery stops the run at the end of the current round (discovery for
//! already-applied triggers always completes first — that is what keeps
//! the stopped machine checkpoint-consistent and resumable by either
//! execution mode).
//!
//! [`ChaseStats`]: crate::ChaseStats

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use chasekit_core::{AtomId, InstanceView, Substitution};

use crate::chase::{matches_pinned, ChaseMachine, Scheduling};
use crate::guard::{Budget, StopReason};
use crate::pool::DiscoveryPool;
use crate::trace::TraceEvent;

/// Counters describing the round structure of a parallel run.
///
/// Deliberately separate from [`crate::ChaseStats`]: the chase counters
/// must stay bit-identical between the sequential and parallel engines
/// (the differential suite compares them), while these describe *how* the
/// run was executed, which legitimately differs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Rounds driven (one per frontier batch, including budget-stopped
    /// ones).
    pub rounds: u64,
    /// Rounds whose discovery phase was fanned out to worker threads.
    pub parallel_rounds: u64,
    /// `(atom, rule)` discovery work items processed across all rounds.
    pub work_items: u64,
    /// Widest frontier seen at a round start (pending triggers).
    pub max_frontier: usize,
    /// Worker threads requested for the run (0 until a parallel run).
    pub threads: usize,
}

/// One unit of discovery work: match `rule`'s body pinned to `atom`
/// against the instance prefix of length `horizon`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    pub(crate) atom: AtomId,
    pub(crate) horizon: usize,
    pub(crate) rule: usize,
}

/// Per-slot record of one phase-1 dequeue, kept only when a trace sink is
/// installed. Emission is suppressed during the apply phase (the handle is
/// taken off the machine) and replayed at the merge, interleaved with that
/// application's admissions — reproducing the sequential machine's event
/// order exactly, so traced parallel runs emit a byte-identical core
/// stream.
enum SlotTrace {
    Skipped { rule: usize },
    Applied { app: u64, rule: usize, new_atoms: Vec<AtomId>, duplicates: u64 },
}

impl ChaseMachine<'_> {
    /// Counters describing the round structure of the latest parallel run
    /// (all zero for purely sequential machines).
    pub fn round_stats(&self) -> &RoundStats {
        &self.round_stats
    }

    /// Runs the chase in parallel rounds on `threads` workers until
    /// saturation or the first guardrail — producing **bit-identical**
    /// state to [`run`](Self::run) (see the module docs for the argument).
    ///
    /// Falls back to the sequential loop when it would not help or when
    /// the configuration pins the execution order in a way rounds cannot
    /// reproduce: `threads <= 1`, random trigger scheduling (the xorshift
    /// draw order depends on interleaving), or naive matching (the
    /// ablation mode re-matches everything from scratch per step).
    pub fn run_parallel(&mut self, budget: &Budget, threads: usize) -> StopReason {
        if threads <= 1
            || self.config.scheduling != Scheduling::Fifo
            || self.config.naive_matching
        {
            return self.run(budget);
        }
        self.round_stats.threads = threads;
        let stop = self.run_rounds(budget, threads);
        self.finish(stop)
    }

    fn run_rounds(&mut self, budget: &Budget, threads: usize) -> StopReason {
        let start = Instant::now();
        let deadline = budget.max_wall.map(|w| start + w);
        // Same wall/memory polling cadence as the sequential hot loop.
        const PERIOD: u64 = 32;

        loop {
            if self.queue.is_empty() {
                return StopReason::Saturated;
            }
            self.round_stats.rounds += 1;
            let frontier = self.queue.len();
            self.round_stats.max_frontier = self.round_stats.max_frontier.max(frontier);
            if let Some(t) = &mut self.trace {
                t.note(TraceEvent::RoundOpen { round: self.round_stats.rounds, frontier });
            }
            // Narrow rounds: a frontier too small to amortise the fan-out
            // handshake runs the plain sequential path (apply + immediate
            // discovery) under round accounting. The two-phase split would
            // overlap nothing here, and its batching, slot log, and merge
            // cost about as much as the matching they stage — this branch
            // is what keeps `--threads 2` near sequential speed on
            // narrow-frontier workloads. Bit-identity is free: the
            // two-phase merge replays the sequential order by
            // construction, so running the sequential code *is* the
            // reference behaviour.
            if frontier < threads * 4 {
                if let Some(stop) = self.narrow_round(budget, frontier, start) {
                    return self.boundary(stop);
                }
                let cancelled = self.cancel.as_ref().is_some_and(|t| t.is_cancelled());
                if cancelled || deadline.is_some_and(|d| Instant::now() >= d) {
                    let reason =
                        if cancelled { StopReason::Cancelled } else { StopReason::WallClock };
                    return self.boundary(reason);
                }
                if let Some(ceiling) = budget.max_memory {
                    if self.approx_bytes >= ceiling {
                        return self.boundary(StopReason::Memory);
                    }
                }
                continue;
            }
            // Suppress core-event emission during the apply phase: the
            // sequential stream interleaves each application's events with
            // the admissions it discovers, which in round mode only exist
            // after phase 2. Phase 1 logs its slots and the merge replays
            // them (see `SlotTrace`).
            let trace = self.trace.take();
            let tracing = trace.is_some();
            let mut round_log: Vec<SlotTrace> = Vec::new();
            let mut remaining = frontier;
            let mut pending_stop: Option<StopReason> = None;
            // One entry per application of this round: the atoms it added
            // and the instance length right afterwards (its horizon).
            let mut batches: Vec<(Vec<AtomId>, usize)> = Vec::new();

            // Phase 1: apply the frontier in FIFO order, guard checks once
            // per application attempt (mirroring the sequential `run`).
            'applications: while remaining > 0 {
                if self.stats.applications >= budget.max_applications {
                    pending_stop = Some(StopReason::Applications);
                    break;
                }
                if self.instance.len() >= budget.max_atoms {
                    pending_stop = Some(StopReason::Atoms);
                    break;
                }
                if let Some(token) = &self.cancel {
                    if token.is_cancelled() {
                        pending_stop = Some(StopReason::Cancelled);
                        break;
                    }
                }
                if self.journal_failed().is_some() {
                    pending_stop = Some(StopReason::Io);
                    break;
                }
                if self.stats.applications.is_multiple_of(PERIOD) {
                    if let Some(limit) = budget.max_wall {
                        if start.elapsed() >= limit {
                            pending_stop = Some(StopReason::WallClock);
                            break;
                        }
                    }
                    if let Some(ceiling) = budget.max_memory {
                        if self.approx_bytes >= ceiling {
                            pending_stop = Some(StopReason::Memory);
                            break;
                        }
                    }
                    self.poll_progress();
                }
                // Pop (skipping satisfied restricted triggers) until one
                // trigger applies or the frontier is exhausted.
                loop {
                    if remaining == 0 {
                        break 'applications;
                    }
                    remaining -= 1;
                    let trigger = self.next_trigger().expect("frontier is non-empty");
                    if self.skip_if_satisfied(&trigger) {
                        if tracing {
                            round_log.push(SlotTrace::Skipped { rule: trigger.rule });
                        }
                        continue;
                    }
                    let rule = trigger.rule;
                    let dup_before = self.stats.duplicate_atoms;
                    let event = self.apply_core(trigger);
                    if tracing {
                        round_log.push(SlotTrace::Applied {
                            app: event.seq,
                            rule,
                            new_atoms: event.new_atoms.clone(),
                            duplicates: self.stats.duplicate_atoms - dup_before,
                        });
                    }
                    if !event.new_atoms.is_empty() {
                        // Horizons are *id* bounds for prefix views, so
                        // they live in slab space: after an incremental
                        // update has tombstoned atoms, the live count
                        // undershoots the id high-water mark.
                        batches.push((event.new_atoms, self.instance.slab_len()));
                    }
                    break;
                }
            }

            // Phase 2: parallel discovery, merged in the deterministic
            // (application, atom, rule) order — the sequential enqueue
            // order. Rules whose bodies never mention the new atom's
            // predicate match emptily and are pre-filtered.
            let mut items: Vec<WorkItem> = Vec::new();
            // Item index range of each batch, so the traced merge can
            // interleave admissions with their producing application.
            let mut batch_ranges: Vec<(usize, usize)> = Vec::with_capacity(batches.len());
            for (new_atoms, horizon) in &batches {
                let lo = items.len();
                for &atom in new_atoms {
                    let pred = self.instance.atom(atom).pred;
                    for (rule_idx, rule) in self.program.rules().iter().enumerate() {
                        if rule.body().iter().any(|a| a.pred == pred) {
                            items.push(WorkItem { atom, horizon: *horizon, rule: rule_idx });
                        }
                    }
                }
                batch_ranges.push((lo, items.len()));
            }
            self.round_stats.work_items += items.len() as u64;

            let observed = Arc::new(AtomicBool::new(false));
            let cancel = self.cancel.clone();
            // Fan out only when the frontier is wide enough to amortise
            // the pool handshake: each fanned round wakes every worker
            // and drains a `Done` barrier, which costs a few context
            // switches — more than the matching a narrow round would
            // hide (most rounds in chase workloads carry a handful of
            // items). Requiring ~four items per lane keeps tiny rounds
            // on the driver; inline discovery runs the same code in the
            // same item order, so the choice is invisible to the result
            // (`RoundClose.workers` is an execution-class trace event,
            // excluded from core traces).
            let fan =
                if items.len() < threads * 4 { 1 } else { threads.min(items.len() / 2) };
            let (items, mut results): (Vec<WorkItem>, Vec<Vec<Substitution>>) = if fan < 2 {
                let results = items
                    .iter()
                    .map(|item| {
                        // Failpoint: same per-item site as the pool's
                        // `run_job`, so `round.worker` plans land even
                        // on rounds below the fan-out cutoff.
                        crate::failpoint::trip(crate::failpoint::points::ROUND_WORKER);
                        let view = InstanceView::prefix(&self.instance, item.horizon);
                        matches_pinned(
                            self.program,
                            &view,
                            item.rule,
                            item.atom,
                            &mut self.scratch,
                        )
                    })
                    .collect();
                (items, results)
            } else {
                self.round_stats.parallel_rounds += 1;
                // Lazily spawn the persistent pool (or replace it if this
                // machine is re-run at a different thread count).
                if self.pool.as_ref().is_none_or(|p| p.threads() != threads) {
                    self.pool = Some(DiscoveryPool::new(self.program, threads));
                }
                let pool = self.pool.as_ref().expect("pool was just ensured");
                // Move the instance (and items) behind Arcs for the
                // discovery barrier; both come back via try_unwrap — see
                // the pool docs for why the barrier makes this sound.
                let shared = Arc::new(std::mem::take(&mut self.instance));
                let items = Arc::new(items);
                let outcome = pool.discover(
                    Arc::clone(&shared),
                    Arc::clone(&items),
                    cancel.clone(),
                    deadline,
                    Arc::clone(&observed),
                    &mut self.scratch,
                );
                let Ok(reclaimed) = Arc::try_unwrap(shared) else {
                    unreachable!("every worker dropped its instance handle at the barrier")
                };
                self.instance = reclaimed;
                let Ok(items) = Arc::try_unwrap(items) else {
                    unreachable!("every worker dropped its item handle at the barrier")
                };
                match outcome {
                    Ok(results) => (items, results),
                    // A worker panicked (injected failpoint): re-raise on
                    // the driver thread, exactly like the scoped spawn did.
                    // The instance was restored above, so the machine the
                    // unwind abandons is structurally sound.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            };
            self.trace = trace;
            if self.trace.is_some() {
                // Traced merge: replay each slot's suppressed events, then
                // admit that application's discoveries — the sequential
                // machine's exact emission order, through the same
                // dedup-and-admit path.
                let mut next_batch = 0;
                for slot in round_log {
                    match slot {
                        SlotTrace::Skipped { rule } => {
                            if let Some(t) = &mut self.trace {
                                t.core(TraceEvent::TriggerSkipped { rule });
                            }
                        }
                        SlotTrace::Applied { app, rule, new_atoms, duplicates } => {
                            if let Some(t) = &mut self.trace {
                                t.core(TraceEvent::Applied {
                                    app,
                                    rule,
                                    new_atoms: new_atoms.len(),
                                    duplicates: duplicates as usize,
                                });
                            }
                            for &id in &new_atoms {
                                let pred = self.instance.atom(id).pred.0;
                                if let Some(t) = &mut self.trace {
                                    t.core(TraceEvent::AtomInserted {
                                        atom: id.index() as u32,
                                        pred,
                                        rule,
                                        app,
                                    });
                                }
                            }
                            if !new_atoms.is_empty() {
                                let (lo, hi) = batch_ranges[next_batch];
                                next_batch += 1;
                                for idx in lo..hi {
                                    for subst in std::mem::take(&mut results[idx]) {
                                        self.admit_trigger(items[idx].rule, subst);
                                    }
                                }
                            }
                        }
                    }
                }
            } else {
                for (item, homs) in items.iter().zip(results) {
                    for subst in homs {
                        self.admit_trigger(item.rule, subst);
                    }
                }
            }
            if let Some(t) = &mut self.trace {
                t.note(TraceEvent::RoundClose {
                    round: self.round_stats.rounds,
                    work_items: items.len(),
                    workers: if fan < 2 { 1 } else { fan },
                });
            }

            if let Some(stop) = pending_stop {
                return self.boundary(stop);
            }
            // A trip observed during discovery (by a worker or just now)
            // ends the run at this round boundary instead of paying for
            // another round of applications.
            let tripped_now = cancel.as_ref().is_some_and(|t| t.is_cancelled())
                || deadline.is_some_and(|d| Instant::now() >= d);
            if observed.load(Ordering::Relaxed) || tripped_now {
                let reason = if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    StopReason::Cancelled
                } else {
                    StopReason::WallClock
                };
                return self.boundary(reason);
            }
            // Memory accounting for pending triggers lands at the merge, so
            // mid-round ceiling checks undercount; the round boundary is
            // where the estimate is exact (and equals the sequential
            // machine's at the same application count). A memory stop may
            // therefore land up to one round later than sequentially — it
            // is a resource guard, not part of the deterministic state.
            if let Some(ceiling) = budget.max_memory {
                if self.approx_bytes >= ceiling {
                    return self.boundary(StopReason::Memory);
                }
            }
        }
    }

    /// One narrow round: chases exactly `frontier` queue entries through
    /// the sequential per-application path (apply + immediate discovery),
    /// with the same per-attempt guard checks as the two-phase apply loop.
    /// Core trace events are emitted directly in sequential order — no
    /// suppress-and-replay needed. Emits the round's `RoundClose` and
    /// returns the pending stop reason, if any guard tripped.
    fn narrow_round(
        &mut self,
        budget: &Budget,
        frontier: usize,
        start: Instant,
    ) -> Option<StopReason> {
        const PERIOD: u64 = 32;
        let mut pending_stop: Option<StopReason> = None;
        let mut work_items = 0usize;
        let mut remaining = frontier;
        'applications: while remaining > 0 {
            if self.stats.applications >= budget.max_applications {
                pending_stop = Some(StopReason::Applications);
                break;
            }
            if self.instance.len() >= budget.max_atoms {
                pending_stop = Some(StopReason::Atoms);
                break;
            }
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    pending_stop = Some(StopReason::Cancelled);
                    break;
                }
            }
            if self.journal_failed().is_some() {
                pending_stop = Some(StopReason::Io);
                break;
            }
            if self.stats.applications.is_multiple_of(PERIOD) {
                if let Some(limit) = budget.max_wall {
                    if start.elapsed() >= limit {
                        pending_stop = Some(StopReason::WallClock);
                        break;
                    }
                }
                if let Some(ceiling) = budget.max_memory {
                    if self.approx_bytes >= ceiling {
                        pending_stop = Some(StopReason::Memory);
                        break;
                    }
                }
                self.poll_progress();
            }
            loop {
                if remaining == 0 {
                    break 'applications;
                }
                remaining -= 1;
                let trigger = self.next_trigger().expect("frontier is non-empty");
                if self.skip_if_satisfied(&trigger) {
                    continue;
                }
                // Failpoint: same logical site as the pool's per-item
                // trip, so `round.worker` plans land on rounds below the
                // fan-out cutoff too (firing before the application keeps
                // the crash scene at a clean step boundary).
                crate::failpoint::trip(crate::failpoint::points::ROUND_WORKER);
                let event = self.apply(trigger);
                // Same work-item accounting as the two-phase item
                // builder: one item per (new atom, rule mentioning its
                // predicate) pair.
                for &id in &event.new_atoms {
                    let pred = self.instance.atom(id).pred;
                    work_items += self
                        .program
                        .rules()
                        .iter()
                        .filter(|r| r.body().iter().any(|a| a.pred == pred))
                        .count();
                }
                break;
            }
        }
        self.round_stats.work_items += work_items as u64;
        if let Some(t) = &mut self.trace {
            t.note(TraceEvent::RoundClose {
                round: self.round_stats.rounds,
                work_items,
                workers: 1,
            });
        }
        pending_stop
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use chasekit_core::Program;

    use crate::chase::{ChaseConfig, ChaseMachine, Scheduling};
    use crate::guard::{Budget, CancelToken, StopReason};
    use crate::variant::ChaseVariant;

    /// Diverges under every variant with a frontier that widens each round
    /// (every `e` atom feeds two rules), so rounds really fan out.
    const DIVERGING: &str = "\
        e(a, b).\n\
        e(X, Y) -> e(Y, Z).\n\
        e(X, Y) -> f(Y, W).\n\
        f(X, Y) -> e(Y, Z).\n";

    /// Saturates after exactly two applications: p(a) ⇒ q(a) ⇒ r(a).
    const TWO_STEPS: &str = "p(a). p(X) -> q(X). q(X) -> r(X).";

    fn machine(text: &str, config: ChaseConfig) -> ChaseMachine<'_> {
        // Leak: test-only convenience to get a 'static program.
        let program = Box::leak(Box::new(Program::parse(text).unwrap()));
        let initial =
            chasekit_core::Instance::from_atoms(program.facts().iter().cloned());
        ChaseMachine::new(program, config, initial)
    }

    /// The checkpoint text serializes the whole resumable state — instance,
    /// queue, identity set, RNG, stats — so equality here is bit-identity
    /// of everything the chase can observe.
    fn state_text(m: &ChaseMachine<'_>) -> String {
        m.snapshot().to_text().expect("untracked runs serialize")
    }

    #[test]
    fn bit_identical_to_the_sequential_machine_for_every_variant() {
        for variant in
            [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted]
        {
            let budget = Budget::applications(120);
            let mut seq = machine(DIVERGING, ChaseConfig::of(variant));
            let seq_stop = seq.run(&budget);
            for threads in [2, 4, 8] {
                let mut par = machine(DIVERGING, ChaseConfig::of(variant));
                let par_stop = par.run_parallel(&budget, threads);
                assert_eq!(seq_stop, par_stop, "{variant:?} stop @ {threads} threads");
                assert_eq!(
                    state_text(&seq),
                    state_text(&par),
                    "{variant:?} state @ {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tracked_runs_produce_identical_derivations_and_skolem_ancestry() {
        let config = ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation().with_skolem();
        let budget = Budget::applications(80);
        let mut seq = machine(DIVERGING, config);
        let mut par = machine(DIVERGING, config);
        assert_eq!(seq.run(&budget), par.run_parallel(&budget, 4));
        assert_eq!(format!("{:?}", seq.derivation()), format!("{:?}", par.derivation()));
        assert_eq!(seq.skolem_cyclic(), par.skolem_cyclic());
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn empty_queue_exactly_at_the_cap_reports_saturated() {
        let mut m = machine(TWO_STEPS, ChaseConfig::of(ChaseVariant::Oblivious));
        assert_eq!(m.run_parallel(&Budget::applications(2), 4), StopReason::Saturated);
        assert_eq!(m.stats().applications, 2);
    }

    #[test]
    fn applications_cap_with_pending_work_reports_applications() {
        let mut m = machine(TWO_STEPS, ChaseConfig::of(ChaseVariant::Oblivious));
        assert_eq!(m.run_parallel(&Budget::applications(1), 4), StopReason::Applications);
        assert_eq!(m.stats().applications, 1);
        assert!(m.pending() > 0);
    }

    #[test]
    fn atoms_cap_stops_round_mode_on_the_sequential_boundary() {
        let budget = Budget::unlimited().with_atoms(50);
        let mut seq = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        let mut par = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        assert_eq!(seq.run(&budget), StopReason::Atoms);
        assert_eq!(par.run_parallel(&budget, 4), StopReason::Atoms);
        assert_eq!(state_text(&seq), state_text(&par));
    }

    #[test]
    fn memory_ceiling_stops_round_mode_at_a_consistent_boundary() {
        let ceiling = 64 * 1024;
        let budget = Budget::unlimited().with_memory(ceiling);
        let mut seq = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        let mut par = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        assert_eq!(seq.run(&budget), StopReason::Memory);
        assert_eq!(par.run_parallel(&budget, 4), StopReason::Memory);
        // The estimate genuinely exceeded the ceiling, and the stop may
        // land at most one round after the sequential boundary (trigger
        // bytes are accounted at the merge, see the driver).
        assert!(par.approx_memory_bytes() >= ceiling);
        assert!(par.stats().applications >= seq.stats().applications);
        // The stopped state is a consistent checkpoint that keeps chasing.
        let text = state_text(&par);
        let restored = crate::checkpoint::Checkpoint::from_text(&text).unwrap();
        let program = Box::leak(Box::new(Program::parse(DIVERGING).unwrap()));
        let mut resumed = restored.resume(program).unwrap();
        let more = Budget::applications(resumed.stats().applications + 5);
        assert_eq!(resumed.run_parallel(&more, 4), StopReason::Applications);
    }

    #[test]
    fn a_pre_cancelled_token_stops_before_any_application() {
        let mut m = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        let token = CancelToken::new();
        token.cancel();
        m.set_cancel_token(token);
        assert_eq!(m.run_parallel(&Budget::unlimited(), 4), StopReason::Cancelled);
        assert_eq!(m.stats().applications, 0);
    }

    #[test]
    fn cancellation_stops_a_parallel_run_mid_flight_and_leaves_it_resumable() {
        let mut m = machine(DIVERGING, ChaseConfig::of(ChaseVariant::SemiOblivious));
        let token = CancelToken::new();
        m.set_cancel_token(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        });
        // The 30 s deadline is a safety net for a broken cancel path; the
        // token must win long before it.
        let stop = m.run_parallel(&Budget::unlimited().with_timeout_ms(30_000), 4);
        canceller.join().unwrap();
        assert_eq!(stop, StopReason::Cancelled);
        assert!(m.stats().applications > 0, "cancel should land mid-run, not at the start");

        // The stopped state round-trips through the text checkpoint and
        // keeps chasing — i.e. cancellation left a consistent boundary.
        let text = state_text(&m);
        let restored = crate::checkpoint::Checkpoint::from_text(&text).unwrap();
        let program = Box::leak(Box::new(Program::parse(DIVERGING).unwrap()));
        let mut resumed = restored.resume(program).unwrap();
        let more = Budget::applications(resumed.stats().applications + 10);
        assert_eq!(resumed.run_parallel(&more, 4), StopReason::Applications);
        assert_eq!(resumed.stats().applications, m.stats().applications + 10);
    }

    #[test]
    fn a_wall_clock_deadline_stops_a_parallel_run() {
        let mut m = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        let stop = m.run_parallel(&Budget::unlimited().with_timeout_ms(15), 4);
        assert_eq!(stop, StopReason::WallClock);
        assert!(m.pending() > 0, "the diverging chase never drains its queue");
    }

    #[test]
    fn single_thread_and_random_scheduling_fall_back_to_the_sequential_loop() {
        let budget = Budget::applications(60);

        let mut seq = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        let mut one = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        assert_eq!(seq.run(&budget), one.run_parallel(&budget, 1));
        assert_eq!(state_text(&seq), state_text(&one));
        assert_eq!(one.round_stats().rounds, 0, "threads=1 must not enter round mode");

        let random = ChaseConfig::of(ChaseVariant::Restricted).with_random_scheduling(7);
        assert_eq!(random.scheduling, Scheduling::Random(7));
        let mut seq = machine(DIVERGING, random);
        let mut par = machine(DIVERGING, random);
        assert_eq!(seq.run(&budget), par.run_parallel(&budget, 4));
        assert_eq!(state_text(&seq), state_text(&par));
        assert_eq!(par.round_stats().rounds, 0, "random scheduling must not enter round mode");
    }

    #[test]
    fn round_stats_describe_the_fan_out() {
        let mut m = machine(DIVERGING, ChaseConfig::of(ChaseVariant::Oblivious));
        m.run_parallel(&Budget::applications(120), 4);
        let rs = m.round_stats().clone();
        assert_eq!(rs.threads, 4);
        assert!(rs.rounds >= 1);
        assert!(rs.parallel_rounds >= 1, "the widening frontier must fan out at least once");
        assert!(rs.work_items > 0);
        assert!(rs.max_frontier >= 2);
    }
}
