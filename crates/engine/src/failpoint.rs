//! Deterministic, in-process fault injection for the durability layer.
//!
//! A **failpoint** is a named site in the engine's I/O and threading paths
//! (the catalog lives in [`points`]) where a test — or an operator via the
//! [`ENV_VAR`] environment variable — can arm a fault: an injected I/O
//! error, a short (torn) write, a worker panic, or a simulated kill
//! (`process::exit`). Faults fire on an exact hit count, so a plan like
//! `journal.append=error@7` is a pure function of the process's execution
//! — the same run trips the same syscall every time, which is what makes
//! the kill/recover differential suite reproducible. Seed-driven sweeps
//! (the `bench::fault` idiom from the experiment pool) derive the hit
//! index from a splitmix64 hash of the seed and install it here.
//!
//! **Cost when disabled.** Every site calls [`fire`], whose fast path is a
//! single relaxed atomic load of a process-wide armed flag; the registry
//! mutex is only touched once a spec has been installed. No failpoint code
//! allocates, locks, or branches further on the hot path of an unarmed
//! process — the durability ablation bench runs with the same binary.
//!
//! Failpoint state is process-global (sites fire from worker threads), so
//! tests that arm failpoints must serialize against each other; the crash
//! recovery suite shares one mutex for this.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable the CLI reads at startup to arm failpoints,
/// e.g. `CHASEKIT_FAILPOINTS="journal.append=short:10@3;snapshot.rename=exit:9"`.
pub const ENV_VAR: &str = "CHASEKIT_FAILPOINTS";

/// The failpoint catalog: every site the engine's durability layer can
/// trip. Arming an unknown name is an error, so specs can't silently rot.
pub mod points {
    /// A journal record append ([`crate::journal::JournalWriter::append`]).
    pub const JOURNAL_APPEND: &str = "journal.append";
    /// The journal flush/sync path.
    pub const JOURNAL_SYNC: &str = "journal.sync";
    /// Journal truncation after a successful snapshot (the crash window
    /// that leaves a stale journal base behind a newer snapshot).
    pub const JOURNAL_TRUNCATE: &str = "journal.truncate";
    /// Writing the snapshot's temporary file.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// The atomic rename publishing a snapshot (firing `exit` here
    /// simulates a kill between the last journal append and the rename).
    pub const SNAPSHOT_RENAME: &str = "snapshot.rename";
    /// Inside a parallel-round discovery worker (panic injection).
    pub const ROUND_WORKER: &str = "round.worker";
    /// Server job admission: after the job's store files are durably
    /// written, before it is enqueued and acknowledged. Firing `exit` here
    /// simulates a kill in the admit window — the restarted server must
    /// recover the persisted-but-unacknowledged job.
    pub const SERVE_ADMIT: &str = "serve.admit";
    /// Server result publication: after a job's final checkpoint is
    /// written, before its result file marks it complete. Firing `exit`
    /// here leaves a finished-but-unmarked job for restart recovery to
    /// re-run deterministically.
    pub const SERVE_RESULT: &str = "serve.result";

    /// Every point, for spec validation.
    pub(super) const ALL: &[&str] = &[
        JOURNAL_APPEND,
        JOURNAL_SYNC,
        JOURNAL_TRUNCATE,
        SNAPSHOT_WRITE,
        SNAPSHOT_RENAME,
        ROUND_WORKER,
        SERVE_ADMIT,
        SERVE_RESULT,
    ];
}

/// What an armed failpoint does when its hit count comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected `io::Error` from the site.
    Error,
    /// Write only the first `n` bytes of the site's payload, then fail —
    /// a torn write, exactly what a mid-write crash leaves behind.
    ShortWrite(usize),
    /// Panic at the site (worker-thread crash).
    Panic,
    /// Exit the whole process with the given code (simulated kill).
    Exit(u8),
}

#[derive(Debug)]
struct Point {
    action: Action,
    /// 1-based hit index the fault fires on.
    at: u64,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static POINTS: Mutex<Option<HashMap<String, Point>>> = Mutex::new(None);

/// Arms failpoints from a spec string: `;`- or `,`-separated
/// `name=action[@N]` items, where `action` is `error`, `panic`,
/// `exit[:CODE]`, or `short:BYTES`, and `@N` (default 1) is the 1-based
/// hit the fault fires on. Replaces any previously armed spec and resets
/// all hit counters.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut map = HashMap::new();
    for item in spec.split([';', ',']).map(str::trim).filter(|s| !s.is_empty()) {
        let (name, rest) = item
            .split_once('=')
            .ok_or_else(|| format!("failpoint item `{item}` is not `name=action[@N]`"))?;
        if !points::ALL.contains(&name) {
            return Err(format!(
                "unknown failpoint `{name}` (known: {})",
                points::ALL.join(", ")
            ));
        }
        let (action_text, at) = match rest.split_once('@') {
            Some((a, n)) => (
                a,
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("failpoint `{name}`: bad hit index `{n}`"))?,
            ),
            None => (rest, 1),
        };
        let action = match action_text.split_once(':') {
            None => match action_text {
                "error" => Action::Error,
                "panic" => Action::Panic,
                "exit" => Action::Exit(1),
                other => return Err(format!("failpoint `{name}`: unknown action `{other}`")),
            },
            Some(("exit", code)) => Action::Exit(
                code.parse().map_err(|_| format!("failpoint `{name}`: bad exit code `{code}`"))?,
            ),
            Some(("short", bytes)) => Action::ShortWrite(
                bytes
                    .parse()
                    .map_err(|_| format!("failpoint `{name}`: bad short-write size `{bytes}`"))?,
            ),
            Some((other, _)) => {
                return Err(format!("failpoint `{name}`: unknown action `{other}`"))
            }
        };
        map.insert(name.to_string(), Point { action, at, hits: 0 });
    }
    let armed = !map.is_empty();
    *lock() = if armed { Some(map) } else { None };
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint and resets hit counters.
pub fn clear() {
    *lock() = None;
    ARMED.store(false, Ordering::Release);
}

/// Whether any failpoint is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn lock() -> std::sync::MutexGuard<'static, Option<HashMap<String, Point>>> {
    // A panic injected *at* a failpoint can poison the registry mutex of
    // this process; later tests still need a working registry.
    POINTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registers a hit at `name` and returns the armed action if this hit is
/// the one the spec selected. The unarmed fast path is one relaxed load.
#[inline]
pub fn fire(name: &str) -> Option<Action> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_slow(name)
}

#[cold]
fn fire_slow(name: &str) -> Option<Action> {
    let mut guard = lock();
    let point = guard.as_mut()?.get_mut(name)?;
    point.hits += 1;
    (point.hits == point.at).then_some(point.action)
}

/// [`fire`] for I/O sites: maps `Error` to an injected `io::Error` naming
/// the site, `ShortWrite(n)` to `Ok(Some(n))` (the caller tears its write
/// to `n` bytes and then fails), and executes `Panic`/`Exit` in place.
/// Returns `Ok(None)` when nothing fires.
pub(crate) fn trip_io(name: &str) -> std::io::Result<Option<usize>> {
    match fire(name) {
        None => Ok(None),
        Some(Action::Error) => Err(injected(name)),
        Some(Action::ShortWrite(n)) => Ok(Some(n)),
        Some(Action::Panic) => panic!("injected panic at failpoint `{name}`"),
        Some(Action::Exit(code)) => std::process::exit(code.into()),
    }
}

/// [`fire`] for non-I/O sites (worker threads): every armed action that
/// fires becomes a panic, except `Exit`, which exits the process.
pub(crate) fn trip(name: &str) {
    match fire(name) {
        None => {}
        Some(Action::Exit(code)) => std::process::exit(code.into()),
        Some(_) => panic!("injected panic at failpoint `{name}`"),
    }
}

/// The `io::Error` an armed `Error` action injects.
pub(crate) fn injected(name: &str) -> std::io::Error {
    std::io::Error::other(format!("injected failpoint `{name}`"))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Failpoint state is process-global; tests arming it must serialize.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_fast_path_fires_nothing() {
        let _g = guard();
        clear();
        assert!(!armed());
        for _ in 0..1000 {
            assert_eq!(fire(points::JOURNAL_APPEND), None);
        }
    }

    #[test]
    fn fires_on_the_exact_hit_and_only_once() {
        let _g = guard();
        configure("journal.append=error@3").unwrap();
        assert_eq!(fire(points::JOURNAL_APPEND), None);
        assert_eq!(fire(points::JOURNAL_APPEND), None);
        assert_eq!(fire(points::JOURNAL_APPEND), Some(Action::Error));
        assert_eq!(fire(points::JOURNAL_APPEND), None);
        // Unarmed points never fire even while the process is armed.
        assert_eq!(fire(points::SNAPSHOT_RENAME), None);
        clear();
    }

    #[test]
    fn spec_grammar_round_trips_every_action() {
        let _g = guard();
        configure("journal.append=short:12@2; snapshot.write=error, round.worker=panic@5")
            .unwrap();
        assert_eq!(fire(points::SNAPSHOT_WRITE), Some(Action::Error));
        assert_eq!(fire(points::JOURNAL_APPEND), None);
        assert_eq!(fire(points::JOURNAL_APPEND), Some(Action::ShortWrite(12)));
        configure("snapshot.rename=exit:9").unwrap();
        // Reconfiguring resets: don't actually fire the exit in-process.
        assert!(armed());
        clear();
        assert!(!armed());
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_item() {
        let _g = guard();
        clear();
        for (spec, needle) in [
            ("nonsense", "nonsense"),
            ("no.such.point=error", "no.such.point"),
            ("journal.append=explode", "explode"),
            ("journal.append=error@0", "0"),
            ("journal.append=short:lots", "lots"),
        ] {
            let err = configure(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
            assert!(!armed(), "{spec} must not half-arm");
        }
    }

    #[test]
    fn trip_io_maps_actions() {
        let _g = guard();
        configure("journal.sync=error@1;journal.append=short:4@1").unwrap();
        assert_eq!(trip_io(points::JOURNAL_APPEND).unwrap(), Some(4));
        let err = trip_io(points::JOURNAL_SYNC).unwrap_err();
        assert!(err.to_string().contains("journal.sync"));
        assert_eq!(trip_io(points::JOURNAL_SYNC).unwrap(), None);
        clear();
    }
}
