//! The **core chase** (Deutsch, Nash & Remmel, PODS 2008 — the reproduced
//! paper's reference \[4\]).
//!
//! The restricted chase is order-dependent: some fair orders terminate
//! while others diverge on the same input. The core chase removes the
//! non-determinism: in each *round* it applies **all** currently active
//! triggers (restricted semantics — skip satisfied heads), then replaces
//! the instance by its **core**. It terminates iff a finite universal
//! model exists at all, making it the strongest chase variant for
//! termination — at the cost of core computation (NP-hard) each round.
//!
//! This implementation reuses [`crate::core_min::core_of`] and inherits its
//! null-count guard: instances that grow past [`crate::core_min::MAX_CORE_NULLS`]
//! nulls abort the run with [`CoreChaseOutcome::CoreTooLarge`].

use std::ops::ControlFlow;

use chasekit_core::{exists_extension, for_each_hom, Instance, Program, Substitution};

use crate::guard::Budget;
use crate::core_min::core_of;

/// How a core-chase run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreChaseOutcome {
    /// A round added nothing: the instance is a (core) universal model.
    Saturated,
    /// The round budget ran out.
    BudgetExhausted,
    /// The intermediate instance exceeded the core-computation guard.
    CoreTooLarge,
}

/// Result of a core-chase run.
#[derive(Debug)]
pub struct CoreChaseResult {
    /// How the run ended.
    pub outcome: CoreChaseOutcome,
    /// The final instance (the core universal model on saturation).
    pub instance: Instance,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs the core chase. `budget.max_applications` bounds the number of
/// rounds; `budget.max_atoms` bounds the intermediate instance size.
pub fn core_chase(program: &Program, initial: Instance, budget: &Budget) -> CoreChaseResult {
    let mut instance = match core_of(&initial) {
        Some(core) => core,
        None => {
            return CoreChaseResult {
                outcome: CoreChaseOutcome::CoreTooLarge,
                instance: initial,
                rounds: 0,
            }
        }
    };
    let mut rounds = 0u64;

    loop {
        if rounds >= budget.max_applications {
            return CoreChaseResult {
                outcome: CoreChaseOutcome::BudgetExhausted,
                instance,
                rounds,
            };
        }
        rounds += 1;

        // Collect all active triggers against the *current* instance.
        let mut active: Vec<(usize, Substitution)> = Vec::new();
        for (rule_idx, rule) in program.rules().iter().enumerate() {
            for_each_hom(rule.body(), rule.var_count(), &instance, None, None, &mut |s| {
                if !exists_extension(rule.head(), rule.var_count(), &instance, s) {
                    active.push((rule_idx, s.clone()));
                }
                ControlFlow::Continue(())
            });
        }
        if active.is_empty() {
            return CoreChaseResult { outcome: CoreChaseOutcome::Saturated, instance, rounds };
        }

        // Apply them all (parallel-round semantics).
        let mut next = instance.clone();
        for (rule_idx, subst) in active {
            let rule = &program.rules()[rule_idx];
            let mut subst = subst;
            for &ex in rule.existentials() {
                let null = next.fresh_null();
                subst.bind(ex, chasekit_core::Term::Null(null));
            }
            for head_atom in rule.head() {
                next.insert(subst.apply_atom(head_atom));
            }
            if next.len() > budget.max_atoms {
                return CoreChaseResult {
                    outcome: CoreChaseOutcome::BudgetExhausted,
                    instance: next,
                    rounds,
                };
            }
        }

        // Core-minimize the round's result.
        instance = match core_of(&next) {
            Some(core) => core,
            None => {
                return CoreChaseResult {
                    outcome: CoreChaseOutcome::CoreTooLarge,
                    instance: next,
                    rounds,
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase;
    use crate::guard::StopReason;
    use crate::variant::ChaseVariant;
    use chasekit_core::{instance_hom_exists, Program};

    fn facts(p: &Program) -> Instance {
        Instance::from_atoms(p.facts().iter().cloned())
    }

    #[test]
    fn terminating_workloads_saturate_to_small_cores() {
        let p = Program::parse("emp(a). emp(X) -> dept(X, D). dept(X, D) -> unit(D).").unwrap();
        let r = core_chase(&p, facts(&p), &Budget::default());
        assert_eq!(r.outcome, CoreChaseOutcome::Saturated);
        assert!(crate::chase::is_model(&p, &r.instance));
        assert_eq!(r.instance.len(), 3);
    }

    /// The order-dependence workload: restricted FIFO diverges, yet a
    /// finite universal model exists — the core chase finds it
    /// deterministically (the paper's reference [4] is exactly about this).
    #[test]
    fn core_chase_terminates_where_fifo_restricted_diverges() {
        let p = Program::parse("r(a, b). r(X, Y) -> r(Y, Z). r(X, Y) -> r(Y, X).").unwrap();
        let fifo = chase(&p, ChaseVariant::Restricted, facts(&p), &Budget::applications(300));
        assert_eq!(fifo.outcome, StopReason::Applications, "FIFO diverges here");

        let r = core_chase(&p, facts(&p), &Budget::default());
        assert_eq!(r.outcome, CoreChaseOutcome::Saturated);
        assert!(crate::chase::is_model(&p, &r.instance));
        // The core model is just the 2-cycle {r(a,b), r(b,a)}.
        assert_eq!(r.instance.len(), 2);
    }

    #[test]
    fn core_chase_diverges_when_no_finite_universal_model_exists() {
        // Example 2 of the paper: every model embeds the infinite path, so
        // no finite universal model exists; the core chase cannot stop.
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let r = core_chase(&p, facts(&p), &Budget::applications(20));
        assert_eq!(r.outcome, CoreChaseOutcome::BudgetExhausted);
        assert_eq!(r.rounds, 20);
    }

    #[test]
    fn core_chase_result_embeds_into_the_restricted_result() {
        let p = Program::parse(
            "emp(a). emp(b). emp(X) -> dept(X, D), mgr(D, M). mgr(D, M) -> boss(M).",
        )
        .unwrap();
        let cc = core_chase(&p, facts(&p), &Budget::default());
        let rst = chase(&p, ChaseVariant::Restricted, facts(&p), &Budget::default());
        assert_eq!(cc.outcome, CoreChaseOutcome::Saturated);
        assert_eq!(rst.outcome, StopReason::Saturated);
        assert!(instance_hom_exists(&cc.instance, &rst.instance));
        assert!(instance_hom_exists(&rst.instance, &cc.instance));
        assert!(cc.instance.len() <= rst.instance.len());
    }

    #[test]
    fn empty_program_is_a_noop() {
        let p = Program::parse("p(a, b).").unwrap();
        let r = core_chase(&p, facts(&p), &Budget::default());
        assert_eq!(r.outcome, CoreChaseOutcome::Saturated);
        assert_eq!(r.instance.len(), 1);
        assert_eq!(r.rounds, 1);
    }
}
