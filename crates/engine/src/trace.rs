//! Structured event tracing for chase runs.
//!
//! A [`TraceSink`] receives a stream of [`TraceEvent`]s describing a run —
//! triggers admitted/deduplicated/skipped, applications, atom insertions
//! with provenance, stops, checkpoint writes/resumes, and (for the
//! parallel driver) round boundaries and guard trips. Tracing is strictly
//! **observational**: a traced run performs exactly the same state
//! transitions as an untraced one, bit for bit, and when no sink is
//! installed the machine pays nothing (event construction is deferred
//! behind a closure that is never called).
//!
//! ## Event classes and sequence numbers
//!
//! Events come in three classes:
//!
//! * **Core** events mirror the deterministic chase transitions one-to-one:
//!   every core event corresponds to exactly one [`ChaseStats`] counter
//!   increment (`TriggerAdmitted` ↔ `triggers_enqueued`, `TriggerDeduped` ↔
//!   `triggers_deduped`, `TriggerSkipped` ↔ `satisfied_skips`, `Applied` ↔
//!   `applications`, `AtomInserted` ↔ `atoms_added`). Each consumes one
//!   **sequence number**. Because the parallel-round driver replays the
//!   sequential admission order exactly, the core stream is identical at
//!   every thread count — and because the next sequence number is a pure
//!   function of the stats ([`core_seq`]), a resumed run continues the
//!   numbering without the checkpoint format carrying any trace state.
//! * **Lifecycle** events (`Stop`, `CheckpointWrite`, `CheckpointResume`)
//!   annotate run boundaries. They reuse the current sequence number
//!   without consuming one.
//! * **Execution** events (`RoundOpen`, `RoundClose`, `GuardTrip`)
//!   describe *how* the run was executed — rounds, worker fan-out, guard
//!   poll outcomes. They are mode- and timing-dependent, so the default
//!   [`JsonlSink`] excludes them; opt in with [`JsonlSink::full`].
//!
//! ## Wall-clock-free core
//!
//! No event carries a timestamp. Periodic human-readable progress
//! reporting (which genuinely needs wall time) lives in a separate
//! machine-side callback installed with `ChaseMachine::set_progress`; it
//! runs inside the existing guard-poll cadence and never touches the
//! deterministic state.
//!
//! [`ChaseStats`]: crate::ChaseStats

use std::io::Write;

use crate::chase::ChaseStats;
use crate::guard::StopReason;
use chasekit_core::Program;

/// One structured chase event. See the module docs for the class taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Core: a candidate trigger passed identity dedup and was enqueued.
    TriggerAdmitted {
        /// Rule index of the trigger.
        rule: usize,
    },
    /// Core: a candidate trigger was dropped — its identity was seen.
    TriggerDeduped {
        /// Rule index of the trigger.
        rule: usize,
    },
    /// Core: a restricted-chase trigger was skipped at dequeue time
    /// because its head was already satisfied.
    TriggerSkipped {
        /// Rule index of the trigger.
        rule: usize,
    },
    /// Core: a trigger was applied.
    Applied {
        /// Application number (the machine's step counter, 0-based).
        app: u64,
        /// Rule index that fired.
        rule: usize,
        /// Head images that were new atoms.
        new_atoms: usize,
        /// Head images that already existed.
        duplicates: usize,
    },
    /// Core: an application inserted a new atom (provenance: which rule,
    /// which application).
    AtomInserted {
        /// Dense id of the inserted atom.
        atom: u32,
        /// Predicate id of the atom.
        pred: u32,
        /// Rule index that produced it.
        rule: usize,
        /// Application number that produced it.
        app: u64,
    },
    /// Lifecycle: the run stopped.
    Stop {
        /// Why it stopped.
        reason: StopReason,
        /// Applications performed so far.
        applications: u64,
        /// Instance size at the stop.
        atoms: usize,
    },
    /// Lifecycle: the run state was written to a checkpoint file.
    CheckpointWrite {
        /// Applications at the snapshot.
        applications: u64,
        /// Instance size at the snapshot.
        atoms: usize,
        /// Pending triggers at the snapshot.
        pending: usize,
    },
    /// Lifecycle: the run was resumed from a checkpoint file.
    CheckpointResume {
        /// Applications restored.
        applications: u64,
        /// Instance size restored.
        atoms: usize,
        /// Pending triggers restored.
        pending: usize,
    },
    /// Lifecycle: an incremental update retracted a base fact and
    /// overdeleted its derivation cone.
    Retract {
        /// Atoms deleted (the base fact plus its cone).
        atoms: usize,
        /// Applications invalidated (their matches touched the cone).
        apps: usize,
    },
    /// Lifecycle: the delete-and-rederive pass restored cone members that
    /// still have live support.
    Rederive {
        /// Applications re-fired from surviving support.
        apps: usize,
        /// Atoms the re-fired applications restored.
        atoms: usize,
    },
    /// Lifecycle: an edit script was applied to the machine.
    EditApply {
        /// `add` edits applied.
        adds: usize,
        /// `retract` edits applied.
        retracts: usize,
    },
    /// Execution: a parallel round opened over the pending frontier.
    RoundOpen {
        /// Round number (1-based).
        round: u64,
        /// Pending triggers at round start.
        frontier: usize,
    },
    /// Execution: a parallel round finished its discovery merge.
    RoundClose {
        /// Round number (1-based).
        round: u64,
        /// Discovery work items processed this round.
        work_items: usize,
        /// Worker threads the discovery fanned out to (1 = inline).
        workers: usize,
    },
    /// Execution: a guard poll tripped (budget, deadline, memory ceiling,
    /// or cancellation).
    GuardTrip {
        /// The guardrail that tripped.
        reason: StopReason,
    },
}

impl TraceEvent {
    /// Whether this is a core event (consumes a sequence number and is
    /// identical at every thread count).
    pub fn is_core(&self) -> bool {
        matches!(
            self,
            TraceEvent::TriggerAdmitted { .. }
                | TraceEvent::TriggerDeduped { .. }
                | TraceEvent::TriggerSkipped { .. }
                | TraceEvent::Applied { .. }
                | TraceEvent::AtomInserted { .. }
        )
    }

    /// Whether this is an execution event (mode/timing-dependent; excluded
    /// from default JSONL traces).
    pub fn is_execution(&self) -> bool {
        matches!(
            self,
            TraceEvent::RoundOpen { .. }
                | TraceEvent::RoundClose { .. }
                | TraceEvent::GuardTrip { .. }
        )
    }
}

/// The sequence number the next core event will carry, as a pure function
/// of the run statistics. This is what lets `--trace` + `--checkpoint`
/// resume with contiguous numbering: the stats are checkpointed, the trace
/// counter is derived.
pub fn core_seq(stats: &ChaseStats) -> u64 {
    stats.applications
        + stats.atoms_added
        + stats.triggers_enqueued
        + stats.triggers_deduped
        + stats.satisfied_skips
}

/// A consumer of trace events. Implementations must be cheap: `record` is
/// called from the chase hot loop (only when a sink is installed).
pub trait TraceSink: Send {
    /// Receives one event with its sequence number.
    fn record(&mut self, seq: u64, event: &TraceEvent);
    /// Flushes any buffered output. Called at run boundaries.
    fn flush(&mut self) {}
}

/// The machine's handle on an installed sink: the sink plus the sink-local
/// sequence counter (initialized from [`core_seq`] of the stats at
/// installation time).
pub(crate) struct TraceHandle {
    sink: Box<dyn TraceSink>,
    next_seq: u64,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").field("next_seq", &self.next_seq).finish()
    }
}

impl TraceHandle {
    pub(crate) fn new(sink: Box<dyn TraceSink>, next_seq: u64) -> Self {
        TraceHandle { sink, next_seq }
    }

    /// Records a core event, consuming a sequence number.
    pub(crate) fn core(&mut self, event: TraceEvent) {
        debug_assert!(event.is_core());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sink.record(seq, &event);
    }

    /// Records a lifecycle or execution event at the current sequence
    /// number (no number is consumed).
    pub(crate) fn note(&mut self, event: TraceEvent) {
        debug_assert!(!event.is_core());
        self.sink.record(self.next_seq, &event);
    }

    pub(crate) fn flush(&mut self) {
        self.sink.flush();
    }
}

/// A sink that writes one flat JSON object per event (JSONL). The schema
/// is fixed and closed — see [`validate_trace_line`], which rejects
/// unknown fields and kinds.
///
/// By default only core and lifecycle events are written, which makes the
/// output byte-identical at every `--threads` count; [`JsonlSink::full`]
/// also writes execution events (rounds, guard trips).
pub struct JsonlSink<W: Write + Send> {
    out: W,
    full: bool,
    /// Predicate names, indexed by `PredId`, captured at construction so
    /// atom events carry readable provenance.
    pred_names: Vec<String>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A default-mode sink over `out` (core + lifecycle events only).
    pub fn new(out: W, program: &Program) -> Self {
        let pred_names = (0..program.vocab.pred_count())
            .map(|i| program.vocab.pred_name(chasekit_core::PredId(i as u32)).to_string())
            .collect();
        JsonlSink { out, full: false, pred_names }
    }

    /// Switches the sink to full mode (execution events included).
    pub fn full(mut self) -> Self {
        self.full = true;
        self
    }

    /// Unwraps the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn pred_name(&self, pred: u32) -> &str {
        self.pred_names.get(pred as usize).map(String::as_str).unwrap_or("?")
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, seq: u64, event: &TraceEvent) {
        if event.is_execution() && !self.full {
            return;
        }
        let line = match event {
            TraceEvent::TriggerAdmitted { rule } => {
                format!("{{\"seq\":{seq},\"ev\":\"admit\",\"rule\":{rule}}}")
            }
            TraceEvent::TriggerDeduped { rule } => {
                format!("{{\"seq\":{seq},\"ev\":\"dedup\",\"rule\":{rule}}}")
            }
            TraceEvent::TriggerSkipped { rule } => {
                format!("{{\"seq\":{seq},\"ev\":\"skip\",\"rule\":{rule}}}")
            }
            TraceEvent::Applied { app, rule, new_atoms, duplicates } => format!(
                "{{\"seq\":{seq},\"ev\":\"apply\",\"app\":{app},\"rule\":{rule},\
                 \"new\":{new_atoms},\"dup\":{duplicates}}}"
            ),
            TraceEvent::AtomInserted { atom, pred, rule, app } => format!(
                "{{\"seq\":{seq},\"ev\":\"atom\",\"id\":{atom},\"pred\":{},\
                 \"rule\":{rule},\"app\":{app}}}",
                chasekit_core::display::json_string(self.pred_name(*pred))
            ),
            TraceEvent::Stop { reason, applications, atoms } => format!(
                "{{\"seq\":{seq},\"ev\":\"stop\",\"reason\":{},\
                 \"apps\":{applications},\"atoms\":{atoms}}}",
                chasekit_core::display::json_string(reason.keyword())
            ),
            TraceEvent::CheckpointWrite { applications, atoms, pending } => format!(
                "{{\"seq\":{seq},\"ev\":\"ckpt-write\",\"apps\":{applications},\
                 \"atoms\":{atoms},\"pending\":{pending}}}"
            ),
            TraceEvent::CheckpointResume { applications, atoms, pending } => format!(
                "{{\"seq\":{seq},\"ev\":\"ckpt-resume\",\"apps\":{applications},\
                 \"atoms\":{atoms},\"pending\":{pending}}}"
            ),
            TraceEvent::Retract { atoms, apps } => format!(
                "{{\"seq\":{seq},\"ev\":\"retract\",\"atoms\":{atoms},\"apps\":{apps}}}"
            ),
            TraceEvent::Rederive { apps, atoms } => format!(
                "{{\"seq\":{seq},\"ev\":\"rederive\",\"apps\":{apps},\"atoms\":{atoms}}}"
            ),
            TraceEvent::EditApply { adds, retracts } => format!(
                "{{\"seq\":{seq},\"ev\":\"edit\",\"adds\":{adds},\"retracts\":{retracts}}}"
            ),
            TraceEvent::RoundOpen { round, frontier } => format!(
                "{{\"seq\":{seq},\"ev\":\"round-open\",\"round\":{round},\
                 \"frontier\":{frontier}}}"
            ),
            TraceEvent::RoundClose { round, work_items, workers } => format!(
                "{{\"seq\":{seq},\"ev\":\"round-close\",\"round\":{round},\
                 \"items\":{work_items},\"workers\":{workers}}}"
            ),
            TraceEvent::GuardTrip { reason } => format!(
                "{{\"seq\":{seq},\"ev\":\"guard\",\"reason\":{}}}",
                chasekit_core::display::json_string(reason.keyword())
            ),
        };
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Fans one event stream out to several sinks (e.g. `--trace` and
/// `--metrics` together).
pub struct MultiSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl MultiSink {
    /// A sink forwarding to every sink in `sinks`, in order.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        MultiSink { sinks }
    }
}

impl TraceSink for MultiSink {
    fn record(&mut self, seq: u64, event: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.record(seq, event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// A periodic progress report, produced on the guard-poll cadence of a
/// running machine when a progress callback is installed.
#[derive(Debug, Clone)]
pub struct ProgressReport {
    /// Applications performed so far.
    pub applications: u64,
    /// Current instance size.
    pub atoms: usize,
    /// Pending (not yet considered) triggers.
    pub pending: usize,
    /// Approximate resident bytes of the machine.
    pub approx_bytes: usize,
    /// Seconds since the run (or resume) started.
    pub elapsed_secs: f64,
    /// Applications per second over the whole run so far.
    pub apps_per_sec: f64,
}

/// The machine-side progress meter: interval, clock, and callback. Lives
/// outside the deterministic core — it reads the wall clock, but only in
/// the guard-poll blocks, and never writes machine state.
pub(crate) struct ProgressMeter {
    every: std::time::Duration,
    started: std::time::Instant,
    last: std::time::Instant,
    base_applications: u64,
    callback: Box<dyn FnMut(&ProgressReport) + Send>,
}

impl std::fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMeter").field("every", &self.every).finish()
    }
}

impl ProgressMeter {
    pub(crate) fn new(
        every: std::time::Duration,
        base_applications: u64,
        callback: Box<dyn FnMut(&ProgressReport) + Send>,
    ) -> Self {
        let now = std::time::Instant::now();
        ProgressMeter { every, started: now, last: now, base_applications, callback }
    }

    /// Fires the callback if the interval has elapsed since the last fire.
    pub(crate) fn poll(
        &mut self,
        applications: u64,
        atoms: usize,
        pending: usize,
        approx_bytes: usize,
    ) {
        let now = std::time::Instant::now();
        if now.duration_since(self.last) < self.every {
            return;
        }
        self.last = now;
        let elapsed_secs = now.duration_since(self.started).as_secs_f64();
        let done = applications.saturating_sub(self.base_applications);
        let apps_per_sec =
            if elapsed_secs > 0.0 { done as f64 / elapsed_secs } else { 0.0 };
        (self.callback)(&ProgressReport {
            applications,
            atoms,
            pending,
            approx_bytes,
            elapsed_secs,
            apps_per_sec,
        });
    }
}

/// The closed trace-line schema: for each event kind, the exact field set
/// (beyond `seq` and `ev`) and whether each field is a string.
const SCHEMA: &[(&str, &[(&str, bool)])] = &[
    ("admit", &[("rule", false)]),
    ("dedup", &[("rule", false)]),
    ("skip", &[("rule", false)]),
    ("apply", &[("app", false), ("rule", false), ("new", false), ("dup", false)]),
    ("atom", &[("id", false), ("pred", true), ("rule", false), ("app", false)]),
    ("stop", &[("reason", true), ("apps", false), ("atoms", false)]),
    ("ckpt-write", &[("apps", false), ("atoms", false), ("pending", false)]),
    ("ckpt-resume", &[("apps", false), ("atoms", false), ("pending", false)]),
    ("retract", &[("atoms", false), ("apps", false)]),
    ("rederive", &[("apps", false), ("atoms", false)]),
    ("edit", &[("adds", false), ("retracts", false)]),
    ("round-open", &[("round", false), ("frontier", false)]),
    ("round-close", &[("round", false), ("items", false), ("workers", false)]),
    ("guard", &[("reason", true)]),
];

/// Validates one JSONL trace line against the closed schema: the line must
/// be a flat JSON object, its `ev` must be a known kind, and its field set
/// must be *exactly* the kind's schema (unknown fields fail — this is the
/// guard against silent schema drift). Returns the event kind on success.
pub fn validate_trace_line(line: &str) -> Result<&'static str, String> {
    let fields = parse_flat_object(line)?;
    let mut seq_seen = false;
    let mut kind: Option<&str> = None;
    for (key, value) in &fields {
        match key.as_str() {
            "seq" => {
                if !matches!(value, JsonValue::Number) {
                    return Err("`seq` must be a number".into());
                }
                seq_seen = true;
            }
            "ev" => match value {
                JsonValue::String(s) => kind = Some(s),
                JsonValue::Number => return Err("`ev` must be a string".into()),
            },
            _ => {}
        }
    }
    if !seq_seen {
        return Err("missing `seq` field".into());
    }
    let kind = kind.ok_or("missing `ev` field")?;
    let (schema_kind, expected) = SCHEMA
        .iter()
        .find(|(k, _)| *k == kind)
        .ok_or_else(|| format!("unknown event kind {kind:?}"))?;
    for (key, value) in &fields {
        if key == "seq" || key == "ev" {
            continue;
        }
        let Some((_, is_string)) = expected.iter().find(|(k, _)| k == key) else {
            return Err(format!("unknown field {key:?} on event kind {kind:?}"));
        };
        let got_string = matches!(value, JsonValue::String(_));
        if got_string != *is_string {
            return Err(format!(
                "field {key:?} on {kind:?} must be a {}",
                if *is_string { "string" } else { "number" }
            ));
        }
    }
    for (key, _) in *expected {
        if !fields.iter().any(|(k, _)| k == key) {
            return Err(format!("missing field {key:?} on event kind {kind:?}"));
        }
    }
    Ok(schema_kind)
}

/// A scalar value in a flat trace object. The number's value is validated
/// at parse time but not retained — the schema only checks types.
enum JsonValue {
    Number,
    String(String),
}

/// Parses a single-line flat JSON object of string/number values. Minimal
/// by design (no nesting, no floats, no escapes beyond `\"` and `\\`) —
/// exactly the grammar the trace writer emits, so anything fancier is
/// already schema drift.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("line is not a JSON object")?;
    let mut fields = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        match chars.next() {
            None => break,
            Some('"') => {}
            Some(c) => return Err(format!("expected `\"` to open a key, got {c:?}")),
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key {key:?}"));
        }
        // Value.
        let value = match chars.peek() {
            Some('"') => {
                chars.next();
                let mut v = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated string value".into()),
                        Some('\\') => match chars.next() {
                            Some('"') => v.push('"'),
                            Some('\\') => v.push('\\'),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some('"') => break,
                        Some(c) => v.push(c),
                    }
                }
                JsonValue::String(v)
            }
            _ => {
                let mut digits = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        digits.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let _: u64 =
                    digits.parse().map_err(|_| format!("bad number after key {key:?}"))?;
                JsonValue::Number
            }
        };
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate field {key:?}"));
        }
        fields.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("expected `,` between fields, got {c:?}")),
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lines_pass_the_schema() {
        for line in [
            r#"{"seq":0,"ev":"admit","rule":1}"#,
            r#"{"seq":3,"ev":"dedup","rule":0}"#,
            r#"{"seq":4,"ev":"skip","rule":2}"#,
            r#"{"seq":5,"ev":"apply","app":1,"rule":0,"new":2,"dup":0}"#,
            r#"{"seq":6,"ev":"atom","id":7,"pred":"person","rule":0,"app":1}"#,
            r#"{"seq":9,"ev":"stop","reason":"applications","apps":12,"atoms":25}"#,
            r#"{"seq":9,"ev":"ckpt-write","apps":12,"atoms":25,"pending":3}"#,
            r#"{"seq":0,"ev":"ckpt-resume","apps":12,"atoms":25,"pending":3}"#,
            r#"{"seq":4,"ev":"retract","atoms":3,"apps":2}"#,
            r#"{"seq":4,"ev":"rederive","apps":1,"atoms":2}"#,
            r#"{"seq":7,"ev":"edit","adds":2,"retracts":1}"#,
            r#"{"seq":2,"ev":"round-open","round":1,"frontier":4}"#,
            r#"{"seq":8,"ev":"round-close","round":1,"items":6,"workers":4}"#,
            r#"{"seq":9,"ev":"guard","reason":"wall-clock"}"#,
        ] {
            validate_trace_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn unknown_fields_and_kinds_fail() {
        assert!(validate_trace_line(r#"{"seq":0,"ev":"admit","rule":1,"extra":2}"#).is_err());
        assert!(validate_trace_line(r#"{"seq":0,"ev":"frobnicate"}"#).is_err());
        assert!(validate_trace_line(r#"{"seq":0,"ev":"admit"}"#).is_err(), "missing field");
        assert!(validate_trace_line(r#"{"ev":"admit","rule":1}"#).is_err(), "missing seq");
        assert!(validate_trace_line(r#"{"seq":0,"ev":"admit","rule":"one"}"#).is_err());
        assert!(validate_trace_line(r#"not json"#).is_err());
        assert!(
            validate_trace_line(r#"{"seq":0,"ev":"admit","rule":1,"rule":1}"#).is_err(),
            "duplicate field"
        );
    }

    #[test]
    fn core_seq_counts_core_events() {
        let stats = ChaseStats {
            applications: 3,
            atoms_added: 5,
            duplicate_atoms: 9,
            triggers_enqueued: 7,
            triggers_deduped: 2,
            satisfied_skips: 1,
            nulls_minted: 4,
        };
        // duplicate_atoms and nulls_minted do not produce events.
        assert_eq!(core_seq(&stats), 3 + 5 + 7 + 2 + 1);
    }
}
