//! Conjunctive-query answering over chase results.
//!
//! The point of computing universal models: a Boolean conjunctive query is
//! *certain* (true in every model of `D ∧ Σ`) iff it maps homomorphically
//! into a universal model — i.e. into a terminating chase result. For
//! non-Boolean queries, the certain answers are the answer tuples that
//! contain no nulls.
//!
//! These helpers require a **saturated** chase result; they refuse partial
//! (budget-exhausted) instances, because a partial instance can only prove
//! positive answers, not certain absence.

use std::ops::ControlFlow;

use chasekit_core::{
    for_each_hom, Atom, CoreError, FxHashSet, Instance, Program, Term, VarId,
};

use crate::chase::{chase, ChaseResult};
use crate::guard::{Budget, StopReason};
use crate::variant::ChaseVariant;

/// A conjunctive query: a conjunction of atoms over query variables, with a
/// designated tuple of answer variables.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    var_count: usize,
    answer_vars: Vec<VarId>,
}

impl ConjunctiveQuery {
    /// Builds a query from atoms (variables indexed densely from 0).
    ///
    /// `answer_vars` selects the output tuple; empty means Boolean.
    pub fn new(atoms: Vec<Atom>, var_count: usize, answer_vars: Vec<VarId>) -> Self {
        ConjunctiveQuery { atoms, var_count, answer_vars }
    }

    /// Parses a query from the rule syntax: the *body* of a rule whose head
    /// is the reserved predicate `ans(...)` listing the answer variables,
    /// e.g. `e(X, Y), e(Y, Z) -> ans(X, Z).` — resolved against an existing
    /// program's vocabulary (predicates must already be declared).
    pub fn parse(program: &mut Program, text: &str) -> Result<Self, CoreError> {
        let parsed = Program::parse(text)?;
        let rules = parsed.rules();
        if rules.len() != 1 {
            return Err(CoreError::Parse(chasekit_core::ParseError {
                line: 1,
                col: 1,
                message: "a query is exactly one rule with head predicate `ans`".into(),
            }));
        }
        let rule = &rules[0];
        if rule.head().len() != 1 || parsed.vocab.pred_name(rule.head()[0].pred) != "ans" {
            return Err(CoreError::Parse(chasekit_core::ParseError {
                line: 1,
                col: 1,
                message: "the query head must be a single `ans(...)` atom".into(),
            }));
        }

        // Remap predicates/constants into the target program's vocabulary.
        let mut atoms = Vec::with_capacity(rule.body().len());
        for atom in rule.body() {
            let name = parsed.vocab.pred_name(atom.pred);
            let pred = program.vocab.declare_pred(name, atom.arity())?;
            let args = atom
                .args
                .iter()
                .map(|t| match *t {
                    Term::Const(c) => {
                        Term::Const(program.vocab.intern_const(parsed.vocab.const_name(c)))
                    }
                    other => other,
                })
                .collect();
            atoms.push(Atom::new(pred, args));
        }
        let answer_vars = rule.head()[0]
            .args
            .iter()
            .map(|t| {
                t.as_var().ok_or_else(|| {
                    CoreError::Parse(chasekit_core::ParseError {
                        line: 1,
                        col: 1,
                        message: "answer positions must be variables".into(),
                    })
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ConjunctiveQuery { atoms, var_count: rule.var_count(), answer_vars })
    }

    /// All answer tuples over an instance (may contain nulls).
    pub fn all_answers(&self, instance: &Instance) -> Vec<Vec<Term>> {
        let mut seen: FxHashSet<Vec<Term>> = FxHashSet::default();
        let mut out = Vec::new();
        for_each_hom(&self.atoms, self.var_count, instance, None, None, &mut |s| {
            let tuple = s.project(&self.answer_vars);
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
            ControlFlow::Continue(())
        });
        out
    }

    /// Whether the Boolean query holds in the instance.
    pub fn holds_in(&self, instance: &Instance) -> bool {
        !for_each_hom(&self.atoms, self.var_count, instance, None, None, &mut |_| {
            ControlFlow::Break(())
        })
    }
}

/// Errors of certain-answer computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The chase did not terminate within budget: certain answers cannot be
    /// computed from a partial universal model.
    ChaseDidNotTerminate,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ChaseDidNotTerminate => {
                write!(f, "the chase did not terminate within the budget")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Certain answers of a CQ over `D ∧ Σ`: chase, then keep only null-free
/// answer tuples.
pub fn certain_answers(
    program: &Program,
    database: Instance,
    query: &ConjunctiveQuery,
    budget: &Budget,
) -> Result<Vec<Vec<Term>>, QueryError> {
    let ChaseResult { outcome, instance, .. } =
        chase(program, ChaseVariant::Restricted, database, budget);
    if outcome != StopReason::Saturated {
        return Err(QueryError::ChaseDidNotTerminate);
    }
    let mut answers: Vec<Vec<Term>> = query
        .all_answers(&instance)
        .into_iter()
        .filter(|tuple| tuple.iter().all(|t| t.is_const()))
        .collect();
    answers.sort();
    Ok(answers)
}

/// Certain truth of a Boolean CQ.
pub fn certainly_holds(
    program: &Program,
    database: Instance,
    query: &ConjunctiveQuery,
    budget: &Budget,
) -> Result<bool, QueryError> {
    let ChaseResult { outcome, instance, .. } =
        chase(program, ChaseVariant::Restricted, database, budget);
    if outcome != StopReason::Saturated {
        return Err(QueryError::ChaseDidNotTerminate);
    }
    Ok(query.holds_in(&instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(program: &Program) -> Instance {
        Instance::from_atoms(program.facts().iter().cloned())
    }

    #[test]
    fn certain_answers_over_a_terminating_ontology() {
        let mut p = Program::parse(
            "emp(ada). emp(grace).
             emp(X) -> dept(X, D).
             dept(X, D) -> unit(D).",
        )
        .unwrap();
        let q = ConjunctiveQuery::parse(&mut p, "dept(X, D) -> ans(X).").unwrap();
        let answers = certain_answers(&p, db(&p), &q, &Budget::default()).unwrap();
        // Each employee certainly has a department; D itself is a null and
        // is projected away.
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn null_valued_tuples_are_not_certain() {
        let mut p = Program::parse("emp(ada). emp(X) -> dept(X, D).").unwrap();
        let q = ConjunctiveQuery::parse(&mut p, "dept(X, D) -> ans(D).").unwrap();
        let answers = certain_answers(&p, db(&p), &q, &Budget::default()).unwrap();
        assert!(answers.is_empty(), "the department id is a null, not a certain answer");
        // But the Boolean projection is certain.
        let b = ConjunctiveQuery::parse(&mut p, "dept(X, D) -> ans().").unwrap();
        assert!(certainly_holds(&p, db(&p), &b, &Budget::default()).unwrap());
    }

    #[test]
    fn join_queries_follow_nulls() {
        let mut p = Program::parse(
            "person(bob).
             person(X) -> father(X, Y).
             father(X, Y) -> person2(Y).",
        )
        .unwrap();
        // Is there someone with a father who is a person2? (Joins through
        // the null.)
        let q = ConjunctiveQuery::parse(&mut p, "father(X, Y), person2(Y) -> ans(X).").unwrap();
        let answers = certain_answers(&p, db(&p), &q, &Budget::default()).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn non_terminating_chase_is_refused() {
        let mut p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        let q = ConjunctiveQuery::parse(&mut p, "p(X, Y) -> ans(X).").unwrap();
        let err = certain_answers(&p, db(&p), &q, &Budget::applications(50)).unwrap_err();
        assert_eq!(err, QueryError::ChaseDidNotTerminate);
    }

    #[test]
    fn query_parse_errors() {
        let mut p = Program::parse("e(a, b).").unwrap();
        assert!(ConjunctiveQuery::parse(&mut p, "e(X, Y) -> wrong(X).").is_err());
        assert!(ConjunctiveQuery::parse(&mut p, "e(X, Y) -> ans(X). e(X, Y) -> ans(Y).").is_err());
        assert!(ConjunctiveQuery::parse(&mut p, "e(X, Y) -> ans(a).").is_err());
    }

    #[test]
    fn constants_in_queries_filter() {
        let mut p = Program::parse("e(a, b). e(b, c).").unwrap();
        let q = ConjunctiveQuery::parse(&mut p, "e(a, Y) -> ans(Y).").unwrap();
        let answers = certain_answers(&p, db(&p), &q, &Budget::default()).unwrap();
        assert_eq!(answers.len(), 1);
    }
}
