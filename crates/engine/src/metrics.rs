//! A metrics registry fed from the trace event stream.
//!
//! [`MetricsSink`] is a [`TraceSink`] that aggregates the core/lifecycle
//! events into a [`MetricsRegistry`]: global counters, gauges, histograms
//! with explicit buckets, and per-rule / per-predicate breakdowns. The
//! registry exports deterministic JSON ([`MetricsRegistry::to_json`]).
//!
//! Histograms observe **logical quantities only** (atoms per application,
//! frontier widths, work items per round) — never wall-clock durations.
//! Timing would make the registry nondeterministic and would require
//! clock reads inside the chase hot loop; the deterministic core stays
//! clock-free, and the progress reporter (which genuinely is about time)
//! lives separately. Every counter reconciles exactly with
//! [`ChaseStats`]: `chase.applications == stats.applications`,
//! `atoms.inserted == stats.atoms_added`, and so on — a property the test
//! suite enforces on random programs.
//!
//! [`ChaseStats`]: crate::ChaseStats

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use chasekit_core::display::json_string;
use chasekit_core::Program;

use crate::trace::{TraceEvent, TraceSink};

/// A histogram over a logical (unitless, monotonic) quantity with explicit
/// bucket bounds: `counts[i]` counts observations `<= bounds[i]`, and the
/// final slot counts overflows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of the buckets, ascending.
    pub bounds: Vec<u64>,
    /// One count per bound, plus a trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram with the given bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// Per-rule firing profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleMetrics {
    /// Triggers admitted to the queue for this rule.
    pub admitted: u64,
    /// Candidate triggers deduplicated away.
    pub deduped: u64,
    /// Triggers skipped as satisfied (restricted chase).
    pub skipped: u64,
    /// Applications of this rule.
    pub applied: u64,
    /// New atoms its applications produced.
    pub atoms_added: u64,
    /// Duplicate head images its applications produced.
    pub duplicates: u64,
}

/// The aggregated metrics of one (or more) chase runs.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    /// Monotonic counters, keyed by dotted name.
    counters: BTreeMap<String, u64>,
    /// Last-value gauges, keyed by dotted name.
    gauges: BTreeMap<String, u64>,
    /// Logical-quantity histograms, keyed by dotted name.
    histograms: BTreeMap<String, Histogram>,
    /// Firing profile per rule index.
    per_rule: Vec<RuleMetrics>,
    /// Rule labels (rendered rules), parallel to `per_rule`.
    rule_labels: Vec<String>,
    /// Atoms inserted per predicate id.
    per_pred: Vec<u64>,
    /// Predicate names, parallel to `per_pred`.
    pred_labels: Vec<String>,
}

/// Bucket bounds for atoms-per-application (head sizes are small).
const APPLY_BUCKETS: &[u64] = &[0, 1, 2, 4, 8];
/// Bucket bounds for frontier widths and work items (grow with the run).
const WIDTH_BUCKETS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096];

impl MetricsRegistry {
    /// An empty registry labelled for `program`'s rules and predicates.
    pub fn new(program: &Program) -> Self {
        let rule_labels = program
            .rules()
            .iter()
            .map(|r| chasekit_core::display::rule_to_string(r, &program.vocab))
            .collect::<Vec<_>>();
        let pred_labels = (0..program.vocab.pred_count())
            .map(|i| program.vocab.pred_name(chasekit_core::PredId(i as u32)).to_string())
            .collect::<Vec<_>>();
        let mut histograms = BTreeMap::new();
        histograms.insert("apply.new_atoms".to_string(), Histogram::new(APPLY_BUCKETS));
        histograms.insert("round.frontier".to_string(), Histogram::new(WIDTH_BUCKETS));
        histograms.insert("round.work_items".to_string(), Histogram::new(WIDTH_BUCKETS));
        MetricsRegistry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms,
            per_rule: vec![RuleMetrics::default(); rule_labels.len()],
            rule_labels,
            per_pred: vec![0; pred_labels.len()],
            pred_labels,
        }
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Observes a value into a named histogram, creating it with `bounds`
    /// if missing.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The per-rule firing profiles, in rule order.
    pub fn per_rule(&self) -> &[RuleMetrics] {
        &self.per_rule
    }

    /// Atoms inserted per predicate id.
    pub fn per_pred(&self) -> &[u64] {
        &self.per_pred
    }

    fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::TriggerAdmitted { rule } => {
                self.inc("triggers.admitted", 1);
                if let Some(r) = self.per_rule.get_mut(*rule) {
                    r.admitted += 1;
                }
            }
            TraceEvent::TriggerDeduped { rule } => {
                self.inc("triggers.deduped", 1);
                if let Some(r) = self.per_rule.get_mut(*rule) {
                    r.deduped += 1;
                }
            }
            TraceEvent::TriggerSkipped { rule } => {
                self.inc("triggers.skipped", 1);
                if let Some(r) = self.per_rule.get_mut(*rule) {
                    r.skipped += 1;
                }
            }
            TraceEvent::Applied { rule, new_atoms, duplicates, .. } => {
                self.inc("chase.applications", 1);
                self.inc("atoms.duplicates", *duplicates as u64);
                self.observe("apply.new_atoms", APPLY_BUCKETS, *new_atoms as u64);
                if let Some(r) = self.per_rule.get_mut(*rule) {
                    r.applied += 1;
                    r.atoms_added += *new_atoms as u64;
                    r.duplicates += *duplicates as u64;
                }
            }
            TraceEvent::AtomInserted { pred, .. } => {
                self.inc("atoms.inserted", 1);
                if let Some(p) = self.per_pred.get_mut(*pred as usize) {
                    *p += 1;
                }
            }
            TraceEvent::Stop { reason, applications, atoms } => {
                self.inc(&format!("stops.{}", reason.keyword()), 1);
                self.set_gauge("final.applications", *applications);
                self.set_gauge("final.atoms", *atoms as u64);
            }
            TraceEvent::CheckpointWrite { .. } => self.inc("checkpoint.writes", 1),
            TraceEvent::CheckpointResume { .. } => self.inc("checkpoint.resumes", 1),
            TraceEvent::RoundOpen { frontier, .. } => {
                self.inc("rounds.opened", 1);
                self.observe("round.frontier", WIDTH_BUCKETS, *frontier as u64);
            }
            TraceEvent::RoundClose { work_items, .. } => {
                self.observe("round.work_items", WIDTH_BUCKETS, *work_items as u64);
            }
            TraceEvent::GuardTrip { reason } => {
                self.inc(&format!("guard.trips.{}", reason.keyword()), 1);
            }
            TraceEvent::Retract { atoms, apps } => {
                self.inc("update.retractions", 1);
                self.inc("update.overdeleted_atoms", *atoms as u64);
                self.inc("update.invalidated_apps", *apps as u64);
            }
            TraceEvent::Rederive { apps, atoms } => {
                self.inc("update.rederived_apps", *apps as u64);
                self.inc("update.restored_atoms", *atoms as u64);
            }
            TraceEvent::EditApply { adds, retracts } => {
                self.inc("update.edits.adds", *adds as u64);
                self.inc("update.edits.retracts", *retracts as u64);
            }
        }
    }

    /// Deterministic JSON export: counters and gauges sorted by name,
    /// histograms with explicit bounds, per-rule and per-predicate tables
    /// in program order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");

        out.push_str("  \"counters\": {");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k.as_str(), v.to_string())));
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (k.as_str(), v.to_string())));
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        let rendered = self.histograms.iter().map(|(k, h)| {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            (
                k.as_str(),
                format!(
                    "{{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                    bounds.join(", "),
                    counts.join(", "),
                    h.sum,
                    h.count
                ),
            )
        });
        push_map(&mut out, rendered);
        out.push_str("},\n");

        out.push_str("  \"per_rule\": [");
        for (i, (r, label)) in self.per_rule.iter().zip(&self.rule_labels).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {i}, \"label\": {}, \"admitted\": {}, \"deduped\": {}, \
                 \"skipped\": {}, \"applied\": {}, \"atoms_added\": {}, \"duplicates\": {}}}",
                json_string(label),
                r.admitted,
                r.deduped,
                r.skipped,
                r.applied,
                r.atoms_added,
                r.duplicates
            ));
        }
        if !self.per_rule.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"per_predicate\": [");
        for (i, (count, label)) in self.per_pred.iter().zip(&self.pred_labels).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"predicate\": {}, \"atoms_inserted\": {count}}}",
                json_string(label)
            ));
        }
        if !self.per_pred.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {v}", json_string(k)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// A [`TraceSink`] that aggregates events into a shared
/// [`MetricsRegistry`]. The registry is behind an `Arc<Mutex<_>>` so the
/// caller keeps a handle while the machine owns the sink.
pub struct MetricsSink {
    registry: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsSink {
    /// A sink over a fresh registry labelled for `program`.
    pub fn new(program: &Program) -> Self {
        MetricsSink { registry: Arc::new(Mutex::new(MetricsRegistry::new(program))) }
    }

    /// A handle on the registry (readable after the run).
    pub fn registry(&self) -> Arc<Mutex<MetricsRegistry>> {
        Arc::clone(&self.registry)
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, _seq: u64, event: &TraceEvent) {
        self.registry.lock().unwrap().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1045);
    }

    #[test]
    fn registry_json_is_deterministic_and_sorted() {
        let p = Program::parse("p(a). p(X) -> q(X, Y).").unwrap();
        let mut r = MetricsRegistry::new(&p);
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.set_gauge("final.atoms", 7);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        let a = json.find("\"a.first\"").unwrap();
        let z = json.find("\"z.last\"").unwrap();
        assert!(a < z, "counters must be name-sorted");
        assert!(json.contains("\"per_rule\""));
        assert!(json.contains("p(X) -> q(X, Y)."));
    }

    #[test]
    fn sink_aggregates_events() {
        let p = Program::parse("p(a). p(X) -> q(X, Y).").unwrap();
        let sink = MetricsSink::new(&p);
        let registry = sink.registry();
        let mut sink: Box<dyn TraceSink> = Box::new(sink);
        sink.record(0, &TraceEvent::TriggerAdmitted { rule: 0 });
        sink.record(1, &TraceEvent::Applied { app: 0, rule: 0, new_atoms: 1, duplicates: 0 });
        sink.record(2, &TraceEvent::AtomInserted { atom: 1, pred: 1, rule: 0, app: 0 });
        let r = registry.lock().unwrap();
        assert_eq!(r.counter("triggers.admitted"), 1);
        assert_eq!(r.counter("chase.applications"), 1);
        assert_eq!(r.counter("atoms.inserted"), 1);
        assert_eq!(r.per_rule()[0].applied, 1);
        assert_eq!(r.per_pred()[1], 1);
        assert_eq!(r.histogram("apply.new_atoms").unwrap().count, 1);
    }
}
