//! Property-based tests for the core crate: parser robustness and
//! round-trips, the homomorphism matcher against a brute-force oracle, and
//! tombstone retraction over the interned instance storage (including an
//! end-to-end DRed pass through the engine's update path).

use proptest::prelude::*;

use chasekit_core::display::program_to_string;
use chasekit_core::{
    find_all_homs, Atom, AtomId, ConstId, Instance, PredId, Program, Substitution, Term, VarId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = Program::parse(&input);
    }

    /// The parser never panics on "almost valid" rule-shaped input.
    #[test]
    fn parser_never_panics_on_rule_shaped_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("Q".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("->".to_string()),
                Just(".".to_string()),
                Just("'a b'".to_string()),
                Just("_".to_string()),
                Just("%c\n".to_string()),
            ],
            0..40,
        )
    ) {
        let input = tokens.join(" ");
        let _ = Program::parse(&input);
    }

    /// Pretty-printing a parsed program and re-parsing yields the same
    /// program (fixpoint after one round trip).
    #[test]
    fn display_parse_roundtrip_is_a_fixpoint(
        // Generate tiny random programs textually from safe fragments.
        rules in proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 1..5)
    ) {
        let preds = ["alpha", "beta", "gamma"];
        let mut src = String::new();
        for (b, h, v) in rules {
            src.push_str(&format!(
                "{}(X{v}, Y) -> {}(Y, Z{v}).\n",
                preds[b], preds[h]
            ));
        }
        let p1 = Program::parse(&src).unwrap();
        let text1 = program_to_string(&p1);
        let p2 = Program::parse(&text1).unwrap();
        let text2 = program_to_string(&p2);
        prop_assert_eq!(text1, text2);
    }
}

/// Brute-force homomorphism enumeration: try every assignment of variables
/// to instance terms.
fn oracle_homs(
    patterns: &[Atom],
    var_count: usize,
    instance: &Instance,
) -> Vec<Vec<Option<Term>>> {
    let mut universe: Vec<Term> = instance.terms();
    universe.sort();
    let mut results = Vec::new();
    let mut assignment: Vec<Option<Term>> = vec![None; var_count];

    fn satisfied(patterns: &[Atom], assignment: &[Option<Term>], instance: &Instance) -> bool {
        patterns.iter().all(|p| {
            let image = p.map_args(|t| match t {
                Term::Var(v) => assignment[v.index()].expect("total assignment"),
                other => other,
            });
            instance.contains(&image)
        })
    }

    fn recurse(
        i: usize,
        universe: &[Term],
        patterns: &[Atom],
        assignment: &mut Vec<Option<Term>>,
        instance: &Instance,
        results: &mut Vec<Vec<Option<Term>>>,
    ) {
        if i == assignment.len() {
            if satisfied(patterns, assignment, instance) {
                results.push(assignment.clone());
            }
            return;
        }
        for &t in universe {
            assignment[i] = Some(t);
            recurse(i + 1, universe, patterns, assignment, instance, results);
        }
        assignment[i] = None;
    }

    recurse(0, &universe, patterns, &mut assignment, instance, &mut results);
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The backtracking matcher finds exactly the homomorphisms the
    /// brute-force oracle finds (for patterns using every variable).
    #[test]
    fn matcher_matches_brute_force_oracle(
        facts in proptest::collection::vec((0u32..2, 0u32..3, 0u32..3), 1..8),
        pattern_spec in proptest::collection::vec((0u32..2, 0u32..2, 0u32..2), 1..3),
    ) {
        // Instance over two binary predicates and three constants.
        let instance = Instance::from_atoms(facts.iter().map(|&(p, a, b)| {
            Atom::new(PredId(p), vec![Term::Const(ConstId(a)), Term::Const(ConstId(b))])
        }));
        // Patterns over two variables.
        let patterns: Vec<Atom> = pattern_spec
            .iter()
            .map(|&(p, v1, v2)| {
                Atom::new(PredId(p), vec![Term::Var(VarId(v1)), Term::Var(VarId(v2))])
            })
            .collect();
        // Only compare when both variables occur (else the oracle
        // enumerates unconstrained variables the matcher leaves unbound).
        let uses_both = patterns.iter().any(|a| a.mentions(Term::Var(VarId(0))))
            && patterns.iter().any(|a| a.mentions(Term::Var(VarId(1))));
        prop_assume!(uses_both);

        let fast: Vec<Vec<Option<Term>>> = find_all_homs(&patterns, 2, &instance, None)
            .iter()
            .map(|s: &Substitution| vec![s.get(VarId(0)), s.get(VarId(1))])
            .collect();
        let slow = oracle_homs(&patterns, 2, &instance);

        let mut fast_sorted = fast;
        fast_sorted.sort();
        let mut slow_sorted = slow;
        slow_sorted.sort();
        prop_assert_eq!(fast_sorted, slow_sorted);
    }

    /// The oracle comparison on the interned arena store with *mixed
    /// arities*: predicate k has arity k+1, so atoms of different widths
    /// interleave in the shared term arena and the dedup table must
    /// distinguish them by slice content, not just predicate.
    #[test]
    fn matcher_matches_oracle_on_mixed_arity_interned_store(
        facts in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, 0u32..3), 1..10),
        pattern_spec in proptest::collection::vec((0u32..3, 0u32..2, 0u32..2, 0u32..2), 1..3),
    ) {
        let instance = Instance::from_atoms(facts.iter().map(|&(p, a, b, c)| {
            let args: Vec<Term> = [a, b, c][..(p as usize + 1)]
                .iter()
                .map(|&x| Term::Const(ConstId(x)))
                .collect();
            Atom::new(PredId(p), args)
        }));
        let patterns: Vec<Atom> = pattern_spec
            .iter()
            .map(|&(p, v1, v2, v3)| {
                let args: Vec<Term> = [v1, v2, v3][..(p as usize + 1)]
                    .iter()
                    .map(|&v| Term::Var(VarId(v)))
                    .collect();
                Atom::new(PredId(p), args)
            })
            .collect();
        let uses_both = patterns.iter().any(|a| a.mentions(Term::Var(VarId(0))))
            && patterns.iter().any(|a| a.mentions(Term::Var(VarId(1))));
        prop_assume!(uses_both);

        let fast: Vec<Vec<Option<Term>>> = find_all_homs(&patterns, 2, &instance, None)
            .iter()
            .map(|s: &Substitution| vec![s.get(VarId(0)), s.get(VarId(1))])
            .collect();
        let slow = oracle_homs(&patterns, 2, &instance);

        let mut fast_sorted = fast;
        fast_sorted.sort();
        let mut slow_sorted = slow;
        slow_sorted.sort();
        prop_assert_eq!(fast_sorted, slow_sorted);
    }

    /// Postings consistency on the columnar indexes: every atom is
    /// reachable through every `(pred, pos, term)` posting it participates
    /// in, every posting entry resolves back to an atom that matches its
    /// key, postings stay in insertion (ascending-id) order — the
    /// enumeration-order invariant the deterministic merge relies on —
    /// and re-inserting every fact is a dedup no-op.
    #[test]
    fn postings_and_atoms_are_bidirectionally_consistent(
        facts in proptest::collection::vec((0u32..3, 0u32..4, 0u32..4, 0u32..4), 1..20),
    ) {
        let atoms: Vec<Atom> = facts
            .iter()
            .map(|&(p, a, b, c)| {
                let args: Vec<Term> = [a, b, c][..(p as usize + 1)]
                    .iter()
                    .map(|&x| Term::Const(ConstId(x)))
                    .collect();
                Atom::new(PredId(p), args)
            })
            .collect();
        let mut instance = Instance::from_atoms(atoms.iter().cloned());

        // Forward: every atom appears in its predicate extension and in
        // the posting for each of its (position, term) pairs.
        for (id, atom) in instance.iter() {
            prop_assert!(instance.with_pred(atom.pred).contains(&id));
            for (pos, &term) in atom.args.iter().enumerate() {
                let posting = instance.with_pred_pos_term(atom.pred, pos, term);
                prop_assert!(
                    posting.contains(&id),
                    "atom {:?} missing from posting ({:?}, {pos}, {:?})", id, atom.pred, term
                );
            }
        }

        // Backward: every posting entry resolves to an atom matching the
        // posting key, and postings are strictly ascending (insertion
        // order over dense ids).
        for p in 0u32..3 {
            let pred = PredId(p);
            let ext = instance.with_pred(pred);
            prop_assert!(ext.windows(2).all(|w| w[0] < w[1]));
            for &id in ext {
                prop_assert_eq!(instance.atom(id).pred, pred);
            }
            for pos in 0..(p as usize + 1) {
                for t in 0u32..4 {
                    let term = Term::Const(ConstId(t));
                    let posting = instance.with_pred_pos_term(pred, pos, term);
                    prop_assert!(posting.windows(2).all(|w| w[0] < w[1]));
                    for &id in posting {
                        let atom = instance.atom(id);
                        prop_assert_eq!(atom.pred, pred);
                        prop_assert_eq!(atom.args[pos], term);
                    }
                }
            }
        }

        // Dedup: re-inserting the same facts changes nothing.
        let before = instance.len();
        for atom in &atoms {
            let (_, fresh) = instance.insert(atom.clone());
            prop_assert!(!fresh);
        }
        prop_assert_eq!(instance.len(), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tombstone retraction repairs every index. After retracting a random
    /// subset of atoms: the slab keeps their interned content but dedup
    /// lookups no longer see them, every posting list holds exactly the
    /// live matching atoms in strictly ascending order, and re-inserting a
    /// retracted content allocates a fresh id (ids are never reused).
    #[test]
    fn postings_stay_consistent_after_random_retractions(
        facts in proptest::collection::vec((0u32..3, 0u32..4, 0u32..4, 0u32..4), 1..20),
        kills in proptest::collection::vec(0usize..1024, 1..10),
    ) {
        let atoms: Vec<Atom> = facts
            .iter()
            .map(|&(p, a, b, c)| {
                let args: Vec<Term> = [a, b, c][..(p as usize + 1)]
                    .iter()
                    .map(|&x| Term::Const(ConstId(x)))
                    .collect();
                Atom::new(PredId(p), args)
            })
            .collect();
        let mut instance = Instance::from_atoms(atoms.iter().cloned());
        let slab = instance.slab_len();

        let mut killed: Vec<AtomId> = Vec::new();
        for &k in &kills {
            let id = AtomId::from_index(k % slab);
            if instance.retract(id) {
                killed.push(id);
                // Retracting a tombstone is a no-op.
                prop_assert!(!instance.retract(id));
            }
        }

        // The slab never shrinks; the live count tracks the survivors.
        prop_assert_eq!(instance.slab_len(), slab);
        prop_assert_eq!(instance.len(), slab - killed.len());
        prop_assert_eq!(instance.iter().count(), instance.len());

        // Retracted atoms are invisible to dedup lookups, but their
        // interned content stays readable through the slab.
        for &id in &killed {
            prop_assert!(!instance.is_live(id));
            let gone = instance.atom(id).to_atom();
            prop_assert!(!instance.contains(&gone));
            prop_assert_eq!(instance.id_of(&gone), None);
        }

        // Forward: every survivor appears in its predicate extension and
        // in the posting for each of its (position, term) pairs.
        for (id, atom) in instance.iter() {
            prop_assert!(instance.is_live(id));
            prop_assert!(instance.with_pred(atom.pred).contains(&id));
            for (pos, &term) in atom.args.iter().enumerate() {
                prop_assert!(
                    instance.with_pred_pos_term(atom.pred, pos, term).contains(&id),
                    "survivor {:?} missing from posting ({:?}, {pos}, {:?})",
                    id, atom.pred, term
                );
            }
        }

        // Backward: postings list only live atoms matching their key, and
        // element removal preserved the strictly ascending order.
        for p in 0u32..3 {
            let pred = PredId(p);
            let ext = instance.with_pred(pred);
            prop_assert!(ext.windows(2).all(|w| w[0] < w[1]));
            for &id in ext {
                prop_assert!(instance.is_live(id));
                prop_assert_eq!(instance.atom(id).pred, pred);
            }
            for pos in 0..(p as usize + 1) {
                for t in 0u32..4 {
                    let term = Term::Const(ConstId(t));
                    let posting = instance.with_pred_pos_term(pred, pos, term);
                    prop_assert!(posting.windows(2).all(|w| w[0] < w[1]));
                    for &id in posting {
                        prop_assert!(instance.is_live(id));
                        let atom = instance.atom(id);
                        prop_assert_eq!(atom.pred, pred);
                        prop_assert_eq!(atom.args[pos], term);
                    }
                }
            }
        }

        // Ids are never reused: re-inserting a retracted content is fresh,
        // lands past the original slab, and becomes visible again.
        for &id in &killed {
            let atom = instance.atom(id).to_atom();
            let (new_id, fresh) = instance.insert(atom.clone());
            prop_assert!(fresh);
            prop_assert!(new_id.index() >= slab);
            prop_assert!(instance.contains(&atom));
            prop_assert_eq!(instance.id_of(&atom), Some(new_id));
        }
        prop_assert_eq!(instance.len(), slab);
    }

    /// DRed retraction never strands a survivor. After chasing a random
    /// database and retracting random base facts, every live atom without
    /// a DAG creator is a surviving base fact, every surviving base fact is
    /// still live, and the engine's `check_support` audit (live parents,
    /// acyclic derivations) passes — under all three chase variants, both
    /// right after the retractions and after the completion chase drains
    /// any re-opened work.
    #[test]
    fn retraction_leaves_no_unsupported_survivors(
        p_facts in proptest::collection::vec((0u32..3, 0u32..3), 1..6),
        q_facts in proptest::collection::vec(0u32..3, 0..3),
        kills in proptest::collection::vec(0usize..1024, 1..4),
    ) {
        use chasekit_engine::{check_support, Budget, ChaseConfig, ChaseMachine, ChaseVariant};

        // q(Y) is both derivable and (sometimes) a base fact, so kills can
        // exercise the restoration path; the existential keeps nulls in
        // the cone.
        let text = "p(X, Y) -> q(Y). q(X) -> r(X, Z). r(X, Y), q(X) -> s(X).";
        let variants =
            [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted];
        for variant in variants {
            let mut program = Program::parse(text).unwrap();
            let p = program.vocab.pred("p").unwrap();
            let q = program.vocab.pred("q").unwrap();
            for &(a, b) in &p_facts {
                let ca = Term::Const(program.vocab.intern_const(&format!("c{a}")));
                let cb = Term::Const(program.vocab.intern_const(&format!("c{b}")));
                program.add_fact(Atom::new(p, vec![ca, cb])).unwrap();
            }
            for &a in &q_facts {
                let ca = Term::Const(program.vocab.intern_const(&format!("c{a}")));
                program.add_fact(Atom::new(q, vec![ca])).unwrap();
            }
            let base: Vec<Atom> = program.facts().to_vec();
            let mut survivors: Vec<Atom> = Vec::new();
            for fact in &base {
                if !survivors.contains(fact) {
                    survivors.push(fact.clone());
                }
            }

            let initial = Instance::from_atoms(base.iter().cloned());
            let cfg = ChaseConfig::of(variant).with_derivation();
            let mut machine = ChaseMachine::new(&program, cfg, initial);
            machine.run(&Budget::applications(2_000));

            let mut tried: Vec<Atom> = Vec::new();
            for &k in &kills {
                let target = base[k % base.len()].clone();
                // A content retracted once may come back as a *derived*
                // atom (restoration); retracting it again is then the
                // documented NotABaseFact error, so each content is
                // retracted at most once.
                if tried.contains(&target) {
                    continue;
                }
                tried.push(target.clone());
                machine.retract_fact(&target).unwrap();
                if let Some(at) = survivors.iter().position(|f| *f == target) {
                    survivors.remove(at);
                }
            }

            // Audit right after the retractions, then again once the
            // completion chase has drained re-opened restricted skips.
            for phase in ["after retraction", "after completion"] {
                check_support(machine.instance(), machine.derivation())
                    .map_err(|e| TestCaseError::fail(format!("{variant:?} {phase}: {e}")))?;
                for (id, atom) in machine.instance().iter() {
                    if machine.derivation().creator_of(id).is_none() {
                        prop_assert!(
                            survivors.contains(&atom.to_atom()),
                            "{variant:?} {phase}: creator-less atom {:?} is not a \
                             surviving base fact",
                            atom.to_atom()
                        );
                    }
                }
                for fact in &survivors {
                    prop_assert!(
                        machine.instance().contains(fact),
                        "{variant:?} {phase}: surviving base fact {fact:?} vanished"
                    );
                }
                if phase == "after retraction" {
                    let total = machine.stats().applications + 2_000;
                    machine.run(&Budget::applications(total));
                }
            }
        }
    }
}
