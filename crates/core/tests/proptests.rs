//! Property-based tests for the core crate: parser robustness and
//! round-trips, and the homomorphism matcher against a brute-force oracle.

use proptest::prelude::*;

use chasekit_core::display::program_to_string;
use chasekit_core::{
    find_all_homs, Atom, ConstId, Instance, PredId, Program, Substitution, Term, VarId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = Program::parse(&input);
    }

    /// The parser never panics on "almost valid" rule-shaped input.
    #[test]
    fn parser_never_panics_on_rule_shaped_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("Q".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("->".to_string()),
                Just(".".to_string()),
                Just("'a b'".to_string()),
                Just("_".to_string()),
                Just("%c\n".to_string()),
            ],
            0..40,
        )
    ) {
        let input = tokens.join(" ");
        let _ = Program::parse(&input);
    }

    /// Pretty-printing a parsed program and re-parsing yields the same
    /// program (fixpoint after one round trip).
    #[test]
    fn display_parse_roundtrip_is_a_fixpoint(
        // Generate tiny random programs textually from safe fragments.
        rules in proptest::collection::vec((0usize..3, 0usize..3, 0usize..3), 1..5)
    ) {
        let preds = ["alpha", "beta", "gamma"];
        let mut src = String::new();
        for (b, h, v) in rules {
            src.push_str(&format!(
                "{}(X{v}, Y) -> {}(Y, Z{v}).\n",
                preds[b], preds[h]
            ));
        }
        let p1 = Program::parse(&src).unwrap();
        let text1 = program_to_string(&p1);
        let p2 = Program::parse(&text1).unwrap();
        let text2 = program_to_string(&p2);
        prop_assert_eq!(text1, text2);
    }
}

/// Brute-force homomorphism enumeration: try every assignment of variables
/// to instance terms.
fn oracle_homs(
    patterns: &[Atom],
    var_count: usize,
    instance: &Instance,
) -> Vec<Vec<Option<Term>>> {
    let mut universe: Vec<Term> = instance.terms();
    universe.sort();
    let mut results = Vec::new();
    let mut assignment: Vec<Option<Term>> = vec![None; var_count];

    fn satisfied(patterns: &[Atom], assignment: &[Option<Term>], instance: &Instance) -> bool {
        patterns.iter().all(|p| {
            let image = p.map_args(|t| match t {
                Term::Var(v) => assignment[v.index()].expect("total assignment"),
                other => other,
            });
            instance.contains(&image)
        })
    }

    fn recurse(
        i: usize,
        universe: &[Term],
        patterns: &[Atom],
        assignment: &mut Vec<Option<Term>>,
        instance: &Instance,
        results: &mut Vec<Vec<Option<Term>>>,
    ) {
        if i == assignment.len() {
            if satisfied(patterns, assignment, instance) {
                results.push(assignment.clone());
            }
            return;
        }
        for &t in universe {
            assignment[i] = Some(t);
            recurse(i + 1, universe, patterns, assignment, instance, results);
        }
        assignment[i] = None;
    }

    recurse(0, &universe, patterns, &mut assignment, instance, &mut results);
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The backtracking matcher finds exactly the homomorphisms the
    /// brute-force oracle finds (for patterns using every variable).
    #[test]
    fn matcher_matches_brute_force_oracle(
        facts in proptest::collection::vec((0u32..2, 0u32..3, 0u32..3), 1..8),
        pattern_spec in proptest::collection::vec((0u32..2, 0u32..2, 0u32..2), 1..3),
    ) {
        // Instance over two binary predicates and three constants.
        let instance = Instance::from_atoms(facts.iter().map(|&(p, a, b)| {
            Atom::new(PredId(p), vec![Term::Const(ConstId(a)), Term::Const(ConstId(b))])
        }));
        // Patterns over two variables.
        let patterns: Vec<Atom> = pattern_spec
            .iter()
            .map(|&(p, v1, v2)| {
                Atom::new(PredId(p), vec![Term::Var(VarId(v1)), Term::Var(VarId(v2))])
            })
            .collect();
        // Only compare when both variables occur (else the oracle
        // enumerates unconstrained variables the matcher leaves unbound).
        let uses_both = patterns.iter().any(|a| a.mentions(Term::Var(VarId(0))))
            && patterns.iter().any(|a| a.mentions(Term::Var(VarId(1))));
        prop_assume!(uses_both);

        let fast: Vec<Vec<Option<Term>>> = find_all_homs(&patterns, 2, &instance, None)
            .iter()
            .map(|s: &Substitution| vec![s.get(VarId(0)), s.get(VarId(1))])
            .collect();
        let slow = oracle_homs(&patterns, 2, &instance);

        let mut fast_sorted = fast;
        fast_sorted.sort();
        let mut slow_sorted = slow;
        slow_sorted.sort();
        prop_assert_eq!(fast_sorted, slow_sorted);
    }

    /// The oracle comparison on the interned arena store with *mixed
    /// arities*: predicate k has arity k+1, so atoms of different widths
    /// interleave in the shared term arena and the dedup table must
    /// distinguish them by slice content, not just predicate.
    #[test]
    fn matcher_matches_oracle_on_mixed_arity_interned_store(
        facts in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, 0u32..3), 1..10),
        pattern_spec in proptest::collection::vec((0u32..3, 0u32..2, 0u32..2, 0u32..2), 1..3),
    ) {
        let instance = Instance::from_atoms(facts.iter().map(|&(p, a, b, c)| {
            let args: Vec<Term> = [a, b, c][..(p as usize + 1)]
                .iter()
                .map(|&x| Term::Const(ConstId(x)))
                .collect();
            Atom::new(PredId(p), args)
        }));
        let patterns: Vec<Atom> = pattern_spec
            .iter()
            .map(|&(p, v1, v2, v3)| {
                let args: Vec<Term> = [v1, v2, v3][..(p as usize + 1)]
                    .iter()
                    .map(|&v| Term::Var(VarId(v)))
                    .collect();
                Atom::new(PredId(p), args)
            })
            .collect();
        let uses_both = patterns.iter().any(|a| a.mentions(Term::Var(VarId(0))))
            && patterns.iter().any(|a| a.mentions(Term::Var(VarId(1))));
        prop_assume!(uses_both);

        let fast: Vec<Vec<Option<Term>>> = find_all_homs(&patterns, 2, &instance, None)
            .iter()
            .map(|s: &Substitution| vec![s.get(VarId(0)), s.get(VarId(1))])
            .collect();
        let slow = oracle_homs(&patterns, 2, &instance);

        let mut fast_sorted = fast;
        fast_sorted.sort();
        let mut slow_sorted = slow;
        slow_sorted.sort();
        prop_assert_eq!(fast_sorted, slow_sorted);
    }

    /// Postings consistency on the columnar indexes: every atom is
    /// reachable through every `(pred, pos, term)` posting it participates
    /// in, every posting entry resolves back to an atom that matches its
    /// key, postings stay in insertion (ascending-id) order — the
    /// enumeration-order invariant the deterministic merge relies on —
    /// and re-inserting every fact is a dedup no-op.
    #[test]
    fn postings_and_atoms_are_bidirectionally_consistent(
        facts in proptest::collection::vec((0u32..3, 0u32..4, 0u32..4, 0u32..4), 1..20),
    ) {
        let atoms: Vec<Atom> = facts
            .iter()
            .map(|&(p, a, b, c)| {
                let args: Vec<Term> = [a, b, c][..(p as usize + 1)]
                    .iter()
                    .map(|&x| Term::Const(ConstId(x)))
                    .collect();
                Atom::new(PredId(p), args)
            })
            .collect();
        let mut instance = Instance::from_atoms(atoms.iter().cloned());

        // Forward: every atom appears in its predicate extension and in
        // the posting for each of its (position, term) pairs.
        for (id, atom) in instance.iter() {
            prop_assert!(instance.with_pred(atom.pred).contains(&id));
            for (pos, &term) in atom.args.iter().enumerate() {
                let posting = instance.with_pred_pos_term(atom.pred, pos, term);
                prop_assert!(
                    posting.contains(&id),
                    "atom {:?} missing from posting ({:?}, {pos}, {:?})", id, atom.pred, term
                );
            }
        }

        // Backward: every posting entry resolves to an atom matching the
        // posting key, and postings are strictly ascending (insertion
        // order over dense ids).
        for p in 0u32..3 {
            let pred = PredId(p);
            let ext = instance.with_pred(pred);
            prop_assert!(ext.windows(2).all(|w| w[0] < w[1]));
            for &id in ext {
                prop_assert_eq!(instance.atom(id).pred, pred);
            }
            for pos in 0..(p as usize + 1) {
                for t in 0u32..4 {
                    let term = Term::Const(ConstId(t));
                    let posting = instance.with_pred_pos_term(pred, pos, term);
                    prop_assert!(posting.windows(2).all(|w| w[0] < w[1]));
                    for &id in posting {
                        let atom = instance.atom(id);
                        prop_assert_eq!(atom.pred, pred);
                        prop_assert_eq!(atom.args[pos], term);
                    }
                }
            }
        }

        // Dedup: re-inserting the same facts changes nothing.
        let before = instance.len();
        for atom in &atoms {
            let (_, fresh) = instance.insert(atom.clone());
            prop_assert!(!fresh);
        }
        prop_assert_eq!(instance.len(), before);
    }
}
