//! Error types for the core data model.

use std::fmt;

/// Errors raised while building or validating the core data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A predicate was used with an arity different from its declaration.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity it was declared with.
        declared: usize,
        /// Arity it was used with.
        used: usize,
    },
    /// A rule head uses a universal variable that does not occur in the body
    /// (violates TGD safety).
    UnsafeRule {
        /// Rule index or description for diagnostics.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// A rule has an empty body or an empty head.
    EmptyRule {
        /// Rule description for diagnostics.
        rule: String,
        /// Which side is empty: "body" or "head".
        side: &'static str,
    },
    /// A ground fact contains a variable.
    NonGroundFact {
        /// Fact description for diagnostics.
        fact: String,
    },
    /// A parse error with location information.
    Parse(ParseError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { predicate, declared, used } => write!(
                f,
                "predicate `{predicate}` declared with arity {declared} but used with arity {used}"
            ),
            CoreError::UnsafeRule { rule, variable } => write!(
                f,
                "unsafe rule {rule}: universal variable `{variable}` occurs in the head but not in the body"
            ),
            CoreError::EmptyRule { rule, side } => {
                write!(f, "rule {rule} has an empty {side}")
            }
            CoreError::NonGroundFact { fact } => {
                write!(f, "fact {fact} is not ground (contains a variable)")
            }
            CoreError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

/// A parse error with a 1-based source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            predicate: "p".into(),
            declared: 2,
            used: 3,
        };
        let s = e.to_string();
        assert!(s.contains("`p`") && s.contains('2') && s.contains('3'));

        let p = ParseError {
            line: 3,
            col: 14,
            message: "expected `)`".into(),
        };
        assert_eq!(p.to_string(), "parse error at 3:14: expected `)`");
    }

    #[test]
    fn parse_error_converts_into_core_error() {
        let p = ParseError {
            line: 1,
            col: 1,
            message: "boom".into(),
        };
        let c: CoreError = p.clone().into();
        assert_eq!(c, CoreError::Parse(p));
    }
}
