//! Instances: indexed, deduplicated stores of ground atoms.
//!
//! The chase spends nearly all its time matching rule bodies against the
//! instance, so the layout is built for that loop:
//!
//! * atoms are interned into a shared term arena — an atom is a
//!   `(PredId, args-range)` pair into one flat `Vec<Term>`, resolved to a
//!   zero-copy [`AtomRef`] view, so inserting or reading an atom never
//!   clones an argument vector;
//! * deduplication goes through an open-addressed hash-of-slice table
//!   ([`DedupTable`]) that compares candidate argument slices in place —
//!   no owned `Atom` keys, no per-probe allocation;
//! * `(predicate, position, term)` postings — the selective index the
//!   homomorphism matcher uses for bound positions — are columnar: a
//!   `Vec<PredIndex>` indexed directly by `PredId`, with one
//!   `FxHashMap<Term, Vec<AtomId>>` per argument position, so the hot
//!   lookup is an array index plus a single one-word hash probe instead
//!   of hashing a 3-tuple;
//! * per-null postings — what the guarded termination procedure uses to
//!   assemble "clouds" (all atoms over a given term set) — stay a map
//!   because null ids are sparse relative to atoms.
//!
//! Atom ids are dense and monotone: `AtomId(i)` was inserted before
//! `AtomId(j)` whenever `i < j`. The same holds for null ids. The
//! termination procedures rely on both orders as birth timestamps, and the
//! deterministic parallel merge relies on every posting list being in
//! insertion order.

use crate::atom::{Atom, AtomRef};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::ids::{AtomId, NullId, PredId};
use crate::term::Term;
use std::hash::{Hash, Hasher};

/// Columnar postings for a single predicate.
#[derive(Debug, Default, Clone)]
struct PredIndex {
    /// Ids of atoms over this predicate, in insertion order.
    ids: Vec<AtomId>,
    /// Per-position postings: `by_pos[pos][term]` lists the ids of atoms
    /// with `term` at argument position `pos`, in insertion order.
    by_pos: Vec<FxHashMap<Term, Vec<AtomId>>>,
}

/// Open-addressed dedup index from `(pred, args)` to [`AtomId`].
///
/// Keys live in the owning instance's arena; the table stores only
/// `(hash, id)` pairs and resolves collisions by comparing the candidate
/// atom's argument slice in place, so lookups never materialise an owned
/// `Atom`. Linear probing, power-of-two capacity, load factor ≤ 1/2.
#[derive(Debug, Default, Clone)]
struct DedupTable {
    /// `(hash, id + 1)` per slot; an `id + 1` of 0 marks an empty slot.
    slots: Vec<(u64, u32)>,
    len: usize,
}

impl DedupTable {
    /// Finds the id of an entry with this hash for which `eq` holds.
    ///
    /// `eq` receives a candidate atom index and must check full equality;
    /// the table only pre-filters on the stored 64-bit hash.
    #[inline]
    fn lookup(&self, hash: u64, mut eq: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, idp1) = self.slots[i];
            if idp1 == 0 {
                return None;
            }
            if h == hash {
                let id = (idp1 - 1) as usize;
                if eq(id) {
                    return Some(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a new entry; the caller must have checked it is absent.
    fn insert(&mut self, hash: u64, id: u32) {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].1 != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = (hash, id + 1);
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); cap]);
        let mask = cap - 1;
        for (h, idp1) in old {
            if idp1 == 0 {
                continue;
            }
            let mut i = (h as usize) & mask;
            while self.slots[i].1 != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = (h, idp1);
        }
    }
}

/// Hashes an atom's identity — predicate plus argument slice.
#[inline]
fn hash_parts(pred: PredId, args: &[Term]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.0);
    for t in args {
        t.hash(&mut h);
    }
    h.write_usize(args.len());
    h.finish()
}

/// An indexed, deduplicated set of ground atoms.
#[derive(Debug, Default, Clone)]
pub struct Instance {
    /// Predicate of atom `i`.
    preds: Vec<PredId>,
    /// Exclusive end of atom `i`'s argument range in `terms`; atom `i`
    /// spans `ends[i - 1]..ends[i]` (with an implicit 0 for `i == 0`).
    ends: Vec<u32>,
    /// The shared term arena all atoms' arguments live in.
    terms: Vec<Term>,
    dedup: DedupTable,
    /// Columnar postings, indexed directly by `PredId`.
    by_pred: Vec<PredIndex>,
    by_null: FxHashMap<NullId, Vec<AtomId>>,
    next_null: u32,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from ground atoms (e.g. a program's facts).
    ///
    /// # Panics
    ///
    /// Panics if any atom is not ground.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            assert!(a.is_ground(), "instance atoms must be ground");
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns its id and whether it was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the atom is not ground.
    #[inline]
    pub fn insert(&mut self, atom: Atom) -> (AtomId, bool) {
        self.insert_terms(atom.pred, &atom.args)
    }

    /// Inserts an atom given as predicate + argument slice; returns its id
    /// and whether it was new. The arguments are copied into the arena
    /// only if the atom is new, so callers can reuse one scratch buffer
    /// across insertions.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any argument is not ground.
    pub fn insert_terms(&mut self, pred: PredId, args: &[Term]) -> (AtomId, bool) {
        debug_assert!(
            args.iter().all(|t| t.is_ground()),
            "instance atoms must be ground"
        );
        let hash = hash_parts(pred, args);
        if let Some(i) = self.lookup(hash, pred, args) {
            return (AtomId::from_index(i), false);
        }
        let id = AtomId::from_index(self.preds.len());
        self.preds.push(pred);
        self.terms.extend_from_slice(args);
        self.ends.push(self.terms.len() as u32);
        self.dedup.insert(hash, id.0);
        for &t in args {
            if let Term::Null(n) = t {
                // Track the null high-water mark so fresh nulls never collide
                // with nulls imported via `from_atoms`.
                if n.0 >= self.next_null {
                    self.next_null = n.0 + 1;
                }
                let posting = self.by_null.entry(n).or_default();
                if posting.last() != Some(&id) {
                    posting.push(id);
                }
            }
        }
        let pi_idx = pred.index();
        if self.by_pred.len() <= pi_idx {
            self.by_pred.resize_with(pi_idx + 1, PredIndex::default);
        }
        let pi = &mut self.by_pred[pi_idx];
        pi.ids.push(id);
        if pi.by_pos.len() < args.len() {
            pi.by_pos.resize_with(args.len(), FxHashMap::default);
        }
        for (pos, &t) in args.iter().enumerate() {
            pi.by_pos[pos].entry(t).or_default().push(id);
        }
        (id, true)
    }

    /// Dedup probe: finds an existing atom equal to `(pred, args)`.
    #[inline]
    fn lookup(&self, hash: u64, pred: PredId, args: &[Term]) -> Option<usize> {
        let preds = &self.preds;
        let ends = &self.ends;
        let terms = &self.terms;
        self.dedup.lookup(hash, |i| {
            if preds[i] != pred {
                return false;
            }
            let start = if i == 0 { 0 } else { ends[i - 1] as usize };
            &terms[start..ends[i] as usize] == args
        })
    }

    /// Mints a fresh null, distinct from every null seen so far.
    pub fn fresh_null(&mut self) -> NullId {
        let n = NullId(self.next_null);
        self.next_null += 1;
        n
    }

    /// Number of nulls minted or imported.
    pub fn null_count(&self) -> usize {
        self.next_null as usize
    }

    /// Whether the instance contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.id_of(atom).is_some()
    }

    /// Looks up an atom's id.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.id_of_parts(atom.pred, &atom.args)
    }

    /// Looks up the id of an atom given as predicate + argument slice.
    pub fn id_of_parts(&self, pred: PredId, args: &[Term]) -> Option<AtomId> {
        self.lookup(hash_parts(pred, args), pred, args)
            .map(AtomId::from_index)
    }

    /// Resolves an id to a zero-copy view of its atom.
    #[inline]
    pub fn atom(&self, id: AtomId) -> AtomRef<'_> {
        let i = id.index();
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        AtomRef {
            pred: self.preds[i],
            args: &self.terms[start..self.ends[i] as usize],
        }
    }

    /// Number of atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the instance is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates over all atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, AtomRef<'_>)> {
        (0..self.len()).map(|i| {
            let id = AtomId::from_index(i);
            (id, self.atom(id))
        })
    }

    /// Ids of atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred
            .get(pred.index())
            .map(|p| p.ids.as_slice())
            .unwrap_or(&[])
    }

    /// Ids of atoms with `term` at `pos` of `pred`, in insertion order.
    #[inline]
    pub fn with_pred_pos_term(&self, pred: PredId, pos: usize, term: Term) -> &[AtomId] {
        self.by_pred
            .get(pred.index())
            .and_then(|p| p.by_pos.get(pos))
            .and_then(|m| m.get(&term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ids of atoms mentioning the given null, in insertion order
    /// (deduplicated).
    pub fn with_null(&self, null: NullId) -> &[AtomId] {
        self.by_null.get(&null).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All distinct terms of the atom set (order unspecified).
    pub fn terms(&self) -> Vec<Term> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for &t in &self.terms {
            if seen.insert(t) {
                out.push(t);
            }
        }
        out
    }
}

// The parallel-round chase shares instances read-only across worker
// threads; keep the store free of interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Instance>();
};

impl FromIterator<Atom> for Instance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Instance::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConstId;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        let (id1, new1) = inst.insert(atom(0, vec![c(0), c(1)]));
        let (id2, new2) = inst.insert(atom(0, vec![c(0), c(1)]));
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn ids_are_monotone_in_insertion_order() {
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        let (b, _) = inst.insert(atom(0, vec![c(1)]));
        assert!(a < b);
    }

    #[test]
    fn position_index_finds_atoms() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(0), c(2)]));
        inst.insert(atom(0, vec![c(3), c(1)]));
        inst.insert(atom(1, vec![c(0), c(1)]));
        assert_eq!(inst.with_pred_pos_term(PredId(0), 0, c(0)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(0), 1, c(1)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(1), 0, c(0)).len(), 1);
        assert_eq!(inst.with_pred_pos_term(PredId(2), 0, c(0)).len(), 0);
        assert_eq!(inst.with_pred(PredId(0)).len(), 3);
    }

    #[test]
    fn fresh_nulls_avoid_imported_ones() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(5)]));
        let fresh = inst.fresh_null();
        assert!(fresh.0 > 5);
        let fresh2 = inst.fresh_null();
        assert_ne!(fresh, fresh2);
    }

    #[test]
    fn null_postings_deduplicate_within_an_atom() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(0), n(0)]));
        inst.insert(atom(1, vec![n(0)]));
        assert_eq!(inst.with_null(NullId(0)).len(), 2);
    }

    #[test]
    fn terms_are_collected_once() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), n(1)]));
        inst.insert(atom(1, vec![c(0)]));
        let mut ts = inst.terms();
        ts.sort();
        assert_eq!(ts, vec![c(0), n(1)]);
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn non_ground_atoms_panic() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![Term::Var(crate::ids::VarId(0))]));
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = vec![atom(0, vec![c(0)]), atom(0, vec![c(1)])].into_iter().collect();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn atom_resolves_to_interned_view() {
        let mut inst = Instance::new();
        let a = atom(3, vec![c(0), n(1), c(2)]);
        let (id, _) = inst.insert(a.clone());
        let view = inst.atom(id);
        assert_eq!(view, a);
        assert_eq!(view.to_atom(), a);
        assert_eq!(view.arity(), 3);
    }

    #[test]
    fn insert_terms_matches_insert() {
        let mut inst = Instance::new();
        let (id1, new1) = inst.insert_terms(PredId(0), &[c(0), c(1)]);
        let (id2, new2) = inst.insert(atom(0, vec![c(0), c(1)]));
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(inst.id_of_parts(PredId(0), &[c(0), c(1)]), Some(id1));
        assert_eq!(inst.id_of_parts(PredId(0), &[c(1), c(0)]), None);
    }

    #[test]
    fn mixed_arity_same_pred_is_distinguished() {
        // The store doesn't enforce a schema: a predicate may appear at
        // several arities (datagen never does this, but dedup must not
        // conflate a tuple with its zero-extended sibling).
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        let (b, _) = inst.insert(atom(0, vec![c(0), c(0)]));
        assert_ne!(a, b);
        assert_eq!(inst.with_pred(PredId(0)).len(), 2);
    }

    #[test]
    fn dedup_survives_growth() {
        let mut inst = Instance::new();
        for i in 0..1000 {
            let (_, fresh) = inst.insert(atom(i % 7, vec![c(i), c(i / 3)]));
            assert!(fresh);
        }
        for i in 0..1000 {
            let (_, fresh) = inst.insert(atom(i % 7, vec![c(i), c(i / 3)]));
            assert!(!fresh, "atom {i} should already be present");
        }
        assert_eq!(inst.len(), 1000);
    }
}
