//! Instances: indexed, deduplicated stores of ground atoms.
//!
//! The chase spends nearly all its time matching rule bodies against the
//! instance, so the layout is built for that loop:
//!
//! * atoms are interned into a shared term arena — an atom is a
//!   `(PredId, args-range)` pair into one flat `Vec<Term>`, resolved to a
//!   zero-copy [`AtomRef`] view, so inserting or reading an atom never
//!   clones an argument vector;
//! * deduplication goes through an open-addressed hash-of-slice table
//!   ([`DedupTable`]) that compares candidate argument slices in place —
//!   no owned `Atom` keys, no per-probe allocation;
//! * `(predicate, position, term)` postings — the selective index the
//!   homomorphism matcher uses for bound positions — are columnar: a
//!   `Vec<PredIndex>` indexed directly by `PredId`, with one
//!   `FxHashMap<Term, Vec<AtomId>>` per argument position, so the hot
//!   lookup is an array index plus a single one-word hash probe instead
//!   of hashing a 3-tuple;
//! * per-null postings — what the guarded termination procedure uses to
//!   assemble "clouds" (all atoms over a given term set) — stay a map
//!   because null ids are sparse relative to atoms.
//!
//! Atom ids are dense and monotone: `AtomId(i)` was inserted before
//! `AtomId(j)` whenever `i < j`. The same holds for null ids. The
//! termination procedures rely on both orders as birth timestamps, and the
//! deterministic parallel merge relies on every posting list being in
//! insertion order.

use crate::atom::{Atom, AtomRef};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::ids::{AtomId, NullId, PredId};
use crate::term::Term;
use std::hash::{Hash, Hasher};

/// Columnar postings for a single predicate.
#[derive(Debug, Default, Clone)]
struct PredIndex {
    /// Ids of atoms over this predicate, in insertion order.
    ids: Vec<AtomId>,
    /// Per-position postings: `by_pos[pos][term]` lists the ids of atoms
    /// with `term` at argument position `pos`, in insertion order.
    by_pos: Vec<FxHashMap<Term, Vec<AtomId>>>,
}

/// Open-addressed dedup index from `(pred, args)` to [`AtomId`].
///
/// Keys live in the owning instance's arena; the table stores only
/// `(hash, id)` pairs and resolves collisions by comparing the candidate
/// atom's argument slice in place, so lookups never materialise an owned
/// `Atom`. Linear probing, power-of-two capacity, load factor ≤ 1/2.
#[derive(Debug, Default, Clone)]
struct DedupTable {
    /// `(hash, id + 1)` per slot; an `id + 1` of 0 marks an empty slot.
    slots: Vec<(u64, u32)>,
    len: usize,
}

impl DedupTable {
    /// Finds the id of an entry with this hash for which `eq` holds.
    ///
    /// `eq` receives a candidate atom index and must check full equality;
    /// the table only pre-filters on the stored 64-bit hash.
    #[inline]
    fn lookup(&self, hash: u64, mut eq: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, idp1) = self.slots[i];
            if idp1 == 0 {
                return None;
            }
            if h == hash {
                let id = (idp1 - 1) as usize;
                if eq(id) {
                    return Some(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a new entry; the caller must have checked it is absent.
    fn insert(&mut self, hash: u64, id: u32) {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].1 != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = (hash, id + 1);
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); cap]);
        let mask = cap - 1;
        for (h, idp1) in old {
            if idp1 == 0 {
                continue;
            }
            let mut i = (h as usize) & mask;
            while self.slots[i].1 != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = (h, idp1);
        }
    }

    /// Removes the entry `(hash, id)` if present, using backward-shift
    /// deletion so probe chains stay intact without tombstone slots.
    fn remove(&mut self, hash: u64, id: u32) {
        if self.slots.is_empty() {
            return;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, idp1) = self.slots[i];
            if idp1 == 0 {
                return;
            }
            if h == hash && idp1 == id + 1 {
                break;
            }
            i = (i + 1) & mask;
        }
        self.slots[i] = (0, 0);
        self.len -= 1;
        // Backward-shift: any later entry in the same probe cluster whose
        // natural slot lies at or before the vacated slot moves into it.
        let mut j = (i + 1) & mask;
        loop {
            let (h, idp1) = self.slots[j];
            if idp1 == 0 {
                return;
            }
            let natural = (h as usize) & mask;
            let fill_dist = j.wrapping_sub(i) & mask;
            let probe_dist = j.wrapping_sub(natural) & mask;
            if probe_dist >= fill_dist {
                self.slots[i] = (h, idp1);
                self.slots[j] = (0, 0);
                i = j;
            }
            j = (j + 1) & mask;
        }
    }
}

/// Hashes an atom's identity — predicate plus argument slice.
#[inline]
fn hash_parts(pred: PredId, args: &[Term]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.0);
    for t in args {
        t.hash(&mut h);
    }
    h.write_usize(args.len());
    h.finish()
}

/// An indexed, deduplicated set of ground atoms.
///
/// Atoms can be **retracted** ([`Instance::retract`]): the slab entry is
/// tombstoned (its interned content stays readable through
/// [`Instance::atom`], so provenance structures holding old ids can still
/// resolve them), while the dedup table and every posting list are
/// repaired so lookups and the matcher only ever see live atoms. Ids are
/// never reused; re-inserting retracted content mints a fresh id.
#[derive(Debug, Default, Clone)]
pub struct Instance {
    /// Predicate of atom `i`.
    preds: Vec<PredId>,
    /// Exclusive end of atom `i`'s argument range in `terms`; atom `i`
    /// spans `ends[i - 1]..ends[i]` (with an implicit 0 for `i == 0`).
    ends: Vec<u32>,
    /// The shared term arena all atoms' arguments live in.
    terms: Vec<Term>,
    dedup: DedupTable,
    /// Columnar postings, indexed directly by `PredId`.
    by_pred: Vec<PredIndex>,
    by_null: FxHashMap<NullId, Vec<AtomId>>,
    next_null: u32,
    /// Liveness of atom `i`; retraction tombstones the slab entry.
    live: Vec<bool>,
    /// Number of tombstoned slab entries (`live` flags set to false).
    dead: usize,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from ground atoms (e.g. a program's facts).
    ///
    /// # Panics
    ///
    /// Panics if any atom is not ground.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            assert!(a.is_ground(), "instance atoms must be ground");
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns its id and whether it was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the atom is not ground.
    #[inline]
    pub fn insert(&mut self, atom: Atom) -> (AtomId, bool) {
        self.insert_terms(atom.pred, &atom.args)
    }

    /// Inserts an atom given as predicate + argument slice; returns its id
    /// and whether it was new. The arguments are copied into the arena
    /// only if the atom is new, so callers can reuse one scratch buffer
    /// across insertions.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any argument is not ground.
    pub fn insert_terms(&mut self, pred: PredId, args: &[Term]) -> (AtomId, bool) {
        debug_assert!(
            args.iter().all(|t| t.is_ground()),
            "instance atoms must be ground"
        );
        let hash = hash_parts(pred, args);
        if let Some(i) = self.lookup(hash, pred, args) {
            return (AtomId::from_index(i), false);
        }
        let id = AtomId::from_index(self.preds.len());
        self.preds.push(pred);
        self.terms.extend_from_slice(args);
        self.ends.push(self.terms.len() as u32);
        self.live.push(true);
        self.dedup.insert(hash, id.0);
        for &t in args {
            if let Term::Null(n) = t {
                // Track the null high-water mark so fresh nulls never collide
                // with nulls imported via `from_atoms`.
                if n.0 >= self.next_null {
                    self.next_null = n.0 + 1;
                }
                let posting = self.by_null.entry(n).or_default();
                if posting.last() != Some(&id) {
                    posting.push(id);
                }
            }
        }
        let pi_idx = pred.index();
        if self.by_pred.len() <= pi_idx {
            self.by_pred.resize_with(pi_idx + 1, PredIndex::default);
        }
        let pi = &mut self.by_pred[pi_idx];
        pi.ids.push(id);
        if pi.by_pos.len() < args.len() {
            pi.by_pos.resize_with(args.len(), FxHashMap::default);
        }
        for (pos, &t) in args.iter().enumerate() {
            pi.by_pos[pos].entry(t).or_default().push(id);
        }
        (id, true)
    }

    /// Dedup probe: finds an existing atom equal to `(pred, args)`.
    #[inline]
    fn lookup(&self, hash: u64, pred: PredId, args: &[Term]) -> Option<usize> {
        let preds = &self.preds;
        let ends = &self.ends;
        let terms = &self.terms;
        self.dedup.lookup(hash, |i| {
            if preds[i] != pred {
                return false;
            }
            let start = if i == 0 { 0 } else { ends[i - 1] as usize };
            &terms[start..ends[i] as usize] == args
        })
    }

    /// Mints a fresh null, distinct from every null seen so far.
    pub fn fresh_null(&mut self) -> NullId {
        let n = NullId(self.next_null);
        self.next_null += 1;
        n
    }

    /// Number of nulls minted or imported.
    pub fn null_count(&self) -> usize {
        self.next_null as usize
    }

    /// Whether the instance contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.id_of(atom).is_some()
    }

    /// Looks up an atom's id.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.id_of_parts(atom.pred, &atom.args)
    }

    /// Looks up the id of an atom given as predicate + argument slice.
    pub fn id_of_parts(&self, pred: PredId, args: &[Term]) -> Option<AtomId> {
        self.lookup(hash_parts(pred, args), pred, args)
            .map(AtomId::from_index)
    }

    /// Resolves an id to a zero-copy view of its atom.
    ///
    /// Resolves tombstoned ids too: retraction keeps the interned content
    /// so provenance structures can read the atoms they recorded.
    #[inline]
    pub fn atom(&self, id: AtomId) -> AtomRef<'_> {
        let i = id.index();
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        AtomRef {
            pred: self.preds[i],
            args: &self.terms[start..self.ends[i] as usize],
        }
    }

    /// Number of live atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len() - self.dead
    }

    /// Number of slab slots ever allocated (live atoms plus tombstones).
    ///
    /// This is the exclusive upper bound on atom ids: every id ever handed
    /// out is `< slab_len()`. Prefix views and parallel-round horizons
    /// must be expressed in this id space, not in live-atom counts.
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the instance has no live atoms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the id refers to a live (non-retracted) atom.
    ///
    /// # Panics
    ///
    /// Panics if the id was never allocated.
    #[inline]
    pub fn is_live(&self, id: AtomId) -> bool {
        self.live[id.index()]
    }

    /// Retracts a live atom: tombstones its slab entry and removes it from
    /// the dedup table and every posting list (predicate extension,
    /// per-position postings, per-null postings). Returns `false` if the
    /// atom was already retracted.
    ///
    /// The interned content stays readable through [`Instance::atom`] so
    /// provenance structures can still resolve the dead id; `contains`,
    /// `id_of`, and the postings-backed matcher no longer see it. The id
    /// is never reused — re-inserting the same content yields a new id.
    pub fn retract(&mut self, id: AtomId) -> bool {
        let i = id.index();
        if !self.live[i] {
            return false;
        }
        self.live[i] = false;
        self.dead += 1;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        let args_range = start..self.ends[i] as usize;
        let pred = self.preds[i];
        let hash = hash_parts(pred, &self.terms[args_range.clone()]);
        self.dedup.remove(hash, id.0);
        fn drop_from(posting: &mut Vec<AtomId>, id: AtomId) {
            // Postings are strictly ascending, so binary search applies.
            if let Ok(at) = posting.binary_search(&id) {
                posting.remove(at);
            }
        }
        for k in args_range {
            if let Term::Null(n) = self.terms[k] {
                if let Some(posting) = self.by_null.get_mut(&n) {
                    drop_from(posting, id);
                    if posting.is_empty() {
                        self.by_null.remove(&n);
                    }
                }
            }
        }
        let pi = &mut self.by_pred[pred.index()];
        drop_from(&mut pi.ids, id);
        let arity = self.ends[i] as usize - start;
        for pos in 0..arity {
            let t = self.terms[start + pos];
            if let Some(posting) = pi.by_pos[pos].get_mut(&t) {
                drop_from(posting, id);
                if posting.is_empty() {
                    pi.by_pos[pos].remove(&t);
                }
            }
        }
        true
    }

    /// Iterates over all live atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, AtomRef<'_>)> {
        (0..self.slab_len()).filter_map(|i| {
            if !self.live[i] {
                return None;
            }
            let id = AtomId::from_index(i);
            Some((id, self.atom(id)))
        })
    }

    /// Ids of atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred
            .get(pred.index())
            .map(|p| p.ids.as_slice())
            .unwrap_or(&[])
    }

    /// Ids of atoms with `term` at `pos` of `pred`, in insertion order.
    #[inline]
    pub fn with_pred_pos_term(&self, pred: PredId, pos: usize, term: Term) -> &[AtomId] {
        self.by_pred
            .get(pred.index())
            .and_then(|p| p.by_pos.get(pos))
            .and_then(|m| m.get(&term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ids of atoms mentioning the given null, in insertion order
    /// (deduplicated).
    pub fn with_null(&self, null: NullId) -> &[AtomId] {
        self.by_null.get(&null).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All distinct terms of the live atom set (order unspecified).
    pub fn terms(&self) -> Vec<Term> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for (_, atom) in self.iter() {
            for &t in atom.args {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

// The parallel-round chase shares instances read-only across worker
// threads; keep the store free of interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Instance>();
};

impl FromIterator<Atom> for Instance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Instance::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConstId;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        let (id1, new1) = inst.insert(atom(0, vec![c(0), c(1)]));
        let (id2, new2) = inst.insert(atom(0, vec![c(0), c(1)]));
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn ids_are_monotone_in_insertion_order() {
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        let (b, _) = inst.insert(atom(0, vec![c(1)]));
        assert!(a < b);
    }

    #[test]
    fn position_index_finds_atoms() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(0), c(2)]));
        inst.insert(atom(0, vec![c(3), c(1)]));
        inst.insert(atom(1, vec![c(0), c(1)]));
        assert_eq!(inst.with_pred_pos_term(PredId(0), 0, c(0)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(0), 1, c(1)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(1), 0, c(0)).len(), 1);
        assert_eq!(inst.with_pred_pos_term(PredId(2), 0, c(0)).len(), 0);
        assert_eq!(inst.with_pred(PredId(0)).len(), 3);
    }

    #[test]
    fn fresh_nulls_avoid_imported_ones() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(5)]));
        let fresh = inst.fresh_null();
        assert!(fresh.0 > 5);
        let fresh2 = inst.fresh_null();
        assert_ne!(fresh, fresh2);
    }

    #[test]
    fn null_postings_deduplicate_within_an_atom() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(0), n(0)]));
        inst.insert(atom(1, vec![n(0)]));
        assert_eq!(inst.with_null(NullId(0)).len(), 2);
    }

    #[test]
    fn terms_are_collected_once() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), n(1)]));
        inst.insert(atom(1, vec![c(0)]));
        let mut ts = inst.terms();
        ts.sort();
        assert_eq!(ts, vec![c(0), n(1)]);
    }

    #[test]
    #[should_panic(expected = "ground")]
    #[cfg(debug_assertions)] // the groundness check is a debug_assert!
    fn non_ground_atoms_panic() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![Term::Var(crate::ids::VarId(0))]));
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = vec![atom(0, vec![c(0)]), atom(0, vec![c(1)])].into_iter().collect();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn atom_resolves_to_interned_view() {
        let mut inst = Instance::new();
        let a = atom(3, vec![c(0), n(1), c(2)]);
        let (id, _) = inst.insert(a.clone());
        let view = inst.atom(id);
        assert_eq!(view, a);
        assert_eq!(view.to_atom(), a);
        assert_eq!(view.arity(), 3);
    }

    #[test]
    fn insert_terms_matches_insert() {
        let mut inst = Instance::new();
        let (id1, new1) = inst.insert_terms(PredId(0), &[c(0), c(1)]);
        let (id2, new2) = inst.insert(atom(0, vec![c(0), c(1)]));
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(inst.id_of_parts(PredId(0), &[c(0), c(1)]), Some(id1));
        assert_eq!(inst.id_of_parts(PredId(0), &[c(1), c(0)]), None);
    }

    #[test]
    fn mixed_arity_same_pred_is_distinguished() {
        // The store doesn't enforce a schema: a predicate may appear at
        // several arities (datagen never does this, but dedup must not
        // conflate a tuple with its zero-extended sibling).
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        let (b, _) = inst.insert(atom(0, vec![c(0), c(0)]));
        assert_ne!(a, b);
        assert_eq!(inst.with_pred(PredId(0)).len(), 2);
    }

    #[test]
    fn retract_tombstones_and_repairs_postings() {
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0), c(1)]));
        let (b, _) = inst.insert(atom(0, vec![c(0), c(2)]));
        let (x, _) = inst.insert(atom(1, vec![n(0)]));
        assert!(inst.retract(a));
        assert!(!inst.retract(a), "double retraction is a no-op");
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.slab_len(), 3);
        assert!(!inst.is_live(a));
        assert!(inst.is_live(b) && inst.is_live(x));
        // Content lookup no longer sees the tombstone.
        assert!(!inst.contains(&atom(0, vec![c(0), c(1)])));
        assert!(inst.contains(&atom(0, vec![c(0), c(2)])));
        // Postings are repaired.
        assert_eq!(inst.with_pred(PredId(0)), &[b]);
        assert_eq!(inst.with_pred_pos_term(PredId(0), 0, c(0)), &[b]);
        assert!(inst.with_pred_pos_term(PredId(0), 1, c(1)).is_empty());
        // The slab still resolves the dead id's content.
        assert_eq!(inst.atom(a).to_atom(), atom(0, vec![c(0), c(1)]));
        // Null postings are repaired too.
        assert!(inst.retract(x));
        assert!(inst.with_null(NullId(0)).is_empty());
    }

    #[test]
    fn reinsert_after_retract_mints_fresh_id() {
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        inst.retract(a);
        let (a2, fresh) = inst.insert(atom(0, vec![c(0)]));
        assert!(fresh, "retracted content re-enters as a new atom");
        assert_ne!(a, a2);
        assert_eq!(inst.id_of(&atom(0, vec![c(0)])), Some(a2));
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.slab_len(), 2);
        assert_eq!(inst.with_pred(PredId(0)), &[a2]);
    }

    #[test]
    fn dedup_survives_interleaved_retraction_and_growth() {
        // Backward-shift deletion must keep probe chains intact across
        // bulk delete/re-insert cycles that straddle table growth.
        let mut inst = Instance::new();
        let mut ids = Vec::new();
        for i in 0..500 {
            let (id, fresh) = inst.insert(atom(i % 5, vec![c(i), c(i / 2)]));
            assert!(fresh);
            ids.push((id, i));
        }
        for &(id, i) in ids.iter().step_by(3) {
            assert!(inst.retract(id));
            assert!(inst.id_of(&atom(i % 5, vec![c(i), c(i / 2)])).is_none());
        }
        for &(id, i) in &ids {
            let present = inst.id_of(&atom(i % 5, vec![c(i), c(i / 2)]));
            if inst.is_live(id) {
                assert_eq!(present, Some(id), "live atom {i} must stay findable");
            } else {
                assert_eq!(present, None, "dead atom {i} must not be findable");
            }
        }
        // Re-insert everything; dead content returns under fresh ids.
        for &(id, i) in &ids {
            let (new_id, fresh) = inst.insert(atom(i % 5, vec![c(i), c(i / 2)]));
            assert_eq!(fresh, id != new_id);
        }
        assert_eq!(inst.len(), 500);
    }

    #[test]
    fn dedup_survives_growth() {
        let mut inst = Instance::new();
        for i in 0..1000 {
            let (_, fresh) = inst.insert(atom(i % 7, vec![c(i), c(i / 3)]));
            assert!(fresh);
        }
        for i in 0..1000 {
            let (_, fresh) = inst.insert(atom(i % 7, vec![c(i), c(i / 3)]));
            assert!(!fresh, "atom {i} should already be present");
        }
        assert_eq!(inst.len(), 1000);
    }
}
