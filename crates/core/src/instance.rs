//! Instances: indexed, deduplicated stores of ground atoms.
//!
//! The chase spends nearly all its time matching rule bodies against the
//! instance, so the store maintains two access paths besides the arena:
//!
//! * `(predicate, position, term)` postings — the selective index the
//!   homomorphism matcher uses for bound positions;
//! * per-null postings — what the guarded termination procedure uses to
//!   assemble "clouds" (all atoms over a given term set).
//!
//! Atom ids are dense and monotone: `AtomId(i)` was inserted before
//! `AtomId(j)` whenever `i < j`. The same holds for null ids. The
//! termination procedures rely on both orders as birth timestamps.

use crate::atom::Atom;
use crate::fxhash::FxHashMap;
use crate::ids::{AtomId, NullId, PredId};
use crate::term::Term;

/// An indexed, deduplicated set of ground atoms.
#[derive(Debug, Default, Clone)]
pub struct Instance {
    atoms: Vec<Atom>,
    index: FxHashMap<Atom, AtomId>,
    by_pred: FxHashMap<PredId, Vec<AtomId>>,
    by_pred_pos_term: FxHashMap<(PredId, u32, Term), Vec<AtomId>>,
    by_null: FxHashMap<NullId, Vec<AtomId>>,
    next_null: u32,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an instance from ground atoms (e.g. a program's facts).
    ///
    /// # Panics
    ///
    /// Panics if any atom is not ground.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut inst = Instance::new();
        for a in atoms {
            assert!(a.is_ground(), "instance atoms must be ground");
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns its id and whether it was new.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the atom is not ground.
    pub fn insert(&mut self, atom: Atom) -> (AtomId, bool) {
        debug_assert!(atom.is_ground(), "instance atoms must be ground");
        if let Some(&id) = self.index.get(&atom) {
            return (id, false);
        }
        let id = AtomId::from_index(self.atoms.len());
        self.by_pred.entry(atom.pred).or_default().push(id);
        for (pos, &t) in atom.args.iter().enumerate() {
            self.by_pred_pos_term
                .entry((atom.pred, pos as u32, t))
                .or_default()
                .push(id);
            if let Term::Null(n) = t {
                // Track the null high-water mark so fresh nulls never collide
                // with nulls imported via `from_atoms`.
                if n.0 >= self.next_null {
                    self.next_null = n.0 + 1;
                }
                let posting = self.by_null.entry(n).or_default();
                if posting.last() != Some(&id) {
                    posting.push(id);
                }
            }
        }
        self.index.insert(atom.clone(), id);
        self.atoms.push(atom);
        (id, true)
    }

    /// Mints a fresh null, distinct from every null seen so far.
    pub fn fresh_null(&mut self) -> NullId {
        let n = NullId(self.next_null);
        self.next_null += 1;
        n
    }

    /// Number of nulls minted or imported.
    pub fn null_count(&self) -> usize {
        self.next_null as usize
    }

    /// Whether the instance contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.index.contains_key(atom)
    }

    /// Looks up an atom's id.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// Resolves an id to its atom.
    #[inline]
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the instance is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over all atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (AtomId::from_index(i), a))
    }

    /// Ids of atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of atoms with `term` at `pos` of `pred`, in insertion order.
    pub fn with_pred_pos_term(&self, pred: PredId, pos: usize, term: Term) -> &[AtomId] {
        self.by_pred_pos_term
            .get(&(pred, pos as u32, term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ids of atoms mentioning the given null, in insertion order
    /// (deduplicated).
    pub fn with_null(&self, null: NullId) -> &[AtomId] {
        self.by_null.get(&null).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All distinct terms of the atom set (order unspecified).
    pub fn terms(&self) -> Vec<Term> {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for a in &self.atoms {
            for &t in &a.args {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

// The parallel-round chase shares instances read-only across worker
// threads; keep the store free of interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Instance>();
};

impl FromIterator<Atom> for Instance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Instance::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConstId;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        let (id1, new1) = inst.insert(atom(0, vec![c(0), c(1)]));
        let (id2, new2) = inst.insert(atom(0, vec![c(0), c(1)]));
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn ids_are_monotone_in_insertion_order() {
        let mut inst = Instance::new();
        let (a, _) = inst.insert(atom(0, vec![c(0)]));
        let (b, _) = inst.insert(atom(0, vec![c(1)]));
        assert!(a < b);
    }

    #[test]
    fn position_index_finds_atoms() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(0), c(2)]));
        inst.insert(atom(0, vec![c(3), c(1)]));
        inst.insert(atom(1, vec![c(0), c(1)]));
        assert_eq!(inst.with_pred_pos_term(PredId(0), 0, c(0)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(0), 1, c(1)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(PredId(1), 0, c(0)).len(), 1);
        assert_eq!(inst.with_pred_pos_term(PredId(2), 0, c(0)).len(), 0);
        assert_eq!(inst.with_pred(PredId(0)).len(), 3);
    }

    #[test]
    fn fresh_nulls_avoid_imported_ones() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(5)]));
        let fresh = inst.fresh_null();
        assert!(fresh.0 > 5);
        let fresh2 = inst.fresh_null();
        assert_ne!(fresh, fresh2);
    }

    #[test]
    fn null_postings_deduplicate_within_an_atom() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![n(0), n(0)]));
        inst.insert(atom(1, vec![n(0)]));
        assert_eq!(inst.with_null(NullId(0)).len(), 2);
    }

    #[test]
    fn terms_are_collected_once() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), n(1)]));
        inst.insert(atom(1, vec![c(0)]));
        let mut ts = inst.terms();
        ts.sort();
        assert_eq!(ts, vec![c(0), n(1)]);
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn non_ground_atoms_panic() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![Term::Var(crate::ids::VarId(0))]));
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = vec![atom(0, vec![c(0)]), atom(0, vec![c(1)])].into_iter().collect();
        assert_eq!(inst.len(), 2);
    }
}
