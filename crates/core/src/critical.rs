//! The critical instance.
//!
//! Marnette's simulation lemma (PODS'09) is the semantic anchor of every
//! exact procedure in this workspace: for the oblivious and semi-oblivious
//! chase, the chase of a rule set Σ terminates on **every** instance iff it
//! terminates on the *critical instance* `crit(Σ)` — the instance containing
//! `p(c̄)` for every predicate `p` and every tuple `c̄` over the constants of
//! Σ plus one fresh constant `⋆`.
//!
//! Why it holds: every instance maps homomorphically into `crit(Σ)`
//! (send every constant outside Σ's constants to `⋆`), and (semi-)oblivious
//! chase steps are preserved under homomorphisms, so an infinite chase of any
//! instance is simulated by an infinite chase of `crit(Σ)`.
//!
//! The paper's Theorem 4 is stated for *standard databases* — databases with
//! designated constants `0` and `1` exposed through unary predicates `0()`
//! and `1()`. [`CriticalInstance::standard`] builds the corresponding
//! critical instance (the standardness is needed only for the paper's lower
//! bounds; upper bounds hold regardless).

use crate::atom::Atom;
use crate::ids::{ConstId, PredId};
use crate::instance::Instance;
use crate::program::Program;
use crate::term::Term;

/// Builder/result of critical-instance construction.
#[derive(Debug, Clone)]
pub struct CriticalInstance {
    /// The constants used, including the fresh `⋆` (last position).
    pub constants: Vec<ConstId>,
    /// The generated instance.
    pub instance: Instance,
    /// The fresh constant `⋆`.
    pub star: ConstId,
}

/// Name used for the fresh critical constant.
pub const STAR_NAME: &str = "\u{22c6}critical";

impl CriticalInstance {
    /// Builds `crit(Σ)` for the program's rule predicates and rule constants
    /// plus a fresh `⋆`.
    ///
    /// The number of atoms is `Σ_p |C|^{arity(p)}`; callers should keep rule
    /// constants and arities small (the termination procedures do).
    pub fn build(program: &mut Program) -> CriticalInstance {
        let star = program.vocab.intern_const(STAR_NAME);
        let mut constants = program.rule_constants();
        if !constants.contains(&star) {
            constants.push(star);
        }
        let preds = program.rule_predicates();
        let instance = Self::fill(program, &preds, &constants);
        CriticalInstance { constants, instance, star }
    }

    /// Builds the critical instance for *standard databases*: like
    /// [`CriticalInstance::build`] but the constant pool also contains `0`
    /// and `1`, and the instance additionally contains the facts `0(0)` and
    /// `1(1)` (declaring the unary predicates if absent).
    pub fn standard(program: &mut Program) -> CriticalInstance {
        let star = program.vocab.intern_const(STAR_NAME);
        let zero = program.vocab.intern_const("0");
        let one = program.vocab.intern_const("1");
        let mut constants = program.rule_constants();
        for c in [zero, one, star] {
            if !constants.contains(&c) {
                constants.push(c);
            }
        }
        let p0 = program
            .vocab
            .declare_pred("0", 1)
            .expect("unary predicate 0 must be consistent");
        let p1 = program
            .vocab
            .declare_pred("1", 1)
            .expect("unary predicate 1 must be consistent");
        // The predicates 0 and 1 are *reserved*: every standard database
        // contains exactly 0(0) and 1(1) in them, so they are excluded from
        // the all-combinations fill.
        let mut preds = program.rule_predicates();
        preds.retain(|&p| p != p0 && p != p1);
        let mut instance = Self::fill(program, &preds, &constants);
        instance.insert(Atom::new(p0, vec![Term::Const(zero)]));
        instance.insert(Atom::new(p1, vec![Term::Const(one)]));
        CriticalInstance { constants, instance, star }
    }

    /// Fills every predicate with every combination of constants.
    fn fill(program: &Program, preds: &[PredId], constants: &[ConstId]) -> Instance {
        debug_assert!(!constants.is_empty(), "the fresh constant is always present");
        let mut instance = Instance::new();
        for &pred in preds {
            let arity = program.vocab.arity(pred);
            let mut tuple = vec![0usize; arity];
            'combos: loop {
                let args: Vec<Term> =
                    tuple.iter().map(|&i| Term::Const(constants[i])).collect();
                instance.insert(Atom::new(pred, args));
                // Odometer increment over `constants`; zero-arity predicates
                // yield exactly one (empty-args) atom.
                let mut k = arity;
                loop {
                    if k == 0 {
                        break 'combos;
                    }
                    k -= 1;
                    tuple[k] += 1;
                    if tuple[k] < constants.len() {
                        break;
                    }
                    tuple[k] = 0;
                }
            }
        }
        instance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_free_program_gets_single_star_tuple_per_pred() {
        let mut p = Program::parse("e(X, Y) -> e(Y, Z).").unwrap();
        let crit = CriticalInstance::build(&mut p);
        assert_eq!(crit.constants.len(), 1);
        // e has arity 2 → 1^2 = 1 atom.
        assert_eq!(crit.instance.len(), 1);
        let atom = crit.instance.iter().next().unwrap().1;
        assert!(atom.args.iter().all(|t| *t == Term::Const(crit.star)));
    }

    #[test]
    fn rule_constants_multiply_the_tuples() {
        let mut p = Program::parse("e(X, a) -> e(b, X).").unwrap();
        let crit = CriticalInstance::build(&mut p);
        // Constants {a, b, ⋆}: e arity 2 → 9 atoms.
        assert_eq!(crit.constants.len(), 3);
        assert_eq!(crit.instance.len(), 9);
    }

    #[test]
    fn multiple_predicates_are_all_filled() {
        let mut p = Program::parse("p(X) -> q(X, Y). q(X, Y) -> r(X).").unwrap();
        let crit = CriticalInstance::build(&mut p);
        // p:1 + q:2 + r:1 over 1 constant = 1 + 1 + 1.
        assert_eq!(crit.instance.len(), 3);
    }

    #[test]
    fn zero_ary_predicates_get_one_atom() {
        let mut p = Program::parse("start -> p(X).").unwrap();
        let crit = CriticalInstance::build(&mut p);
        // start() and p(⋆).
        assert_eq!(crit.instance.len(), 2);
    }

    #[test]
    fn standard_instance_contains_zero_and_one() {
        let mut p = Program::parse("e(X, Y) -> e(Y, Z).").unwrap();
        let crit = CriticalInstance::standard(&mut p);
        // Constants {0, 1, ⋆}: e → 9 atoms, plus exactly 0(0) and 1(1)
        // (the reserved predicates are not filled with combinations).
        assert_eq!(crit.constants.len(), 3);
        let zero_pred = p.vocab.pred("0").unwrap();
        let one_pred = p.vocab.pred("1").unwrap();
        let zero_const = p.vocab.constant("0").unwrap();
        let one_const = p.vocab.constant("1").unwrap();
        assert!(crit
            .instance
            .contains(&Atom::new(zero_pred, vec![Term::Const(zero_const)])));
        assert!(crit
            .instance
            .contains(&Atom::new(one_pred, vec![Term::Const(one_const)])));
        assert_eq!(crit.instance.len(), 9 + 1 + 1);
        // The reserved predicates contain nothing else.
        assert_eq!(crit.instance.with_pred(zero_pred).len(), 1);
        assert!(!crit
            .instance
            .contains(&Atom::new(zero_pred, vec![Term::Const(crit.star)])));
    }

    #[test]
    fn star_is_always_present_in_constant_pool() {
        let mut p = Program::parse("p(a) -> q(a).").unwrap();
        let crit = CriticalInstance::build(&mut p);
        assert!(crit.constants.contains(&crit.star));
        // {a, ⋆} over p:1, q:1 → 4 atoms.
        assert_eq!(crit.instance.len(), 4);
    }
}
