//! Terms: constants, rule variables, and labeled nulls.

use crate::ids::{ConstId, NullId, VarId};

/// A term of the logic.
///
/// * `Const` — a named constant from the [`crate::Vocabulary`].
/// * `Var` — a variable; only meaningful inside a rule (ids are rule-scoped).
/// * `Null` — a labeled null invented by the chase; ids are instance-scoped
///   and **monotone in birth order** (a larger [`NullId`] was created later),
///   a property the termination procedures rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A named constant.
    Const(ConstId),
    /// A rule-scoped variable.
    Var(VarId),
    /// A chase-invented labeled null.
    Null(NullId),
}

impl Term {
    /// Returns `true` for ground terms (constants and nulls — anything that
    /// can live in an instance).
    #[inline]
    pub fn is_ground(self) -> bool {
        !matches!(self, Term::Var(_))
    }

    /// Returns `true` if the term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` if the term is a labeled null.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Returns `true` if the term is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns the variable id, if this is a variable.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the null id, if this is a null.
    #[inline]
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Term::Null(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the constant id, if this is a constant.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(Term::Const(ConstId(0)).is_ground());
        assert!(Term::Null(NullId(0)).is_ground());
        assert!(!Term::Var(VarId(0)).is_ground());
        assert!(Term::Var(VarId(1)).is_var());
        assert!(Term::Null(NullId(1)).is_null());
        assert!(Term::Const(ConstId(1)).is_const());
    }

    #[test]
    fn accessors_return_expected_ids() {
        assert_eq!(Term::Var(VarId(7)).as_var(), Some(VarId(7)));
        assert_eq!(Term::Const(ConstId(7)).as_var(), None);
        assert_eq!(Term::Null(NullId(3)).as_null(), Some(NullId(3)));
        assert_eq!(Term::Const(ConstId(9)).as_const(), Some(ConstId(9)));
    }

    #[test]
    fn term_is_small() {
        // Atoms hold many terms; keep them word-sized.
        assert!(std::mem::size_of::<Term>() <= 8);
    }
}
