//! Human-readable rendering of atoms, rules, and instances.
//!
//! Terms only carry ids, so rendering needs the owning [`Vocabulary`] (for
//! predicate/constant names) and, for rule atoms, the owning [`Tgd`] (for
//! variable names). Nulls render as `_:n<k>`.

use std::fmt::Write as _;

use crate::atom::{Atom, AtomRef};
use crate::instance::Instance;
use crate::program::Program;
use crate::rule::Tgd;
use crate::term::Term;
use crate::vocab::Vocabulary;

/// Renders a term. `rule` supplies variable names when present; variables
/// without a rule context render as `?<id>`.
pub fn term_to_string(t: Term, vocab: &Vocabulary, rule: Option<&Tgd>) -> String {
    match t {
        Term::Const(c) => vocab.const_name(c).to_owned(),
        Term::Null(n) => format!("_:n{}", n.0),
        Term::Var(v) => match rule {
            Some(r) => r.vars()[v.index()].name.clone(),
            None => format!("?{}", v.0),
        },
    }
}

/// Renders an atom.
pub fn atom_to_string(a: &Atom, vocab: &Vocabulary, rule: Option<&Tgd>) -> String {
    atom_ref_to_string(a.as_ref(), vocab, rule)
}

/// Renders a borrowed atom view (what [`Instance::atom`] resolves to).
///
/// [`Instance::atom`]: crate::Instance::atom
pub fn atom_ref_to_string(a: AtomRef<'_>, vocab: &Vocabulary, rule: Option<&Tgd>) -> String {
    let mut s = String::new();
    s.push_str(vocab.pred_name(a.pred));
    if !a.args.is_empty() {
        s.push('(');
        for (i, &t) in a.args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&term_to_string(t, vocab, rule));
        }
        s.push(')');
    }
    s
}

/// Renders a conjunction of atoms separated by `, `.
pub fn conj_to_string(atoms: &[Atom], vocab: &Vocabulary, rule: Option<&Tgd>) -> String {
    let mut s = String::new();
    for (i, a) in atoms.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&atom_to_string(a, vocab, rule));
    }
    s
}

/// Renders a rule in the parser's input syntax: `body -> head.`
pub fn rule_to_string(rule: &Tgd, vocab: &Vocabulary) -> String {
    format!(
        "{} -> {}.",
        conj_to_string(rule.body(), vocab, Some(rule)),
        conj_to_string(rule.head(), vocab, Some(rule))
    )
}

/// Renders a whole program in the parser's input syntax (rules then facts).
pub fn program_to_string(program: &Program) -> String {
    let mut s = String::new();
    for rule in program.rules() {
        let _ = writeln!(s, "{}", rule_to_string(rule, &program.vocab));
    }
    for fact in program.facts() {
        let _ = writeln!(s, "{}.", atom_to_string(fact, &program.vocab, None));
    }
    s
}

/// Renders a string as a JSON string literal (quoted, with `"` `\` and
/// control characters escaped). Used by the engine's trace/metrics
/// exporters so event payloads built from vocabulary names stay valid
/// JSON whatever the input program called its predicates.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an instance, one atom per line, in insertion order.
pub fn instance_to_string(instance: &Instance, vocab: &Vocabulary) -> String {
    let mut s = String::new();
    for (_, a) in instance.iter() {
        let _ = writeln!(s, "{}", atom_ref_to_string(a, vocab, None));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_round_trips_through_parser() {
        let src = "person(X) -> hasFather(X, Y), person(Y).";
        let p = Program::parse(src).unwrap();
        let rendered = rule_to_string(&p.rules()[0], &p.vocab);
        assert_eq!(rendered, src);
        // And the rendering parses back to an equivalent rule.
        let p2 = Program::parse(&rendered).unwrap();
        assert_eq!(rule_to_string(&p2.rules()[0], &p2.vocab), src);
    }

    #[test]
    fn zero_ary_atoms_render_bare() {
        let p = Program::parse("go -> done.").unwrap();
        assert_eq!(rule_to_string(&p.rules()[0], &p.vocab), "go -> done.");
    }

    #[test]
    fn constants_and_nulls_render() {
        let p = Program::parse("p(alice, bob).").unwrap();
        let fact = &p.facts()[0];
        assert_eq!(atom_to_string(fact, &p.vocab, None), "p(alice, bob)");
        let null_atom = Atom::new(fact.pred, vec![Term::Null(crate::ids::NullId(3)), fact.args[0]]);
        assert_eq!(atom_to_string(&null_atom, &p.vocab, None), "p(_:n3, alice)");
    }

    #[test]
    fn whole_program_round_trips() {
        let src = "p(X, Y) -> p(Y, Z).\np(a, b).\n";
        let p = Program::parse(src).unwrap();
        let rendered = program_to_string(&p);
        let p2 = Program::parse(&rendered).unwrap();
        assert_eq!(program_to_string(&p2), rendered);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("person"), "\"person\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn instance_rendering_lists_atoms() {
        let p = Program::parse("p(a, b). p(b, a).").unwrap();
        let inst = Instance::from_atoms(p.facts().iter().cloned());
        let s = instance_to_string(&inst, &p.vocab);
        assert_eq!(s, "p(a, b)\np(b, a)\n");
    }
}
