//! Strongly-typed integer identifiers used throughout the workspace.
//!
//! Everything in the data model is interned down to a `u32`: predicate names,
//! constants, per-rule variables, and chase-generated nulls. Using newtyped
//! ids instead of strings keeps atoms `Copy`-cheap and makes hash tables fast
//! (see `fxhash`).

/// Declares a `u32`-backed id type with the usual conversions.
macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Builds the id from a `usize` index, panicking on overflow.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }

            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// An interned string (predicate, constant, or variable name).
    Symbol
);
id_type!(
    /// A predicate, resolved against a [`crate::Vocabulary`].
    PredId
);
id_type!(
    /// A constant, resolved against a [`crate::Vocabulary`].
    ConstId
);
id_type!(
    /// A variable, scoped to a single rule (see [`crate::Tgd`]).
    VarId
);
id_type!(
    /// A labeled null, scoped to a single [`crate::Instance`].
    NullId
);
id_type!(
    /// An atom stored in an [`crate::Instance`] arena.
    AtomId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let id = PredId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ordering_follows_the_underlying_integer() {
        assert!(NullId(3) < NullId(7));
        assert_eq!(AtomId(5), AtomId(5));
    }
}
