//! Parser for the textual rule format.
//!
//! # Grammar
//!
//! ```text
//! program  := item*
//! item     := rule | fact
//! rule     := conj "->" conj "."
//! fact     := atom "."
//! conj     := atom ("," atom)*
//! atom     := ident [ "(" term ("," term)* ")" ]
//! term     := VARIABLE | constant
//! ```
//!
//! * Identifiers starting with an uppercase letter (or `_`) are **variables**;
//!   `_` alone is an anonymous variable, fresh at each occurrence.
//! * Identifiers starting with a lowercase letter or digit, numbers, and
//!   single-quoted strings are **constants**.
//! * Variables occurring only in a rule head are existentially quantified.
//! * Comments run from `%`, `#`, or `//` to end of line.
//! * A bare identifier without parentheses is a zero-ary atom.
//!
//! # Example
//!
//! ```
//! use chasekit_core::Program;
//!
//! let program = Program::parse(
//!     r#"
//!     % Example 1 of the paper: every person has a father who is a person.
//!     person(X) -> hasFather(X, Y), person(Y).
//!     person(bob).
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.rules().len(), 1);
//! assert_eq!(program.facts().len(), 1);
//! ```

use crate::atom::Atom;
use crate::error::{CoreError, ParseError};
use crate::ids::VarId;
use crate::program::Program;
use crate::rule::{Quantifier, Tgd, VarInfo};
use crate::term::Term;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Arrow,
    Dot,
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') | Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |tok| Token { tok, line, col };
        let Some(b) = self.peek() else {
            return Ok(mk(Tok::Eof));
        };
        match b {
            b'(' => {
                self.bump();
                Ok(mk(Tok::LParen))
            }
            b')' => {
                self.bump();
                Ok(mk(Tok::RParen))
            }
            b',' => {
                self.bump();
                Ok(mk(Tok::Comma))
            }
            b'.' => {
                self.bump();
                Ok(mk(Tok::Dot))
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Ok(mk(Tok::Arrow))
                } else {
                    Err(ParseError { line, col, message: "expected `->`".into() })
                }
            }
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => break,
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(ParseError {
                                line,
                                col,
                                message: "unterminated quoted constant".into(),
                            })
                        }
                    }
                }
                Ok(mk(Tok::Quoted(s)))
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(mk(Tok::Ident(s)))
            }
            other => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Token,
    program: Program,
}

/// A pre-validation atom: predicate name + raw terms (variables by name).
#[derive(Debug)]
enum RawTerm {
    Var(String),
    Anon,
    Const(String),
}

#[derive(Debug)]
struct RawAtom {
    pred: String,
    args: Vec<RawTerm>,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_token()?;
        Ok(Parser { lexer, lookahead, program: Program::new() })
    }

    fn advance(&mut self) -> Result<Token, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.lookahead, next))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Token, ParseError> {
        if self.lookahead.tok == tok {
            self.advance()
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError {
            line: self.lookahead.line,
            col: self.lookahead.col,
            message: format!("expected {what}, found {:?}", self.lookahead.tok),
        }
    }

    fn parse_atom(&mut self) -> Result<RawAtom, ParseError> {
        let (line, col) = (self.lookahead.line, self.lookahead.col);
        let name = match &self.lookahead.tok {
            Tok::Ident(s) => s.clone(),
            _ => return Err(self.unexpected("a predicate name")),
        };
        self.advance()?;
        let mut args = Vec::new();
        if self.lookahead.tok == Tok::LParen {
            self.advance()?;
            if self.lookahead.tok != Tok::RParen {
                loop {
                    args.push(self.parse_term()?);
                    if self.lookahead.tok == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "`)`")?;
        }
        Ok(RawAtom { pred: name, args, line, col })
    }

    fn parse_term(&mut self) -> Result<RawTerm, ParseError> {
        match &self.lookahead.tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.advance()?;
                let first = s.as_bytes()[0];
                if s == "_" {
                    Ok(RawTerm::Anon)
                } else if first.is_ascii_uppercase() || first == b'_' {
                    Ok(RawTerm::Var(s))
                } else {
                    Ok(RawTerm::Const(s))
                }
            }
            Tok::Quoted(s) => {
                let s = s.clone();
                self.advance()?;
                Ok(RawTerm::Const(s))
            }
            _ => Err(self.unexpected("a term")),
        }
    }

    fn parse_conj(&mut self) -> Result<Vec<RawAtom>, ParseError> {
        let mut atoms = vec![self.parse_atom()?];
        while self.lookahead.tok == Tok::Comma {
            self.advance()?;
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }

    /// Resolves raw atoms into real atoms, declaring predicates/constants and
    /// interning variables into `vars` (appending new ones).
    fn resolve(
        &mut self,
        raw: Vec<RawAtom>,
        vars: &mut Vec<String>,
        anon_counter: &mut usize,
    ) -> Result<Vec<Atom>, CoreError> {
        let mut out = Vec::with_capacity(raw.len());
        for ra in raw {
            let pred = self.program.vocab.declare_pred(&ra.pred, ra.args.len())?;
            let mut args = Vec::with_capacity(ra.args.len());
            for rt in ra.args {
                let term = match rt {
                    RawTerm::Var(name) => {
                        let id = match vars.iter().position(|v| *v == name) {
                            Some(i) => i,
                            None => {
                                vars.push(name);
                                vars.len() - 1
                            }
                        };
                        Term::Var(VarId::from_index(id))
                    }
                    RawTerm::Anon => {
                        *anon_counter += 1;
                        vars.push(format!("_A{}", *anon_counter));
                        Term::Var(VarId::from_index(vars.len() - 1))
                    }
                    RawTerm::Const(name) => Term::Const(self.program.vocab.intern_const(&name)),
                };
                args.push(term);
            }
            let _ = (ra.line, ra.col);
            out.push(Atom::new(pred, args));
        }
        Ok(out)
    }

    fn parse_item(&mut self) -> Result<(), CoreError> {
        let first = self.parse_conj().map_err(CoreError::Parse)?;
        match self.lookahead.tok {
            Tok::Arrow => {
                self.advance().map_err(CoreError::Parse)?;
                let head_raw = self.parse_conj().map_err(CoreError::Parse)?;
                self.expect(Tok::Dot, "`.`").map_err(CoreError::Parse)?;

                let mut vars = Vec::new();
                let mut anon = 0usize;
                let body = self.resolve(first, &mut vars, &mut anon)?;
                let head = self.resolve(head_raw, &mut vars, &mut anon)?;

                let mut in_body = vec![false; vars.len()];
                for a in &body {
                    for v in a.vars() {
                        in_body[v.index()] = true;
                    }
                }
                let infos: Vec<VarInfo> = vars
                    .into_iter()
                    .enumerate()
                    .map(|(i, name)| VarInfo {
                        name,
                        quantifier: if in_body[i] {
                            Quantifier::Universal
                        } else {
                            Quantifier::Existential
                        },
                    })
                    .collect();
                let rule = Tgd::new(body, head, infos)?;
                self.program.add_rule(rule)?;
                Ok(())
            }
            Tok::Dot => {
                self.advance().map_err(CoreError::Parse)?;
                let mut vars = Vec::new();
                let mut anon = 0usize;
                let atoms = self.resolve(first, &mut vars, &mut anon)?;
                for atom in atoms {
                    self.program.add_fact(atom)?;
                }
                Ok(())
            }
            _ => Err(CoreError::Parse(self.unexpected("`->` or `.`"))),
        }
    }

    fn parse_program(mut self) -> Result<Program, CoreError> {
        while self.lookahead.tok != Tok::Eof {
            self.parse_item()?;
        }
        Ok(self.program)
    }
}

/// Parses a full program.
pub fn parse_program(text: &str) -> Result<Program, CoreError> {
    Parser::new(text).map_err(CoreError::Parse)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleClass;

    #[test]
    fn parses_example1() {
        let p = Program::parse("person(X) -> hasFather(X, Y), person(Y). person(bob).").unwrap();
        assert_eq!(p.rules().len(), 1);
        assert_eq!(p.facts().len(), 1);
        let r = &p.rules()[0];
        assert_eq!(r.frontier().len(), 1);
        assert_eq!(r.existentials().len(), 1);
        assert_eq!(p.class(), RuleClass::SimpleLinear);
    }

    #[test]
    fn parses_example2() {
        let p = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
        assert_eq!(p.rules().len(), 1);
        assert_eq!(p.facts().len(), 1);
        assert_eq!(p.class(), RuleClass::SimpleLinear);
    }

    #[test]
    fn variables_vs_constants_by_case() {
        let p = Program::parse("p(X, alice) -> q(X).").unwrap();
        let r = &p.rules()[0];
        assert_eq!(r.body()[0].vars().len(), 1);
        assert_eq!(p.vocab.const_count(), 1);
        assert!(p.vocab.constant("alice").is_some());
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let p = Program::parse("p('Hello World', 42).").unwrap();
        assert!(p.vocab.constant("Hello World").is_some());
        assert!(p.vocab.constant("42").is_some());
    }

    #[test]
    fn zero_ary_atoms_with_and_without_parens() {
        let p = Program::parse("start() -> go. go -> done().").unwrap();
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.vocab.arity(p.vocab.pred("go").unwrap()), 0);
    }

    #[test]
    fn anonymous_variables_are_fresh_per_occurrence() {
        let p = Program::parse("p(_, _) -> q(_).").unwrap();
        let r = &p.rules()[0];
        // Two distinct universal anon vars in the body, one existential in head.
        assert_eq!(r.existentials().len(), 1);
        assert_eq!(r.universals().len(), 2);
        assert!(r.is_simple_linear());
    }

    #[test]
    fn comments_are_skipped() {
        let p = Program::parse(
            "% percent comment\n# hash comment\n// slashes\np(X) -> q(X). % trailing",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn error_location_is_reported() {
        let err = Program::parse("p(X) -> q(X)\nr(Y) -> s(Y).").unwrap_err();
        match err {
            CoreError::Parse(e) => {
                assert_eq!(e.line, 2, "missing dot should be flagged at the next token");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_across_items() {
        let err = Program::parse("p(a, b). p(X) -> q(X).").unwrap_err();
        assert!(matches!(err, CoreError::ArityMismatch { .. }));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let err = Program::parse("p(X).").unwrap_err();
        assert!(matches!(err, CoreError::NonGroundFact { .. }));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = Program::parse("p('oops).").unwrap_err();
        assert!(matches!(err, CoreError::Parse(_)));
    }

    #[test]
    fn stray_character_is_an_error() {
        let err = Program::parse("p(X) -> q(X)!").unwrap_err();
        assert!(matches!(err, CoreError::Parse(_)));
    }

    #[test]
    fn multi_fact_conjunction_in_one_item() {
        let p = Program::parse("p(a), q(b).").unwrap();
        assert_eq!(p.facts().len(), 2);
    }

    #[test]
    fn empty_program_parses() {
        let p = Program::parse("  % nothing here\n").unwrap();
        assert!(p.rules().is_empty());
        assert!(p.facts().is_empty());
    }

    #[test]
    fn guarded_multibody_rule() {
        let p = Program::parse("r(X, Y), p(X) -> s(Y, Z).").unwrap();
        assert_eq!(p.class(), RuleClass::Guarded);
        assert_eq!(p.rules()[0].guard_index(), Some(0));
    }

    #[test]
    fn non_guarded_rule_classifies_general() {
        let p = Program::parse("p(X), q(Y) -> r(X, Y).").unwrap();
        assert_eq!(p.class(), RuleClass::General);
    }
}
