//! Programs: a vocabulary, a set of TGDs, and optional ground facts.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fxhash::FxHashSet;
use crate::ids::{ConstId, PredId};
use crate::rule::{Quantifier, RuleClass, Tgd, VarInfo};
use crate::term::Term;
use crate::vocab::Vocabulary;

/// A program: vocabulary + TGDs + ground facts.
///
/// This is the unit that the chase engines and the termination procedures
/// consume. Facts are optional — the termination problem quantifies over all
/// databases, so most analyses ignore them — but the parser accepts them and
/// the chase uses them as the initial instance when present.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Predicate and constant declarations.
    pub vocab: Vocabulary,
    rules: Vec<Tgd>,
    facts: Vec<Atom>,
}

// Chase worker threads match rule bodies against a shared `&Program`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
};

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a program from the textual rule format (see [`crate::parser`]).
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        crate::parser::parse_program(text)
    }

    /// The rules.
    #[inline]
    pub fn rules(&self) -> &[Tgd] {
        &self.rules
    }

    /// The ground facts.
    #[inline]
    pub fn facts(&self) -> &[Atom] {
        &self.facts
    }

    /// Adds a validated rule, checking arities against the vocabulary.
    pub fn add_rule(&mut self, rule: Tgd) -> Result<usize, CoreError> {
        for atom in rule.body().iter().chain(rule.head()) {
            let declared = self.vocab.arity(atom.pred);
            if declared != atom.arity() {
                return Err(CoreError::ArityMismatch {
                    predicate: self.vocab.pred_name(atom.pred).to_owned(),
                    declared,
                    used: atom.arity(),
                });
            }
        }
        self.rules.push(rule);
        Ok(self.rules.len() - 1)
    }

    /// Adds a ground fact, checking groundness and arity.
    pub fn add_fact(&mut self, fact: Atom) -> Result<(), CoreError> {
        if !fact.is_ground() {
            return Err(CoreError::NonGroundFact { fact: format!("{fact:?}") });
        }
        let declared = self.vocab.arity(fact.pred);
        if declared != fact.arity() {
            return Err(CoreError::ArityMismatch {
                predicate: self.vocab.pred_name(fact.pred).to_owned(),
                declared,
                used: fact.arity(),
            });
        }
        self.facts.push(fact);
        Ok(())
    }

    /// Removes every occurrence of a ground fact; returns whether any was
    /// present. Used when applying edit scripts to a program's base.
    pub fn remove_fact(&mut self, fact: &Atom) -> bool {
        let before = self.facts.len();
        self.facts.retain(|f| f != fact);
        self.facts.len() != before
    }

    /// The syntactic class of the rule set.
    pub fn class(&self) -> RuleClass {
        RuleClass::of(&self.rules)
    }

    /// Constants that occur inside rules (body or head), deduplicated.
    ///
    /// These are the constants the critical instance must mention in addition
    /// to its fresh constant.
    pub fn rule_constants(&self) -> Vec<ConstId> {
        let mut seen: FxHashSet<ConstId> = FxHashSet::default();
        let mut out = Vec::new();
        for rule in &self.rules {
            for atom in rule.body().iter().chain(rule.head()) {
                for t in &atom.args {
                    if let Term::Const(c) = *t {
                        if seen.insert(c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Predicates that occur anywhere in the rules.
    pub fn rule_predicates(&self) -> Vec<PredId> {
        let mut seen: FxHashSet<PredId> = FxHashSet::default();
        let mut out = Vec::new();
        for rule in &self.rules {
            for atom in rule.body().iter().chain(rule.head()) {
                if seen.insert(atom.pred) {
                    out.push(atom.pred);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Incremental builder for a single rule, interning variables by name.
///
/// Quantifiers are inferred when [`RuleBuilder::build`] runs: a variable is
/// universal iff it occurs in the body; head-only variables are existential.
///
/// ```
/// use chasekit_core::{Program, RuleBuilder};
///
/// let mut program = Program::new();
/// let person = program.vocab.declare_pred("person", 1).unwrap();
/// let has_father = program.vocab.declare_pred("hasFather", 2).unwrap();
///
/// let mut r = RuleBuilder::new();
/// let x = r.var("X");
/// let y = r.var("Y");
/// r.body_atom(person, vec![x]);
/// r.head_atom(has_father, vec![x, y]);
/// r.head_atom(person, vec![y]);
/// program.add_rule(r.build().unwrap()).unwrap();
/// assert!(program.rules()[0].is_simple_linear());
/// ```
#[derive(Debug, Default)]
pub struct RuleBuilder {
    var_names: Vec<String>,
    body: Vec<Atom>,
    head: Vec<Atom>,
    fresh: usize,
}

impl RuleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable by name, returning its term.
    pub fn var(&mut self, name: &str) -> Term {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return Term::Var(crate::ids::VarId::from_index(i));
        }
        let id = crate::ids::VarId::from_index(self.var_names.len());
        self.var_names.push(name.to_owned());
        Term::Var(id)
    }

    /// Creates a fresh variable distinct from all named ones.
    pub fn fresh_var(&mut self) -> Term {
        loop {
            self.fresh += 1;
            let name = format!("_G{}", self.fresh);
            if !self.var_names.contains(&name) {
                return self.var(&name);
            }
        }
    }

    /// Appends a body atom.
    pub fn body_atom(&mut self, pred: PredId, args: Vec<Term>) -> &mut Self {
        self.body.push(Atom::new(pred, args));
        self
    }

    /// Appends a head atom.
    pub fn head_atom(&mut self, pred: PredId, args: Vec<Term>) -> &mut Self {
        self.head.push(Atom::new(pred, args));
        self
    }

    /// Finalizes the rule, inferring quantifiers.
    pub fn build(self) -> Result<Tgd, CoreError> {
        let mut in_body = vec![false; self.var_names.len()];
        for a in &self.body {
            for v in a.vars() {
                in_body[v.index()] = true;
            }
        }
        let vars: Vec<VarInfo> = self
            .var_names
            .into_iter()
            .enumerate()
            .map(|(i, name)| VarInfo {
                name,
                quantifier: if in_body[i] {
                    Quantifier::Universal
                } else {
                    Quantifier::Existential
                },
            })
            .collect();
        Tgd::new(self.body, self.head, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_quantifiers() {
        let mut p = Program::new();
        let e = p.vocab.declare_pred("e", 2).unwrap();
        let mut r = RuleBuilder::new();
        let x = r.var("X");
        let y = r.var("Y");
        let z = r.var("Z");
        r.body_atom(e, vec![x, y]);
        r.head_atom(e, vec![y, z]);
        let rule = r.build().unwrap();
        assert_eq!(rule.frontier().len(), 1); // Y
        assert_eq!(rule.existentials().len(), 1); // Z
        p.add_rule(rule).unwrap();
        assert_eq!(p.class(), RuleClass::SimpleLinear);
    }

    #[test]
    fn add_rule_checks_arity() {
        let mut p = Program::new();
        let e = p.vocab.declare_pred("e", 2).unwrap();
        let mut r = RuleBuilder::new();
        let x = r.var("X");
        r.body_atom(e, vec![x]); // wrong arity
        r.head_atom(e, vec![x, x]);
        let rule = r.build().unwrap();
        assert!(matches!(p.add_rule(rule), Err(CoreError::ArityMismatch { .. })));
    }

    #[test]
    fn add_fact_requires_ground() {
        let mut p = Program::new();
        let e = p.vocab.declare_pred("e", 2).unwrap();
        let a = p.vocab.intern_const("a");
        p.add_fact(Atom::new(e, vec![Term::Const(a), Term::Const(a)])).unwrap();
        assert_eq!(p.facts().len(), 1);
        let bad = Atom::new(e, vec![Term::Var(crate::ids::VarId(0)), Term::Const(a)]);
        assert!(matches!(p.add_fact(bad), Err(CoreError::NonGroundFact { .. })));
    }

    #[test]
    fn rule_constants_are_deduplicated_and_sorted() {
        let mut p = Program::new();
        let e = p.vocab.declare_pred("e", 2).unwrap();
        let a = p.vocab.intern_const("a");
        let b = p.vocab.intern_const("b");
        let mut r = RuleBuilder::new();
        let x = r.var("X");
        r.body_atom(e, vec![x, Term::Const(b)]);
        r.head_atom(e, vec![Term::Const(a), Term::Const(b)]);
        p.add_rule(r.build().unwrap()).unwrap();
        assert_eq!(p.rule_constants(), vec![a, b]);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut r = RuleBuilder::new();
        let f1 = r.fresh_var();
        let f2 = r.fresh_var();
        assert_ne!(f1, f2);
    }

    #[test]
    fn rule_predicates_collects_all() {
        let mut p = Program::new();
        let e = p.vocab.declare_pred("e", 2).unwrap();
        let q = p.vocab.declare_pred("q", 1).unwrap();
        let _unused = p.vocab.declare_pred("unused", 1).unwrap();
        let mut r = RuleBuilder::new();
        let x = r.var("X");
        let y = r.var("Y");
        r.body_atom(e, vec![x, y]);
        r.head_atom(q, vec![y]);
        p.add_rule(r.build().unwrap()).unwrap();
        assert_eq!(p.rule_predicates(), vec![e, q]);
    }
}
