//! # chasekit-core
//!
//! Core data model for existential rules (tuple-generating dependencies):
//! terms, atoms, rules with syntactic classification (simple-linear ⊊ linear
//! ⊊ guarded), a textual rule format, indexed instances, a backtracking
//! homomorphism engine, and critical-instance construction.
//!
//! This crate is the foundation of a reproduction of *"Chase Termination for
//! Guarded Existential Rules"* (Calautti, Gottlob, Pieris; PODS 2015). The
//! chase engines live in `chasekit-engine`; the termination procedures in
//! `chasekit-termination`.
//!
//! ## Quick example
//!
//! ```
//! use chasekit_core::{Program, RuleClass};
//!
//! let program = Program::parse(
//!     "person(X) -> hasFather(X, Y), person(Y).",
//! )
//! .unwrap();
//! assert_eq!(program.class(), RuleClass::SimpleLinear);
//! assert!(program.rules()[0].is_guarded());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod critical;
pub mod display;
pub mod error;
pub mod fxhash;
pub mod homomorphism;
pub mod ids;
pub mod instance;
pub mod parser;
pub mod program;
pub mod rule;
pub mod term;
pub mod vocab;

pub use atom::{Atom, AtomRef};
pub use critical::CriticalInstance;
pub use error::{CoreError, ParseError};
pub use fxhash::{FxHashMap, FxHashSet};
pub use homomorphism::{
    exists_extension, exists_extension_scratch, find_all_homs, for_each_hom, for_each_hom_scratch,
    for_each_hom_view, hom_equivalent, instance_hom_exists, InstanceView, MatchScratch,
    Substitution,
};
pub use ids::{AtomId, ConstId, NullId, PredId, Symbol, VarId};
pub use instance::Instance;
pub use program::{Program, RuleBuilder};
pub use rule::{Quantifier, RuleClass, Tgd, VarInfo};
pub use term::Term;
pub use vocab::{PredDecl, SymbolTable, Vocabulary};
