//! Atoms: a predicate applied to a tuple of terms.

use crate::ids::{NullId, PredId, VarId};
use crate::term::Term;

/// An atom `p(t1, ..., tk)`.
///
/// Atoms are used both inside rules (where arguments may be variables) and
/// inside instances (where arguments are ground: constants and nulls).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// The argument tuple; its length must equal the predicate's arity.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates a new atom.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The number of argument positions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether every argument is ground (constant or null).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_ground())
    }

    /// Iterates over the distinct variables of the atom, in first-occurrence
    /// order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = *t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Iterates over the distinct nulls of the atom, in first-occurrence
    /// order.
    pub fn nulls(&self) -> Vec<NullId> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Null(n) = *t {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Whether any variable occurs twice in the argument tuple.
    pub fn has_repeated_var(&self) -> bool {
        for (i, t) in self.args.iter().enumerate() {
            if let Term::Var(v) = *t {
                if self.args[i + 1..].iter().any(|u| u.as_var() == Some(v)) {
                    return true;
                }
            }
        }
        false
    }

    /// Applies `f` to every argument, producing a new atom.
    pub fn map_args(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }

    /// Returns `true` if the atom mentions the given term.
    pub fn mentions(&self, t: Term) -> bool {
        self.args.contains(&t)
    }

    /// A borrowed view of the atom.
    #[inline]
    pub fn as_ref(&self) -> AtomRef<'_> {
        AtomRef { pred: self.pred, args: &self.args }
    }
}

/// A borrowed atom: a predicate plus an argument slice.
///
/// [`crate::Instance`] stores atoms interned into a shared term arena, so
/// resolving an id yields this zero-copy view instead of an owned
/// [`Atom`]. It is `Copy` (two words) and compares equal to owned atoms
/// with the same predicate and arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomRef<'a> {
    /// The predicate.
    pub pred: PredId,
    /// The argument tuple, borrowed from the owning arena.
    pub args: &'a [Term],
}

impl AtomRef<'_> {
    /// The number of argument positions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether every argument is ground (constant or null).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_ground())
    }

    /// Iterates over the distinct nulls of the atom, in first-occurrence
    /// order.
    pub fn nulls(&self) -> Vec<NullId> {
        let mut out = Vec::new();
        for t in self.args {
            if let Term::Null(n) = *t {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Returns `true` if the atom mentions the given term.
    pub fn mentions(&self, t: Term) -> bool {
        self.args.contains(&t)
    }

    /// Applies `f` to every argument, producing an owned atom.
    pub fn map_args(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }

    /// Copies the view into an owned [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom { pred: self.pred, args: self.args.to_vec() }
    }
}

impl PartialEq<Atom> for AtomRef<'_> {
    fn eq(&self, other: &Atom) -> bool {
        self.pred == other.pred && self.args == other.args.as_slice()
    }
}

impl PartialEq<AtomRef<'_>> for Atom {
    fn eq(&self, other: &AtomRef<'_>) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConstId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }

    #[test]
    fn groundness() {
        let a = Atom::new(PredId(0), vec![c(0), n(1)]);
        assert!(a.is_ground());
        let b = Atom::new(PredId(0), vec![c(0), v(0)]);
        assert!(!b.is_ground());
    }

    #[test]
    fn vars_in_first_occurrence_order_without_duplicates() {
        let a = Atom::new(PredId(0), vec![v(2), v(0), v(2), c(1)]);
        assert_eq!(a.vars(), vec![VarId(2), VarId(0)]);
    }

    #[test]
    fn nulls_in_first_occurrence_order_without_duplicates() {
        let a = Atom::new(PredId(0), vec![n(5), c(0), n(5), n(1)]);
        assert_eq!(a.nulls(), vec![NullId(5), NullId(1)]);
    }

    #[test]
    fn repeated_variable_detection() {
        assert!(Atom::new(PredId(0), vec![v(0), v(0)]).has_repeated_var());
        assert!(!Atom::new(PredId(0), vec![v(0), v(1)]).has_repeated_var());
        // Repeated constants are not repeated variables.
        assert!(!Atom::new(PredId(0), vec![c(0), c(0)]).has_repeated_var());
    }

    #[test]
    fn map_args_substitutes() {
        let a = Atom::new(PredId(0), vec![v(0), c(1)]);
        let b = a.map_args(|t| if t == v(0) { n(9) } else { t });
        assert_eq!(b.args, vec![n(9), c(1)]);
        assert_eq!(b.pred, a.pred);
    }

    #[test]
    fn mentions_checks_membership() {
        let a = Atom::new(PredId(0), vec![n(1), c(2)]);
        assert!(a.mentions(n(1)));
        assert!(!a.mentions(n(2)));
    }
}
