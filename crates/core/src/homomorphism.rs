//! Homomorphisms: matching conjunctions of atoms against instances.
//!
//! This is the chase's inner loop. The matcher is a backtracking join with
//! dynamic atom ordering: at every step it picks the remaining body atom
//! with the fewest candidate facts, found through the instance's
//! `(predicate, position, term)` postings.

use std::ops::ControlFlow;

use crate::atom::{Atom, AtomRef};
use crate::ids::{AtomId, VarId};
use crate::instance::Instance;
use crate::term::Term;

/// A partial assignment of rule variables to ground terms.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Substitution {
    slots: Vec<Option<Term>>,
}

impl Substitution {
    /// Creates an empty substitution over `var_count` variables.
    pub fn new(var_count: usize) -> Self {
        Substitution { slots: vec![None; var_count] }
    }

    /// Clears all bindings and resizes to `var_count` slots, reusing the
    /// existing allocation.
    #[inline]
    pub fn reset(&mut self, var_count: usize) {
        self.slots.clear();
        self.slots.resize(var_count, None);
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation.
    #[inline]
    pub fn copy_from(&mut self, other: &Substitution) {
        self.slots.clear();
        self.slots.extend_from_slice(&other.slots);
    }

    /// Returns the binding of `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<Term> {
        self.slots[v.index()]
    }

    /// Binds `v` to `t`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is already bound or `t` is not ground.
    #[inline]
    pub fn bind(&mut self, v: VarId, t: Term) {
        debug_assert!(self.slots[v.index()].is_none(), "double bind of {v:?}");
        debug_assert!(t.is_ground(), "binding to non-ground term");
        self.slots[v.index()] = Some(t);
    }

    /// Removes the binding of `v`.
    #[inline]
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
    }

    /// Applies the substitution to a term. Unbound variables stay variables.
    #[inline]
    pub fn apply(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.slots[v.index()].unwrap_or(t),
            other => other,
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        a.map_args(|t| self.apply(t))
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the substitution has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The bindings restricted to `vars`, in the order given.
    ///
    /// # Panics
    ///
    /// Panics if one of `vars` is unbound.
    pub fn project(&self, vars: &[VarId]) -> Vec<Term> {
        vars.iter()
            .map(|&v| self.slots[v.index()].expect("projected variable must be bound"))
            .collect()
    }
}

/// A read-only, possibly length-limited view of an [`Instance`].
///
/// The parallel-round chase matches rule bodies on worker threads against
/// the instance *as it stood at a specific application boundary*. Atom ids
/// are dense and monotone in insertion order, and every posting list the
/// matcher consults is in insertion order too, so "the instance after its
/// first `len` atoms" is exactly "every posting truncated to ids below
/// `len`" — a zero-copy snapshot. A full-length view behaves identically
/// to matching against the instance itself.
///
/// Views are `Copy` and borrow the instance immutably, so any number of
/// them can be handed to worker threads at once (`Instance` is `Sync`).
#[derive(Debug, Clone, Copy)]
pub struct InstanceView<'a> {
    instance: &'a Instance,
    len: usize,
}

impl<'a> InstanceView<'a> {
    /// A view of the whole instance as it currently stands.
    pub fn full(instance: &'a Instance) -> Self {
        // The horizon is an *id* bound, so it lives in slab space: after
        // retractions the live count undershoots the id high-water mark
        // and would wrongly hide the newest live atoms.
        InstanceView { instance, len: instance.slab_len() }
    }

    /// A view of the first `len` slab slots (clamped to the current slab
    /// length): the instance exactly as it stood when its `len`-th atom
    /// had just been inserted, minus anything retracted since.
    pub fn prefix(instance: &'a Instance, len: usize) -> Self {
        InstanceView { instance, len: len.min(instance.slab_len()) }
    }

    /// Id horizon of the view (a bound on visible atom ids, not a count
    /// of live atoms).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view shows no atoms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolves a visible id to a zero-copy view of its atom.
    #[inline]
    pub fn atom(&self, id: AtomId) -> AtomRef<'a> {
        debug_assert!(id.index() < self.len, "atom {id:?} is beyond the view horizon");
        self.instance.atom(id)
    }

    /// Truncates a posting list (ascending ids) to the view horizon.
    #[inline]
    fn clip(&self, posting: &'a [AtomId]) -> &'a [AtomId] {
        // Fast path: the posting is entirely visible (always true for a
        // full view), so skip the binary search.
        match posting.last() {
            Some(last) if last.index() >= self.len => {
                &posting[..posting.partition_point(|id| id.index() < self.len)]
            }
            _ => posting,
        }
    }

    /// Visible ids of atoms with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: crate::ids::PredId) -> &'a [AtomId] {
        self.clip(self.instance.with_pred(pred))
    }

    /// Visible ids of atoms with `term` at `pos` of `pred`.
    pub fn with_pred_pos_term(
        &self,
        pred: crate::ids::PredId,
        pos: usize,
        term: Term,
    ) -> &'a [AtomId] {
        self.clip(self.instance.with_pred_pos_term(pred, pos, term))
    }
}

/// Tries to unify `pattern` (which may contain variables) with the ground
/// atom `fact` under `subst`, pushing new bindings onto `trail`.
///
/// On failure the caller must pop the trail; this function only guarantees
/// that every binding it added is recorded there.
fn unify_atom(
    pattern: &Atom,
    fact: AtomRef<'_>,
    subst: &mut Substitution,
    trail: &mut Vec<VarId>,
) -> bool {
    debug_assert_eq!(pattern.pred, fact.pred);
    debug_assert_eq!(pattern.arity(), fact.arity());
    for (p, f) in pattern.args.iter().zip(fact.args) {
        match *p {
            Term::Var(v) => match subst.get(v) {
                Some(bound) => {
                    if bound != *f {
                        return false;
                    }
                }
                None => {
                    subst.bind(v, *f);
                    trail.push(v);
                }
            },
            ground => {
                if ground != *f {
                    return false;
                }
            }
        }
    }
    true
}

/// Counts how selective each remaining pattern is and returns the candidate
/// atom ids for the most selective access path.
fn candidates<'i>(pattern: &Atom, subst: &Substitution, view: &InstanceView<'i>) -> &'i [AtomId] {
    let mut best: Option<&[AtomId]> = None;
    for (pos, &t) in pattern.args.iter().enumerate() {
        let ground = match t {
            Term::Var(v) => match subst.get(v) {
                Some(g) => g,
                None => continue,
            },
            g => g,
        };
        let posting = view.with_pred_pos_term(pattern.pred, pos, ground);
        if best.is_none_or(|b| posting.len() < b.len()) {
            best = Some(posting);
        }
    }
    best.unwrap_or_else(|| view.with_pred(pattern.pred))
}

/// Reusable matcher state: substitution slots, the remaining-atom
/// permutation, and the binding trail.
///
/// Enumeration through the `_scratch` entry points resets and reuses these
/// buffers, so steady-state matching performs no heap allocation at all —
/// each chase worker (and the sequential engine) owns one scratch for its
/// whole run. A fresh `MatchScratch::default()` is equally valid; the
/// scratch-free wrappers construct one per call.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    subst: Substitution,
    remaining: Vec<usize>,
    trail: Vec<VarId>,
}

/// Enumerates homomorphisms from the conjunction `atoms` into `instance`.
///
/// * `var_count` — number of variable slots (from the owning rule).
/// * `init` — optional partial substitution to extend (used for head
///   satisfaction checks, where the frontier is pre-bound).
/// * `pinned` — optional requirement that `atoms[i]` maps exactly to the
///   instance atom `id` (used for delta-driven trigger generation).
/// * `f` — called once per complete homomorphism; return
///   `ControlFlow::Break(())` to stop early.
///
/// Returns `true` if enumeration ran to completion, `false` if `f` broke.
pub fn for_each_hom(
    atoms: &[Atom],
    var_count: usize,
    instance: &Instance,
    init: Option<&Substitution>,
    pinned: Option<(usize, AtomId)>,
    f: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
) -> bool {
    for_each_hom_view(atoms, var_count, &InstanceView::full(instance), init, pinned, f)
}

/// [`for_each_hom`] against an [`InstanceView`]: matching sees only the
/// atoms visible through the view. With a prefix view this reproduces, to
/// the enumeration order, exactly what [`for_each_hom`] returned when the
/// instance had that many atoms — the property the parallel-round chase
/// relies on for bit-identical trigger discovery on worker threads.
pub fn for_each_hom_view(
    atoms: &[Atom],
    var_count: usize,
    view: &InstanceView<'_>,
    init: Option<&Substitution>,
    pinned: Option<(usize, AtomId)>,
    f: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
) -> bool {
    let mut scratch = MatchScratch::default();
    for_each_hom_scratch(atoms, var_count, view, init, pinned, &mut scratch, f)
}

/// [`for_each_hom_view`] with caller-owned scratch buffers: identical
/// enumeration, zero allocation once the scratch has warmed up.
pub fn for_each_hom_scratch(
    atoms: &[Atom],
    var_count: usize,
    view: &InstanceView<'_>,
    init: Option<&Substitution>,
    pinned: Option<(usize, AtomId)>,
    scratch: &mut MatchScratch,
    f: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
) -> bool {
    let MatchScratch { subst, remaining, trail } = scratch;
    match init {
        Some(s) => {
            debug_assert_eq!(s.len(), var_count);
            subst.copy_from(s);
        }
        None => subst.reset(var_count),
    }
    remaining.clear();
    remaining.extend(0..atoms.len());
    trail.clear();

    // Pin first if requested: unify atoms[i] with the given fact up front.
    if let Some((idx, fact_id)) = pinned {
        let fact = view.atom(fact_id);
        if fact.pred != atoms[idx].pred || fact.arity() != atoms[idx].arity() {
            return true;
        }
        let mark = trail.len();
        if !unify_atom(&atoms[idx], fact, subst, trail) {
            for v in trail.drain(mark..) {
                subst.unbind(v);
            }
            return true;
        }
        remaining.retain(|&i| i != idx);
    }

    fn recurse(
        atoms: &[Atom],
        remaining: &mut Vec<usize>,
        subst: &mut Substitution,
        trail: &mut Vec<VarId>,
        view: &InstanceView<'_>,
        f: &mut dyn FnMut(&Substitution) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if remaining.is_empty() {
            return f(subst);
        }
        // Pick the most selective remaining atom.
        let (slot, _) = remaining
            .iter()
            .enumerate()
            .map(|(slot, &i)| (slot, candidates(&atoms[i], subst, view).len()))
            .min_by_key(|&(_, n)| n)
            .expect("remaining is non-empty");
        let atom_idx = remaining.swap_remove(slot);
        // The posting borrows the instance, not the substitution, so it can
        // be walked in place while bindings change — no copy needed.
        let cands = candidates(&atoms[atom_idx], subst, view);

        for &fact_id in cands {
            let fact = view.atom(fact_id);
            if fact.arity() != atoms[atom_idx].arity() {
                continue;
            }
            let mark = trail.len();
            if unify_atom(&atoms[atom_idx], fact, subst, trail)
                && recurse(atoms, remaining, subst, trail, view, f).is_break()
            {
                for v in trail.drain(mark..) {
                    subst.unbind(v);
                }
                // Restore `remaining` before unwinding.
                remaining.push(atom_idx);
                let last = remaining.len() - 1;
                remaining.swap(slot, last);
                return ControlFlow::Break(());
            }
            for v in trail.drain(mark..) {
                subst.unbind(v);
            }
        }
        remaining.push(atom_idx);
        let last = remaining.len() - 1;
        remaining.swap(slot, last);
        ControlFlow::Continue(())
    }

    recurse(atoms, remaining, subst, trail, view, f).is_continue()
}

/// Collects all homomorphisms from `atoms` into `instance`.
pub fn find_all_homs(
    atoms: &[Atom],
    var_count: usize,
    instance: &Instance,
    init: Option<&Substitution>,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_hom(atoms, var_count, instance, init, None, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Whether some extension of `init` maps every atom of `atoms` into
/// `instance` (the restricted chase's head-satisfaction test).
pub fn exists_extension(
    atoms: &[Atom],
    var_count: usize,
    instance: &Instance,
    init: &Substitution,
) -> bool {
    let mut scratch = MatchScratch::default();
    exists_extension_scratch(atoms, var_count, instance, init, &mut scratch)
}

/// [`exists_extension`] with caller-owned scratch buffers.
pub fn exists_extension_scratch(
    atoms: &[Atom],
    var_count: usize,
    instance: &Instance,
    init: &Substitution,
    scratch: &mut MatchScratch,
) -> bool {
    !for_each_hom_scratch(
        atoms,
        var_count,
        &InstanceView::full(instance),
        Some(init),
        None,
        scratch,
        &mut |_| ControlFlow::Break(()),
    )
}

/// Whether there is a homomorphism from `src` to `dst`: a mapping of nulls
/// to terms (identity on constants) under which every atom of `src` is in
/// `dst`. Used to verify universality of chase results.
pub fn instance_hom_exists(src: &Instance, dst: &Instance) -> bool {
    // Reinterpret src's nulls as variables (null ids may be sparse, so remap
    // densely first).
    let mut null_to_var: crate::fxhash::FxHashMap<crate::ids::NullId, VarId> =
        crate::fxhash::FxHashMap::default();
    let mut patterns = Vec::with_capacity(src.len());
    for (_, a) in src.iter() {
        patterns.push(a.map_args(|t| match t {
            Term::Null(n) => {
                let next = VarId::from_index(null_to_var.len());
                Term::Var(*null_to_var.entry(n).or_insert(next))
            }
            other => other,
        }));
    }
    let var_count = null_to_var.len();
    if patterns.is_empty() {
        return true;
    }
    !for_each_hom(&patterns, var_count, dst, None, None, &mut |_| {
        ControlFlow::Break(())
    })
}

/// Whether `src` and `dst` are homomorphically equivalent.
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    instance_hom_exists(a, b) && instance_hom_exists(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConstId, NullId, PredId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    fn edge_instance(edges: &[(u32, u32)]) -> Instance {
        Instance::from_atoms(edges.iter().map(|&(a, b)| atom(0, vec![c(a), c(b)])))
    }

    #[test]
    fn single_atom_matching() {
        let inst = edge_instance(&[(0, 1), (1, 2), (2, 0)]);
        let homs = find_all_homs(&[atom(0, vec![v(0), v(1)])], 2, &inst, None);
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn join_via_shared_variable() {
        // path of length 2: e(X, Y), e(Y, Z)
        let inst = edge_instance(&[(0, 1), (1, 2), (1, 3)]);
        let body = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let homs = find_all_homs(&body, 3, &inst, None);
        // 0->1->2, 0->1->3
        assert_eq!(homs.len(), 2);
        for h in &homs {
            assert_eq!(h.get(VarId(0)), Some(c(0)));
            assert_eq!(h.get(VarId(1)), Some(c(1)));
        }
    }

    #[test]
    fn repeated_variable_requires_equal_args() {
        let mut inst = edge_instance(&[(0, 1)]);
        inst.insert(atom(0, vec![c(5), c(5)]));
        let homs = find_all_homs(&[atom(0, vec![v(0), v(0)])], 1, &inst, None);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(VarId(0)), Some(c(5)));
    }

    #[test]
    fn constants_in_patterns_filter() {
        let inst = edge_instance(&[(0, 1), (0, 2), (3, 1)]);
        let homs = find_all_homs(&[atom(0, vec![c(0), v(0)])], 1, &inst, None);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn pinned_atom_restricts_enumeration() {
        let inst = edge_instance(&[(0, 1), (1, 2)]);
        let body = [atom(0, vec![v(0), v(1)])];
        let pinned_id = inst.id_of(&atom(0, vec![c(1), c(2)])).unwrap();
        let mut seen = Vec::new();
        for_each_hom(&body, 2, &inst, None, Some((0, pinned_id)), &mut |s| {
            seen.push((s.get(VarId(0)).unwrap(), s.get(VarId(1)).unwrap()));
            ControlFlow::Continue(())
        });
        assert_eq!(seen, vec![(c(1), c(2))]);
    }

    #[test]
    fn pinned_atom_participates_in_join() {
        let inst = edge_instance(&[(0, 1), (1, 2), (5, 6)]);
        let body = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let pinned_id = inst.id_of(&atom(0, vec![c(1), c(2)])).unwrap();
        // Pin the *second* body atom to e(1,2): only 0->1->2 qualifies.
        let mut count = 0;
        for_each_hom(&body, 3, &inst, None, Some((1, pinned_id)), &mut |s| {
            assert_eq!(s.get(VarId(0)), Some(c(0)));
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn init_substitution_is_respected() {
        let inst = edge_instance(&[(0, 1), (2, 1)]);
        let mut init = Substitution::new(2);
        init.bind(VarId(0), c(2));
        let homs = find_all_homs(&[atom(0, vec![v(0), v(1)])], 2, &inst, Some(&init));
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(VarId(1)), Some(c(1)));
    }

    #[test]
    fn exists_extension_checks_head_satisfaction() {
        // Head: e(Y, Z) with Y pre-bound.
        let inst = edge_instance(&[(0, 1)]);
        let head = [atom(0, vec![v(0), v(1)])];
        let mut init = Substitution::new(2);
        init.bind(VarId(0), c(0));
        assert!(exists_extension(&head, 2, &inst, &init));
        let mut init2 = Substitution::new(2);
        init2.bind(VarId(0), c(1));
        assert!(!exists_extension(&head, 2, &inst, &init2));
    }

    #[test]
    fn early_break_stops_enumeration() {
        let inst = edge_instance(&[(0, 1), (1, 2), (2, 3)]);
        let mut count = 0;
        let completed = for_each_hom(&[atom(0, vec![v(0), v(1)])], 2, &inst, None, None, &mut |_| {
            count += 1;
            ControlFlow::Break(())
        });
        assert!(!completed);
        assert_eq!(count, 1);
    }

    #[test]
    fn zero_ary_atoms_match_trivially() {
        let inst = Instance::from_atoms([atom(7, vec![])]);
        let homs = find_all_homs(&[atom(7, vec![])], 0, &inst, None);
        assert_eq!(homs.len(), 1);
        let none = find_all_homs(&[atom(8, vec![])], 0, &inst, None);
        assert!(none.is_empty());
    }

    #[test]
    fn instance_hom_maps_nulls_to_anything() {
        // src: e(z0, z1); dst: e(a, b) — hom exists.
        let src = Instance::from_atoms([atom(0, vec![n(0), n(1)])]);
        let dst = edge_instance(&[(0, 1)]);
        assert!(instance_hom_exists(&src, &dst));
        // Constants map only to themselves.
        let src2 = edge_instance(&[(7, 8)]);
        assert!(!instance_hom_exists(&src2, &dst));
    }

    #[test]
    fn hom_equivalence_of_a_cycle_and_its_double() {
        // 2-cycle of nulls vs 4-cycle of nulls: homomorphically equivalent
        // (both map onto the 2-cycle... the 4-cycle maps to 2-cycle; 2-cycle
        // maps into 4-cycle? A 2-cycle needs e(x,y),e(y,x); in the 4-cycle
        // there is no such pair, so equivalence must FAIL one direction.)
        let two = Instance::from_atoms([atom(0, vec![n(0), n(1)]), atom(0, vec![n(1), n(0)])]);
        let four = Instance::from_atoms([
            atom(0, vec![n(0), n(1)]),
            atom(0, vec![n(1), n(2)]),
            atom(0, vec![n(2), n(3)]),
            atom(0, vec![n(3), n(0)]),
        ]);
        assert!(instance_hom_exists(&four, &two));
        assert!(!instance_hom_exists(&two, &four));
        assert!(!hom_equivalent(&two, &four));
    }

    #[test]
    fn prefix_view_reproduces_the_historical_instance() {
        // Insert edges one at a time; a prefix view of the final instance
        // must enumerate exactly the homs the growing instance did.
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (1, 3), (3, 0)];
        let body = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let full = edge_instance(&edges);
        for len in 0..=edges.len() {
            let historical = edge_instance(&edges[..len]);
            let expected = find_all_homs(&body, 3, &historical, None);
            let view = InstanceView::prefix(&full, len);
            let mut got = Vec::new();
            for_each_hom_view(&body, 3, &view, None, None, &mut |s| {
                got.push(s.clone());
                ControlFlow::Continue(())
            });
            assert_eq!(got, expected, "prefix length {len}");
        }
    }

    #[test]
    fn prefix_view_hides_later_atoms_from_pinned_matching() {
        let inst = edge_instance(&[(0, 1), (1, 2), (2, 3)]);
        let body = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let pinned_id = inst.id_of(&atom(0, vec![c(0), c(1)])).unwrap();
        // Horizon 2: e(2,3) is invisible, so only 0->1->2 joins.
        let view = InstanceView::prefix(&inst, 2);
        let mut count = 0;
        for_each_hom_view(&body, 3, &view, None, Some((0, pinned_id)), &mut |s| {
            assert_eq!(s.get(VarId(2)), Some(c(2)));
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
        // Full view additionally sees 0->1->2 and nothing else new for this
        // pin (e(1,2),e(2,3) is pinned elsewhere), so counts match here; pin
        // the middle edge to observe the difference.
        let mid = inst.id_of(&atom(0, vec![c(1), c(2)])).unwrap();
        let mut clipped = 0;
        for_each_hom_view(&body, 3, &InstanceView::prefix(&inst, 2), None, Some((1, mid)), &mut |_| {
            clipped += 1;
            ControlFlow::Continue(())
        });
        let mut unclipped = 0;
        for_each_hom_view(&body, 3, &InstanceView::full(&inst), None, Some((0, mid)), &mut |_| {
            unclipped += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(clipped, 1);
        assert_eq!(unclipped, 1);
    }

    #[test]
    fn views_are_cheap_copies_and_clamp_their_length() {
        let inst = edge_instance(&[(0, 1), (1, 2)]);
        let view = InstanceView::prefix(&inst, 99);
        let copy = view;
        assert_eq!(copy.len(), 2);
        assert_eq!(view.with_pred(PredId(0)).len(), 2);
        assert!(InstanceView::prefix(&inst, 0).is_empty());
        assert_eq!(InstanceView::prefix(&inst, 1).with_pred(PredId(0)).len(), 1);
    }

    #[test]
    fn projection_extracts_bound_terms() {
        let mut s = Substitution::new(3);
        s.bind(VarId(0), c(1));
        s.bind(VarId(2), c(9));
        assert_eq!(s.project(&[VarId(2), VarId(0)]), vec![c(9), c(1)]);
    }
}
