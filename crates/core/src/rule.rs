//! Tuple-generating dependencies (TGDs, a.k.a. existential rules) and their
//! syntactic classification.
//!
//! A TGD has the logical form
//! `∀X ∀Y ( φ(X, Y) → ∃Z ψ(Y, Z) )` where `φ` (the *body*) and `ψ` (the
//! *head*) are conjunctions of atoms. Following the paper:
//!
//! * the **frontier** is the set of universally quantified variables that
//!   occur in the head (`Y` above);
//! * a TGD is **linear** if its body consists of a single atom;
//! * a TGD is **simple linear** if it is linear and no variable is repeated
//!   in the body atom;
//! * a TGD is **guarded** if some body atom (a *guard*) contains every
//!   universally quantified variable of the rule.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::ids::VarId;
use crate::term::Term;

/// Quantification of a rule variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Universally quantified: occurs in the body.
    Universal,
    /// Existentially quantified: occurs in the head only.
    Existential,
}

/// Metadata for one rule variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source-level name (used for display; synthesized names for
    /// programmatically built rules).
    pub name: String,
    /// Universal or existential.
    pub quantifier: Quantifier,
}

/// A tuple-generating dependency.
///
/// Construct with [`Tgd::new`], which validates safety and computes the
/// derived metadata (frontier, guard, classification flags).
#[derive(Debug, Clone)]
pub struct Tgd {
    body: Vec<Atom>,
    head: Vec<Atom>,
    vars: Vec<VarInfo>,
    frontier: Vec<VarId>,
    existential: Vec<VarId>,
    guard: Option<usize>,
}

impl Tgd {
    /// Builds and validates a TGD.
    ///
    /// `vars` must cover every `VarId` used in `body` and `head` (ids index
    /// into it). Validation enforces:
    /// * non-empty body and head;
    /// * safety: every universal variable occurring in the head occurs in
    ///   the body;
    /// * consistency: variables marked existential do not occur in the body,
    ///   and variables marked universal occur in the body.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>, vars: Vec<VarInfo>) -> Result<Self, CoreError> {
        if body.is_empty() {
            return Err(CoreError::EmptyRule { rule: "<tgd>".into(), side: "body" });
        }
        if head.is_empty() {
            return Err(CoreError::EmptyRule { rule: "<tgd>".into(), side: "head" });
        }

        let mut in_body = vec![false; vars.len()];
        for a in &body {
            for v in a.vars() {
                in_body[v.index()] = true;
            }
        }
        let mut in_head = vec![false; vars.len()];
        for a in &head {
            for v in a.vars() {
                in_head[v.index()] = true;
            }
        }

        for (i, info) in vars.iter().enumerate() {
            match info.quantifier {
                Quantifier::Universal => {
                    if !in_body[i] {
                        return Err(CoreError::UnsafeRule {
                            rule: "<tgd>".into(),
                            variable: info.name.clone(),
                        });
                    }
                }
                Quantifier::Existential => {
                    if in_body[i] {
                        return Err(CoreError::UnsafeRule {
                            rule: "<tgd>".into(),
                            variable: info.name.clone(),
                        });
                    }
                }
            }
        }

        let frontier: Vec<VarId> = (0..vars.len())
            .filter(|&i| vars[i].quantifier == Quantifier::Universal && in_head[i])
            .map(VarId::from_index)
            .collect();
        let existential: Vec<VarId> = (0..vars.len())
            .filter(|&i| vars[i].quantifier == Quantifier::Existential)
            .map(VarId::from_index)
            .collect();

        // A guard is a body atom containing every universal variable.
        let universal_count = vars
            .iter()
            .filter(|v| v.quantifier == Quantifier::Universal)
            .count();
        let guard = body.iter().position(|a| {
            let mut seen = vec![false; vars.len()];
            let mut count = 0usize;
            for t in &a.args {
                if let Term::Var(v) = *t {
                    if vars[v.index()].quantifier == Quantifier::Universal && !seen[v.index()] {
                        seen[v.index()] = true;
                        count += 1;
                    }
                }
            }
            count == universal_count
        });

        Ok(Tgd { body, head, vars, frontier, existential, guard })
    }

    /// The body atoms.
    #[inline]
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The head atoms.
    #[inline]
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// Per-variable metadata; `VarId`s index into this slice.
    #[inline]
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Number of rule variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The frontier: universal variables occurring in the head, ascending.
    #[inline]
    pub fn frontier(&self) -> &[VarId] {
        &self.frontier
    }

    /// The existential variables, ascending.
    #[inline]
    pub fn existentials(&self) -> &[VarId] {
        &self.existential
    }

    /// Whether `v` is universally quantified.
    #[inline]
    pub fn is_universal(&self, v: VarId) -> bool {
        self.vars[v.index()].quantifier == Quantifier::Universal
    }

    /// Whether `v` is in the frontier.
    #[inline]
    pub fn is_frontier(&self, v: VarId) -> bool {
        self.frontier.binary_search(&v).is_ok()
    }

    /// Universal variables of the rule (frontier or not), ascending.
    pub fn universals(&self) -> Vec<VarId> {
        (0..self.vars.len())
            .map(VarId::from_index)
            .filter(|&v| self.is_universal(v))
            .collect()
    }

    /// Index (into the body) of a guard atom, if the rule is guarded.
    #[inline]
    pub fn guard_index(&self) -> Option<usize> {
        self.guard
    }

    /// Whether the rule is guarded: some body atom contains all universal
    /// variables.
    #[inline]
    pub fn is_guarded(&self) -> bool {
        self.guard.is_some()
    }

    /// Whether the rule is linear: a single body atom. Linear rules are
    /// trivially guarded.
    #[inline]
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// Whether the rule is simple linear: linear with no repeated variable
    /// in the body atom.
    #[inline]
    pub fn is_simple_linear(&self) -> bool {
        self.is_linear() && !self.body[0].has_repeated_var()
    }

    /// Whether the rule is plain Datalog: no existential variables.
    #[inline]
    pub fn is_datalog(&self) -> bool {
        self.existential.is_empty()
    }

    /// Whether the rule has a single head atom.
    #[inline]
    pub fn is_single_head(&self) -> bool {
        self.head.len() == 1
    }

    /// The positions `(head_atom_index, arg_index)` at which existential
    /// variables occur.
    pub fn existential_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ai, a) in self.head.iter().enumerate() {
            for (pi, t) in a.args.iter().enumerate() {
                if let Term::Var(v) = *t {
                    if !self.is_universal(v) {
                        out.push((ai, pi));
                    }
                }
            }
        }
        out
    }
}

/// Syntactic class of a rule set, ordered from most to least restrictive.
///
/// `SimpleLinear ⊊ Linear ⊊ Guarded ⊊ General` (as classes of rule sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleClass {
    /// Every rule is simple linear.
    SimpleLinear,
    /// Every rule is linear.
    Linear,
    /// Every rule is guarded.
    Guarded,
    /// No structural restriction.
    General,
}

impl RuleClass {
    /// Classifies a set of rules into the most restrictive class containing
    /// all of them.
    pub fn of(rules: &[Tgd]) -> RuleClass {
        if rules.iter().all(Tgd::is_simple_linear) {
            RuleClass::SimpleLinear
        } else if rules.iter().all(Tgd::is_linear) {
            RuleClass::Linear
        } else if rules.iter().all(Tgd::is_guarded) {
            RuleClass::Guarded
        } else {
            RuleClass::General
        }
    }
}

impl std::fmt::Display for RuleClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RuleClass::SimpleLinear => "simple-linear",
            RuleClass::Linear => "linear",
            RuleClass::Guarded => "guarded",
            RuleClass::General => "general",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConstId, PredId};

    fn var_infos(names: &[(&str, Quantifier)]) -> Vec<VarInfo> {
        names
            .iter()
            .map(|(n, q)| VarInfo { name: (*n).into(), quantifier: *q })
            .collect()
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// person(X) -> hasFather(X, Y), person(Y)   (paper, Example 1)
    fn example1() -> Tgd {
        let person = PredId(0);
        let has_father = PredId(1);
        Tgd::new(
            vec![Atom::new(person, vec![v(0)])],
            vec![
                Atom::new(has_father, vec![v(0), v(1)]),
                Atom::new(person, vec![v(1)]),
            ],
            var_infos(&[("X", Quantifier::Universal), ("Y", Quantifier::Existential)]),
        )
        .unwrap()
    }

    #[test]
    fn example1_metadata() {
        let r = example1();
        assert_eq!(r.frontier(), &[VarId(0)]);
        assert_eq!(r.existentials(), &[VarId(1)]);
        assert!(r.is_linear());
        assert!(r.is_simple_linear());
        assert!(r.is_guarded());
        assert!(!r.is_datalog());
        assert!(!r.is_single_head());
        assert_eq!(r.guard_index(), Some(0));
        assert_eq!(r.existential_positions(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        // p(X) -> q(Z) with Z marked universal but absent from the body.
        let err = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0)])],
            vec![Atom::new(PredId(1), vec![v(1)])],
            var_infos(&[("X", Quantifier::Universal), ("Z", Quantifier::Universal)]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnsafeRule { .. }));
    }

    #[test]
    fn existential_in_body_is_rejected() {
        let err = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0)])],
            vec![Atom::new(PredId(1), vec![v(0)])],
            var_infos(&[("X", Quantifier::Existential)]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnsafeRule { .. }));
    }

    #[test]
    fn empty_sides_are_rejected() {
        let e1 = Tgd::new(vec![], vec![Atom::new(PredId(0), vec![])], vec![]).unwrap_err();
        assert!(matches!(e1, CoreError::EmptyRule { side: "body", .. }));
        let e2 = Tgd::new(vec![Atom::new(PredId(0), vec![])], vec![], vec![]).unwrap_err();
        assert!(matches!(e2, CoreError::EmptyRule { side: "head", .. }));
    }

    #[test]
    fn repeated_body_variable_breaks_simplicity_not_linearity() {
        // p(X, X) -> q(X)
        let r = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0), v(0)])],
            vec![Atom::new(PredId(1), vec![v(0)])],
            var_infos(&[("X", Quantifier::Universal)]),
        )
        .unwrap();
        assert!(r.is_linear());
        assert!(!r.is_simple_linear());
        assert!(r.is_guarded());
    }

    #[test]
    fn guardedness_requires_one_atom_with_all_universals() {
        // p(X), q(Y) -> r(X, Y): not guarded.
        let not_guarded = Tgd::new(
            vec![
                Atom::new(PredId(0), vec![v(0)]),
                Atom::new(PredId(1), vec![v(1)]),
            ],
            vec![Atom::new(PredId(2), vec![v(0), v(1)])],
            var_infos(&[("X", Quantifier::Universal), ("Y", Quantifier::Universal)]),
        )
        .unwrap();
        assert!(!not_guarded.is_guarded());
        assert!(!not_guarded.is_linear());

        // r(X, Y), p(X) -> s(X, Y): guarded by the first atom.
        let guarded = Tgd::new(
            vec![
                Atom::new(PredId(2), vec![v(0), v(1)]),
                Atom::new(PredId(0), vec![v(0)]),
            ],
            vec![Atom::new(PredId(3), vec![v(0), v(1)])],
            var_infos(&[("X", Quantifier::Universal), ("Y", Quantifier::Universal)]),
        )
        .unwrap();
        assert_eq!(guarded.guard_index(), Some(0));
    }

    #[test]
    fn guard_with_constants_still_counts() {
        // r(X, c) -> s(X): guard is r(X, c).
        let r = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0), Term::Const(ConstId(0))])],
            vec![Atom::new(PredId(1), vec![v(0)])],
            var_infos(&[("X", Quantifier::Universal)]),
        )
        .unwrap();
        assert!(r.is_guarded());
    }

    #[test]
    fn class_of_rule_sets() {
        let sl = example1();
        let l = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0), v(0)])],
            vec![Atom::new(PredId(1), vec![v(0)])],
            var_infos(&[("X", Quantifier::Universal)]),
        )
        .unwrap();
        let g = Tgd::new(
            vec![
                Atom::new(PredId(2), vec![v(0), v(1)]),
                Atom::new(PredId(0), vec![v(0)]),
            ],
            vec![Atom::new(PredId(3), vec![v(0), v(1)])],
            var_infos(&[("X", Quantifier::Universal), ("Y", Quantifier::Universal)]),
        )
        .unwrap();
        let ng = Tgd::new(
            vec![
                Atom::new(PredId(0), vec![v(0)]),
                Atom::new(PredId(1), vec![v(1)]),
            ],
            vec![Atom::new(PredId(2), vec![v(0), v(1)])],
            var_infos(&[("X", Quantifier::Universal), ("Y", Quantifier::Universal)]),
        )
        .unwrap();

        assert_eq!(RuleClass::of(std::slice::from_ref(&sl)), RuleClass::SimpleLinear);
        assert_eq!(RuleClass::of(&[sl.clone(), l.clone()]), RuleClass::Linear);
        assert_eq!(RuleClass::of(&[sl.clone(), g.clone()]), RuleClass::Guarded);
        assert_eq!(RuleClass::of(&[sl, ng]), RuleClass::General);
        assert_eq!(RuleClass::of(&[]), RuleClass::SimpleLinear);
    }

    #[test]
    fn class_ordering_matches_containment() {
        assert!(RuleClass::SimpleLinear < RuleClass::Linear);
        assert!(RuleClass::Linear < RuleClass::Guarded);
        assert!(RuleClass::Guarded < RuleClass::General);
    }

    #[test]
    fn datalog_and_single_head_flags() {
        let datalog = Tgd::new(
            vec![Atom::new(PredId(0), vec![v(0)])],
            vec![Atom::new(PredId(1), vec![v(0)])],
            var_infos(&[("X", Quantifier::Universal)]),
        )
        .unwrap();
        assert!(datalog.is_datalog());
        assert!(datalog.is_single_head());
        assert!(datalog.existential_positions().is_empty());
    }
}
