//! A small, fast, non-cryptographic hasher in the style of `rustc-hash`.
//!
//! The performance guidance for database-style workloads is to avoid the
//! default SipHash for integer-keyed tables. Rather than pulling an external
//! crate, we implement the classic Fx multiply-rotate-xor mix in ~30 lines.
//! It is *not* HashDoS-resistant; all keys hashed with it in this workspace
//! are internally generated ids, never attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash family (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher; see module docs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        // Mix in the length so zero-padded tails don't collide with
        // genuinely longer inputs ending in zero bytes.
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions expected on tiny dense range");
    }

    #[test]
    fn byte_stream_padding_does_not_collide_with_zero_suffix() {
        let mut h1 = FxHasher::default();
        h1.write(b"abc");
        let mut h2 = FxHasher::default();
        h2.write(b"abc\0\0");
        // Not a strict guarantee of the algorithm, but a regression canary:
        // the chunked tail handling must at least distinguish these.
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
