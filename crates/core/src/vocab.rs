//! The vocabulary: interned strings, predicate declarations, and constants.

use crate::error::CoreError;
use crate::fxhash::FxHashMap;
use crate::ids::{ConstId, PredId, Symbol};

/// A string interner. Symbols are stable for the lifetime of the table.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    strings: Vec<String>,
    lookup: FxHashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len());
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), sym);
        sym
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A predicate declaration: name and arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredDecl {
    /// Interned predicate name.
    pub name: Symbol,
    /// Number of argument positions.
    pub arity: usize,
}

/// The vocabulary shared by a program's rules, facts, and instances:
/// predicate declarations (with arities) and named constants.
///
/// Predicates are declared implicitly on first use; re-declaring with a
/// different arity is an error surfaced by [`Vocabulary::declare_pred`].
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    symbols: SymbolTable,
    preds: Vec<PredDecl>,
    pred_lookup: FxHashMap<Symbol, PredId>,
    consts: Vec<Symbol>,
    const_lookup: FxHashMap<Symbol, ConstId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-resolves) a predicate with the given arity.
    ///
    /// Returns an error if the predicate was previously declared with a
    /// different arity.
    pub fn declare_pred(&mut self, name: &str, arity: usize) -> Result<PredId, CoreError> {
        let sym = self.symbols.intern(name);
        if let Some(&id) = self.pred_lookup.get(&sym) {
            let declared = self.preds[id.index()].arity;
            if declared != arity {
                return Err(CoreError::ArityMismatch {
                    predicate: name.to_owned(),
                    declared,
                    used: arity,
                });
            }
            return Ok(id);
        }
        let id = PredId::from_index(self.preds.len());
        self.preds.push(PredDecl { name: sym, arity });
        self.pred_lookup.insert(sym, id);
        Ok(id)
    }

    /// Looks up a predicate by name.
    pub fn pred(&self, name: &str) -> Option<PredId> {
        let sym = self.symbols.get(name)?;
        self.pred_lookup.get(&sym).copied()
    }

    /// Returns the arity of a predicate.
    #[inline]
    pub fn arity(&self, pred: PredId) -> usize {
        self.preds[pred.index()].arity
    }

    /// Returns the name of a predicate.
    pub fn pred_name(&self, pred: PredId) -> &str {
        self.symbols.resolve(self.preds[pred.index()].name)
    }

    /// Number of declared predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Iterates over all predicate ids.
    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len()).map(PredId::from_index)
    }

    /// Interns a constant, returning its id.
    pub fn intern_const(&mut self, name: &str) -> ConstId {
        let sym = self.symbols.intern(name);
        if let Some(&id) = self.const_lookup.get(&sym) {
            return id;
        }
        let id = ConstId::from_index(self.consts.len());
        self.consts.push(sym);
        self.const_lookup.insert(sym, id);
        id
    }

    /// Looks up a constant by name without interning.
    pub fn constant(&self, name: &str) -> Option<ConstId> {
        let sym = self.symbols.get(name)?;
        self.const_lookup.get(&sym).copied()
    }

    /// Returns the name of a constant.
    pub fn const_name(&self, c: ConstId) -> &str {
        self.symbols.resolve(self.consts[c.index()])
    }

    /// Number of interned constants.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Iterates over all constant ids.
    pub fn consts(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.consts.len()).map(ConstId::from_index)
    }

    /// Maximum arity over all declared predicates (0 for an empty vocabulary).
    pub fn max_arity(&self) -> usize {
        self.preds.iter().map(|p| p.arity).max().unwrap_or(0)
    }

    /// Access to the raw symbol table (for display helpers).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("person");
        let b = t.intern("person");
        assert_eq!(a, b);
        assert_eq!(t.resolve(a), "person");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn predicates_carry_arity() {
        let mut v = Vocabulary::new();
        let p = v.declare_pred("p", 2).unwrap();
        assert_eq!(v.arity(p), 2);
        assert_eq!(v.pred_name(p), "p");
        assert_eq!(v.pred("p"), Some(p));
        assert_eq!(v.pred("q"), None);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut v = Vocabulary::new();
        v.declare_pred("p", 2).unwrap();
        let err = v.declare_pred("p", 3).unwrap_err();
        match err {
            CoreError::ArityMismatch { declared, used, .. } => {
                assert_eq!((declared, used), (2, 3));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn redeclaring_with_same_arity_returns_same_id() {
        let mut v = Vocabulary::new();
        let p1 = v.declare_pred("p", 2).unwrap();
        let p2 = v.declare_pred("p", 2).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(v.pred_count(), 1);
    }

    #[test]
    fn constants_intern_and_resolve() {
        let mut v = Vocabulary::new();
        let a = v.intern_const("alice");
        let b = v.intern_const("bob");
        assert_ne!(a, b);
        assert_eq!(v.intern_const("alice"), a);
        assert_eq!(v.const_name(b), "bob");
        assert_eq!(v.const_count(), 2);
        assert_eq!(v.constant("alice"), Some(a));
        assert_eq!(v.constant("carol"), None);
    }

    #[test]
    fn max_arity_over_declarations() {
        let mut v = Vocabulary::new();
        assert_eq!(v.max_arity(), 0);
        v.declare_pred("p", 2).unwrap();
        v.declare_pred("q", 5).unwrap();
        v.declare_pred("r", 1).unwrap();
        assert_eq!(v.max_arity(), 5);
    }
}
