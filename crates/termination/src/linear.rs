//! Exact chase-termination decision for **linear** TGDs (paper, Theorems 1–3).
//!
//! # The procedure: critical weak/rich acyclicity
//!
//! For linear TGDs (single body atom), the chase's behaviour on an atom
//! depends only on the atom's `Shape` (see [`crate::shape`]) pattern — its constants
//! and null-equality pattern. The procedure:
//!
//! 1. computes all shapes **reachable** from the critical instance
//!    (Marnette: termination on the critical instance ⇔ termination on all
//!    instances, for the o- and so-chase);
//! 2. overlays the weak/rich-acyclicity position graph *on reachable shapes
//!    only*: nodes are `(shape, position)` pairs; **regular** edges follow a
//!    frontier variable from its body position into its head positions;
//!    **special** edges connect trigger-identity positions to the
//!    existential positions of the produced shapes — frontier-variable
//!    positions for the semi-oblivious chase, every universal-variable
//!    position for the oblivious chase (mirroring the WA/RA distinction);
//! 3. answers *non-terminating* iff some cycle passes through a special
//!    edge.
//!
//! **Soundness** (dangerous reachable cycle ⇒ divergence): traverse the
//! cycle; the null born at the special edge's target propagates along the
//! regular path back to the special edge's source position, where it is
//! consumed by a trigger-identity variable — so each traversal is a *new*
//! trigger minting a *fresh* null, forever.
//!
//! **Completeness** (divergence ⇒ dangerous reachable cycle): an infinite
//! chase applies infinitely many distinct triggers over finitely many
//! shapes, so some rule fires with unboundedly many distinct nulls at an
//! identity position; following each such null to its birth (an existential
//! position) and the birth trigger to the older null it consumed yields an
//! infinite genealogy over finitely many `(shape, position)` pairs — which
//! must close a cycle through a special (birth) edge, and every pair on it
//! is reachable because the atoms actually existed.
//!
//! On constant-free **simple linear** rules every position of the (plain)
//! dependency graph is realizable, so this procedure coincides with plain
//! weak/rich acyclicity — exactly the paper's Theorem 1. With constants or
//! repeated body variables, plain WA/RA over-approximate and the shape
//! refinement is strictly sharper (Theorem 2; see the tests).

use chasekit_acyclicity::DiGraph;
use chasekit_core::{
    ConstId, FxHashMap, Program, RuleClass, Term, Tgd, VarId,
};
use chasekit_engine::ChaseVariant;

use crate::shape::{Label, Shape, ShapeInterner};

/// Errors of the linear analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearError {
    /// The rule set is not linear.
    NotLinear,
    /// The analysis only covers the oblivious and semi-oblivious chase.
    UnsupportedVariant,
}

impl std::fmt::Display for LinearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearError::NotLinear => write!(f, "the rule set is not linear"),
            LinearError::UnsupportedVariant => {
                write!(f, "linear analysis supports the oblivious and semi-oblivious chase only")
            }
        }
    }
}

impl std::error::Error for LinearError {}

/// Outcome of the linear analysis.
#[derive(Debug, Clone)]
pub struct LinearDecision {
    /// Whether the chase (of the requested variant) terminates on **all**
    /// databases.
    pub terminates: bool,
    /// Number of reachable shapes explored.
    pub shapes: usize,
    /// Number of `(shape, position)` nodes in the overlay graph.
    pub position_nodes: usize,
    /// Number of overlay edges.
    pub position_edges: usize,
}

/// A matched rule application at the shape level.
struct ShapeStep {
    from: u32,
    /// Children: `(child shape id, per-head-atom info)`.
    children: Vec<ChildInfo>,
    /// Body positions holding frontier variables.
    frontier_positions: Vec<usize>,
    /// Body positions holding any universal variable.
    universal_positions: Vec<usize>,
}

struct ChildInfo {
    to: u32,
    /// `(body position, head position)` pairs for frontier propagation.
    regular: Vec<(usize, usize)>,
    /// Positions of the child holding freshly minted nulls.
    existential_positions: Vec<usize>,
}

/// Pre-canonical label id space for child construction: shape classes keep
/// their ids; fresh existential nulls get ids above this base.
const FRESH_BASE: u32 = 1 << 24;

/// Matches a linear rule's body atom against a shape, returning the
/// variable binding. Shared with the restricted-chase analysis.
pub(crate) fn match_body(
    body: &chasekit_core::Atom,
    shape: &Shape,
) -> Option<FxHashMap<VarId, Label>> {
    if body.pred != shape.pred {
        return None;
    }
    debug_assert_eq!(body.arity(), shape.arity());
    let mut binding: FxHashMap<VarId, Label> = FxHashMap::default();
    for (t, &label) in body.args.iter().zip(&shape.labels) {
        match *t {
            Term::Const(c) => {
                if label != Label::Const(c) {
                    return None;
                }
            }
            Term::Var(v) => match binding.get(&v) {
                Some(&bound) => {
                    if bound != label {
                        return None;
                    }
                }
                None => {
                    binding.insert(v, label);
                }
            },
            Term::Null(_) => unreachable!("rules contain no nulls"),
        }
    }
    Some(binding)
}

/// Applies a matched rule to a shape, producing the child shapes and the
/// propagation bookkeeping.
fn apply_rule(
    rule: &Tgd,
    from: u32,
    binding: &FxHashMap<VarId, Label>,
    interner: &mut ShapeInterner,
    worklist: &mut Vec<u32>,
) -> ShapeStep {
    let body = &rule.body()[0];

    let mut frontier_positions = Vec::new();
    let mut universal_positions = Vec::new();
    for (i, t) in body.args.iter().enumerate() {
        if let Term::Var(v) = *t {
            universal_positions.push(i);
            if rule.is_frontier(v) {
                frontier_positions.push(i);
            }
        }
    }

    let mut children = Vec::with_capacity(rule.head().len());
    for head_atom in rule.head() {
        let mut raw: Vec<Label> = Vec::with_capacity(head_atom.arity());
        let mut existential_positions = Vec::new();
        for (j, t) in head_atom.args.iter().enumerate() {
            match *t {
                Term::Const(c) => raw.push(Label::Const(c)),
                Term::Var(v) => {
                    if rule.is_universal(v) {
                        raw.push(binding[&v]);
                    } else {
                        raw.push(Label::Null(FRESH_BASE + v.0));
                        existential_positions.push(j);
                    }
                }
                Term::Null(_) => unreachable!("rules contain no nulls"),
            }
        }
        let child = Shape::canonicalize(head_atom.pred, &raw);
        let (to, is_new) = interner.intern(child);
        if is_new {
            worklist.push(to);
        }

        // Frontier propagation: body position i of frontier v -> head
        // position j of the same v.
        let mut regular = Vec::new();
        for (i, bt) in body.args.iter().enumerate() {
            let Term::Var(v) = *bt else { continue };
            if !rule.is_frontier(v) {
                continue;
            }
            for (j, ht) in head_atom.args.iter().enumerate() {
                if *ht == Term::Var(v) {
                    regular.push((i, j));
                }
            }
        }

        children.push(ChildInfo { to, regular, existential_positions });
    }

    ShapeStep { from, children, frontier_positions, universal_positions }
}

/// Full analysis result, exposing the reachable shape graph for diagnostics
/// and benchmarks.
pub struct LinearAnalysis {
    interner: ShapeInterner,
    steps: Vec<ShapeStep>,
}

impl LinearAnalysis {
    /// Explores all shapes reachable from the critical instance of
    /// `program`. `standard` switches to the paper's standard-database
    /// critical instance (adds constants 0 and 1 and the reserved facts).
    ///
    /// Fails unless the rule set is linear.
    pub fn explore(program: &Program, standard: bool) -> Result<LinearAnalysis, LinearError> {
        if !matches!(program.class(), RuleClass::SimpleLinear | RuleClass::Linear) {
            return Err(LinearError::NotLinear);
        }

        // Critical constant pool: rule constants plus the fresh ⋆ (plus 0/1
        // when standard). The pool only needs ids that are distinct from
        // each other, so the fresh ones are interned into a clone-free
        // local namespace: ids beyond the program's constant count.
        let mut pool: Vec<ConstId> = program.rule_constants();
        let star = ConstId::from_index(program.vocab.const_count());
        pool.push(star);
        let (zero, one) = if standard {
            let zero = program
                .vocab
                .constant("0")
                .unwrap_or(ConstId::from_index(program.vocab.const_count() + 1));
            let one = program
                .vocab
                .constant("1")
                .unwrap_or(ConstId::from_index(program.vocab.const_count() + 2));
            for c in [zero, one] {
                if !pool.contains(&c) {
                    pool.push(c);
                }
            }
            (Some(zero), Some(one))
        } else {
            (None, None)
        };

        let mut interner = ShapeInterner::new();
        let mut worklist: Vec<u32> = Vec::new();

        // Initial shapes: every predicate of the rules filled with every
        // combination of pool constants; reserved predicates 0/1 (when they
        // exist in the program and standard mode is on) carry exactly their
        // reserved fact.
        let reserved: Vec<(chasekit_core::PredId, ConstId)> = if standard {
            let mut r = Vec::new();
            if let Some(p) = program.vocab.pred("0") {
                if program.vocab.arity(p) == 1 {
                    r.push((p, zero.unwrap()));
                }
            }
            if let Some(p) = program.vocab.pred("1") {
                if program.vocab.arity(p) == 1 {
                    r.push((p, one.unwrap()));
                }
            }
            r
        } else {
            Vec::new()
        };

        for pred in program.rule_predicates() {
            if let Some(&(_, c)) = reserved.iter().find(|(p, _)| *p == pred) {
                let (id, is_new) = interner.intern(Shape {
                    pred,
                    labels: vec![Label::Const(c)],
                });
                if is_new {
                    worklist.push(id);
                }
                continue;
            }
            let arity = program.vocab.arity(pred);
            let mut combo = vec![0usize; arity];
            'combos: loop {
                let labels: Vec<Label> = combo.iter().map(|&i| Label::Const(pool[i])).collect();
                let (id, is_new) = interner.intern(Shape { pred, labels });
                if is_new {
                    worklist.push(id);
                }
                let mut k = arity;
                loop {
                    if k == 0 {
                        break 'combos;
                    }
                    k -= 1;
                    combo[k] += 1;
                    if combo[k] < pool.len() {
                        break;
                    }
                    combo[k] = 0;
                }
            }
        }

        // BFS over shapes.
        let mut steps: Vec<ShapeStep> = Vec::new();
        while let Some(shape_id) = worklist.pop() {
            for rule in program.rules() {
                let shape = interner.get(shape_id).clone();
                let Some(binding) = match_body(&rule.body()[0], &shape) else {
                    continue;
                };
                let step =
                    apply_rule(rule, shape_id, &binding, &mut interner, &mut worklist);
                steps.push(step);
            }
        }

        Ok(LinearAnalysis { interner, steps })
    }

    /// Number of reachable shapes.
    pub fn shape_count(&self) -> usize {
        self.interner.len()
    }

    /// Number of shape-level rule applications.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Builds the `(shape, position)` overlay graph for a variant, together
    /// with the dense-offset table.
    fn overlay(&self, variant: ChaseVariant) -> Result<(DiGraph, Vec<usize>), LinearError> {
        if variant == ChaseVariant::Restricted {
            return Err(LinearError::UnsupportedVariant);
        }
        // Dense (shape, position) numbering.
        let mut offsets = Vec::with_capacity(self.interner.len());
        let mut total = 0usize;
        for id in 0..self.interner.len() {
            offsets.push(total);
            total += self.interner.get(id as u32).arity();
        }
        let node = |shape: u32, pos: usize| offsets[shape as usize] + pos;

        let mut g = DiGraph::new(total);
        for step in &self.steps {
            let sources = match variant {
                ChaseVariant::Oblivious => &step.universal_positions,
                ChaseVariant::SemiOblivious => &step.frontier_positions,
                ChaseVariant::Restricted => unreachable!(),
            };
            for child in &step.children {
                for &(i, j) in &child.regular {
                    g.add_edge(node(step.from, i), node(child.to, j), false);
                }
                for &i in sources {
                    for &j in &child.existential_positions {
                        g.add_edge(node(step.from, i), node(child.to, j), true);
                    }
                }
            }
        }
        Ok((g, offsets))
    }

    /// Decides termination for the given chase variant by overlaying the
    /// position graph and searching for a dangerous cycle.
    pub fn decide(&self, variant: ChaseVariant) -> Result<LinearDecision, LinearError> {
        let (g, _) = self.overlay(variant)?;
        Ok(LinearDecision {
            terminates: !g.has_special_cycle(),
            shapes: self.interner.len(),
            position_nodes: g.node_count(),
            position_edges: g.edge_count(),
        })
    }

    /// Like [`LinearAnalysis::decide`], but on a negative answer also
    /// returns the witnessing special edge: the null-consuming
    /// `(shape, position)` and the null-creating `(shape, position)` lying
    /// on a dangerous cycle.
    pub fn decide_with_witness(
        &self,
        variant: ChaseVariant,
    ) -> Result<(LinearDecision, Option<DangerousWitness>), LinearError> {
        let (g, offsets) = self.overlay(variant)?;
        let witness = g.find_special_cycle_edge().map(|(u, v)| {
            let locate = |dense: usize| {
                // Last offset <= dense.
                let shape_idx = match offsets.binary_search(&dense) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                (self.interner.get(shape_idx as u32).clone(), dense - offsets[shape_idx])
            };
            let (from_shape, from_pos) = locate(u);
            let (to_shape, to_pos) = locate(v);
            DangerousWitness { from_shape, from_pos, to_shape, to_pos }
        });
        let decision = LinearDecision {
            terminates: witness.is_none(),
            shapes: self.interner.len(),
            position_nodes: g.node_count(),
            position_edges: g.edge_count(),
        };
        Ok((decision, witness))
    }
}

/// A dangerous-cycle witness of the linear analysis: a special edge on a
/// cycle, i.e. a trigger-identity position that is (transitively) fed by
/// the very null it causes to be created.
#[derive(Debug, Clone)]
pub struct DangerousWitness {
    /// Shape whose trigger-identity position consumes the null.
    pub from_shape: Shape,
    /// The consuming position.
    pub from_pos: usize,
    /// Shape in which the fresh null is created.
    pub to_shape: Shape,
    /// The existential position holding the fresh null.
    pub to_pos: usize,
}

/// One-shot: does the chase of the linear rule set terminate on all
/// databases under `variant`?
pub fn decide_linear(
    program: &Program,
    variant: ChaseVariant,
    standard: bool,
) -> Result<LinearDecision, LinearError> {
    LinearAnalysis::explore(program, standard)?.decide(variant)
}

/// Critical weak acyclicity: the exact characterization of `CTˢ° ∩ L`
/// (paper, Theorem 2, semi-oblivious side).
pub fn is_critically_weakly_acyclic(program: &Program) -> Result<bool, LinearError> {
    Ok(decide_linear(program, ChaseVariant::SemiOblivious, false)?.terminates)
}

/// Critical rich acyclicity: the exact characterization of `CT° ∩ L`
/// (paper, Theorem 2, oblivious side).
pub fn is_critically_richly_acyclic(program: &Program) -> Result<bool, LinearError> {
    Ok(decide_linear(program, ChaseVariant::Oblivious, false)?.terminates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_acyclicity::{is_richly_acyclic, is_weakly_acyclic};

    fn parse(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    fn so(src: &str) -> bool {
        decide_linear(&parse(src), ChaseVariant::SemiOblivious, false).unwrap().terminates
    }
    fn ob(src: &str) -> bool {
        decide_linear(&parse(src), ChaseVariant::Oblivious, false).unwrap().terminates
    }

    #[test]
    fn example1_diverges_both() {
        let src = "person(X) -> hasFather(X, Y), person(Y).";
        assert!(!so(src));
        assert!(!ob(src));
    }

    #[test]
    fn example2_diverges_both() {
        let src = "p(X, Y) -> p(Y, Z).";
        assert!(!so(src));
        assert!(!ob(src));
    }

    #[test]
    fn classic_separator_terminates_so_only() {
        let src = "r(X, Y) -> r(X, Z).";
        assert!(so(src));
        assert!(!ob(src));
    }

    #[test]
    fn copy_rule_terminates_both() {
        let src = "p(X, Y) -> q(X, Y).";
        assert!(so(src));
        assert!(ob(src));
    }

    #[test]
    fn feedback_without_null_growth_terminates() {
        let src = "p(X) -> q(X, Z). q(X, Z) -> p(X).";
        assert!(so(src));
        assert!(ob(src));
    }

    #[test]
    fn feedback_with_null_growth_diverges() {
        let src = "p(X) -> q(X, Z). q(X, Z) -> p(Z).";
        assert!(!so(src));
        assert!(!ob(src));
    }

    /// Repeated body variable blocks the dangerous cycle: plain WA rejects,
    /// the shape-refined (critical) analysis accepts — Theorem 2's point.
    #[test]
    fn repeated_variable_makes_wa_overapproximate() {
        let src = "s(X) -> e(X, Z). e(X, X) -> s(X).";
        let p = parse(src);
        assert!(!is_weakly_acyclic(&p));
        assert!(so(src), "critical-WA must see the unrealizable cycle");
        assert!(ob(src));
    }

    /// Rule constants block the dangerous cycle: the null never reaches a
    /// shape where the body constant `a` matches.
    #[test]
    fn constants_make_wa_overapproximate() {
        let src = "s(X) -> e(X, Z). e(a, X) -> s(X).";
        let p = parse(src);
        assert!(!is_weakly_acyclic(&p));
        assert!(so(src));
        assert!(ob(src));
    }

    /// ... but a realizable constant cycle fires for real.
    #[test]
    fn realizable_constant_cycle_diverges() {
        // e(a, ⋆, z1) arises, feeds s(z1), regenerates with a fresh null.
        let src = "s(X) -> e(a, X, Z). e(a, X, Y) -> s(Y).";
        assert!(!so(src));
        assert!(!ob(src));
    }

    /// A head constant with an empty frontier separates the variants: the
    /// semi-oblivious trigger identity is the empty tuple (one application,
    /// ever), while the oblivious chase sees a new homomorphism per atom.
    #[test]
    fn empty_frontier_constant_cycle_separates_variants() {
        let src = "s(X) -> e(a, Z). e(a, X) -> s(X).";
        assert!(so(src), "so applies the empty-frontier trigger once");
        assert!(!ob(src), "o refires on every new s-atom");
    }

    /// Theorem 1: on constant-free simple linear rules, the critical
    /// analysis coincides with plain weak/rich acyclicity.
    #[test]
    fn theorem1_coincidence_on_simple_linear() {
        let samples = [
            "p(X, Y) -> p(Y, Z).",
            "r(X, Y) -> r(X, Z).",
            "p(X, Y) -> q(X, Y).",
            "p(X) -> q(X, Z). q(X, Z) -> p(X).",
            "p(X) -> q(X, Z). q(X, Z) -> p(Z).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> d(X).",
            "person(X) -> hasFather(X, Y), person(Y).",
            "e(X, Y) -> e(Y, X).",
            "p(X, Y) -> p(X, Y).",
        ];
        for src in samples {
            let p = parse(src);
            assert_eq!(p.class(), RuleClass::SimpleLinear, "{src}");
            assert_eq!(so(src), is_weakly_acyclic(&p), "so vs WA on {src}");
            assert_eq!(ob(src), is_richly_acyclic(&p), "o vs RA on {src}");
        }
    }

    #[test]
    fn swap_rule_terminates() {
        // e(X, Y) -> e(Y, X): no existential at all.
        assert!(so("e(X, Y) -> e(Y, X)."));
        assert!(ob("e(X, Y) -> e(Y, X)."));
    }

    #[test]
    fn multi_head_shared_existential() {
        // The same existential in two head atoms; divergence flows through
        // the second head atom's predicate.
        let src = "p(X) -> q(X, Z), r(Z). r(X) -> p(X).";
        assert!(!so(src));
        assert!(!ob(src));
    }

    #[test]
    fn non_linear_input_is_rejected() {
        let p = parse("p(X), q(X) -> r(X).");
        assert_eq!(
            LinearAnalysis::explore(&p, false).err(),
            Some(LinearError::NotLinear)
        );
    }

    #[test]
    fn restricted_variant_is_rejected() {
        let p = parse("p(X) -> q(X).");
        let a = LinearAnalysis::explore(&p, false).unwrap();
        assert_eq!(a.decide(ChaseVariant::Restricted).err(), Some(LinearError::UnsupportedVariant));
    }

    #[test]
    fn shape_counts_are_reported() {
        let d = decide_linear(&parse("p(X, Y) -> p(Y, Z)."), ChaseVariant::SemiOblivious, false)
            .unwrap();
        // Shapes: p(⋆,⋆), p(⋆,n), p(n,m) — and p(n,n)? p(Y,Z) from p(n,m)
        // binds Y to class of position 1 and mints Z: p(m, fresh) = p(n,m)
        // again. From p(⋆,⋆): p(⋆,n). From p(⋆,n): p(n,m).
        assert_eq!(d.shapes, 3);
        assert!(!d.terminates);
    }

    #[test]
    fn standard_mode_adds_constants() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        let plain = LinearAnalysis::explore(&p, false).unwrap();
        let std_ = LinearAnalysis::explore(&p, true).unwrap();
        assert!(std_.shape_count() > plain.shape_count());
        // Decision unchanged for this rule set.
        assert!(!std_.decide(ChaseVariant::SemiOblivious).unwrap().terminates);
    }

    /// A rule whose body can only match the critical all-star shape but
    /// whose head walks through fresh shapes without cycling.
    #[test]
    fn finite_shape_chain_terminates() {
        let src = "a(X) -> b(X, Y). b(X, Y) -> c(Y, Z). c(X, Y) -> d(Y).";
        assert!(so(src));
        assert!(ob(src));
    }

    /// Oblivious divergence driven by a non-frontier variable in a
    /// *non-simple* rule: the repeated variable must not confuse the
    /// oblivious special sources.
    #[test]
    fn oblivious_nonfrontier_feed_in_nonsimple_rule() {
        // t(X, Y, Y) -> t(X, X, Z)? Body t(X,Y,Y): on all-star shape binds
        // X,Y to ⋆; head t(X,X,Z) = shape t(⋆,⋆,n). Body match on
        // t(⋆,⋆,n): X→⋆, Y must equal both ⋆ and n: fails. So only one
        // application; terminates under both.
        let src = "t(X, Y, Y) -> t(X, X, Z).";
        assert!(so(src));
        assert!(ob(src));
    }
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::shape::Label;

    #[test]
    fn witness_identifies_the_dangerous_positions() {
        // p(X, Y) -> p(Y, Z): the dangerous edge consumes at position 1 of
        // the all-null shape and creates at position 1.
        let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
        let analysis = LinearAnalysis::explore(&p, false).unwrap();
        let (decision, witness) =
            analysis.decide_with_witness(ChaseVariant::SemiOblivious).unwrap();
        assert!(!decision.terminates);
        let w = witness.expect("diverging analysis must produce a witness");
        assert_eq!(w.from_pos, 1, "Y sits at position 1");
        assert_eq!(w.to_pos, 1, "Z sits at position 1");
        assert!(w.from_shape.labels.iter().any(|l| l.is_null()));
    }

    #[test]
    fn terminating_analysis_has_no_witness() {
        let p = Program::parse("p(X, Y) -> q(X, Y).").unwrap();
        let analysis = LinearAnalysis::explore(&p, false).unwrap();
        let (decision, witness) =
            analysis.decide_with_witness(ChaseVariant::SemiOblivious).unwrap();
        assert!(decision.terminates);
        assert!(witness.is_none());
    }

    #[test]
    fn witness_shapes_respect_constants() {
        // s(X) -> e(a, X, Z). e(a, X, Y) -> s(Y). — the witness shapes keep
        // the constant a at position 0.
        let p = Program::parse("s(X) -> e(a, X, Z). e(a, X, Y) -> s(Y).").unwrap();
        let a = p.vocab.constant("a").unwrap();
        let analysis = LinearAnalysis::explore(&p, false).unwrap();
        let (_, witness) = analysis.decide_with_witness(ChaseVariant::SemiOblivious).unwrap();
        let w = witness.expect("diverges");
        // One of the two witness shapes is the e-shape with the constant.
        let has_const = |s: &Shape| s.labels.first() == Some(&Label::Const(a));
        assert!(has_const(&w.from_shape) || has_const(&w.to_shape));
    }
}
