//! Chase-termination decision for **guarded** TGDs (paper, Theorem 4).
//!
//! # The procedure
//!
//! The paper proves that deciding `CT°`/`CTˢ°` for guarded TGDs is
//! 2EXPTIME-complete (EXPTIME for bounded arity) via an alternating
//! algorithm over doubly-exponentially many "types". Running that algorithm
//! literally is infeasible; this module implements a semantically grounded
//! on-the-fly equivalent:
//!
//! run the (semi-)oblivious chase on the **critical instance** — by
//! Marnette's simulation lemma the chase terminates on all databases iff it
//! terminates here — and, after every step, search the new atom's
//! **guard-ancestor chain** for a *pumping certificate*. Saturation without
//! a certificate proves termination; a certificate proves divergence; fuel
//! exhaustion is reported honestly as `Unknown`.
//!
//! # The pumping certificate
//!
//! A certificate is a pair of atoms `a` (ancestor) and `b` (descendant on
//! `a`'s guard chain) such that:
//!
//! * **(A)** the positional map `φ : terms(a) → terms(b)` is well defined,
//!   injective, and fixes constants (so `a` and `b` have the same shape);
//! * **(B)** for every atom `x` in `b`'s derivation support whose terms lie
//!   within `terms(a) ∪ constants`, the image `φ(x)` is in the current
//!   instance (the side conditions of the derivation are reproducible one
//!   level deeper);
//! * **(E)** `b` carries at least one null minted by its own creating
//!   application (the segment makes strict progress);
//! * **(F)** every null moved by `φ` maps to a strictly younger null;
//! * **(D)** the identity of `b`'s creating trigger (frontier for the
//!   semi-oblivious chase, the whole body image for the oblivious chase)
//!   contains a null that `φ` moves or that was minted inside the segment
//!   (the repetition is driven by fresh material, not by a fixed trigger
//!   that would be deduplicated).
//!
//! **Soundness.** Suppose the conditions hold and, for contradiction, the
//! chase saturates. Replay the segment's derivation support through `φ`:
//! every step's body image is present (old side atoms by (B), earlier
//! replayed outputs by induction), so every step's trigger either was
//! already applied — its outputs, minted *after* its identity nulls
//! existed, are strictly younger — or is a new pending trigger,
//! contradicting saturation. If all rounds' triggers were always already
//! applied, round `k`'s final identity contains a strictly older-to-younger
//! growing null by (D)+(F), so the rounds consume infinitely many distinct
//! past applications — impossible in a saturated (finite) run. Hence no
//! saturation point exists and the chase diverges.
//!
//! **Completeness.** An infinite guarded chase has an infinite guard chain
//! (the derivation forest is finitely branching — König); along it,
//! atom shapes and stabilized clouds range over finitely many isomorphism
//! types, so a pumpable pair eventually appears. The fuel bound makes the
//! doubly-exponential worst case an explicit `Unknown` instead of a silent
//! wrong answer; the experiments (E4) cross-validate against ground truth.

use crate::effort::CheckerEffort;
use chasekit_core::{
    Atom, AtomId, AtomRef, CriticalInstance, FxHashMap, FxHashSet, NullId, Program, RuleClass,
    Term,
};
use chasekit_engine::{ChaseConfig, ChaseMachine, ChaseStats, ChaseVariant};

/// Errors of the guarded analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardedError {
    /// The rule set is not guarded.
    NotGuarded,
    /// The analysis only covers the oblivious and semi-oblivious chase.
    UnsupportedVariant,
}

impl std::fmt::Display for GuardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardedError::NotGuarded => write!(f, "the rule set is not guarded"),
            GuardedError::UnsupportedVariant => {
                write!(f, "guarded analysis supports the oblivious and semi-oblivious chase only")
            }
        }
    }
}

impl std::error::Error for GuardedError {}

/// A divergence witness: the pumpable ancestor/descendant pair.
#[derive(Debug, Clone)]
pub struct PumpingCertificate {
    /// The ancestor atom.
    pub ancestor: Atom,
    /// The descendant atom (same shape, strictly younger nulls).
    pub descendant: Atom,
    /// Guard-chain distance from descendant to ancestor.
    pub chain_length: usize,
}

/// The three-valued answer of the fuel-bounded procedure.
#[derive(Debug, Clone)]
pub enum GuardedVerdict {
    /// The chase terminates on **all** databases.
    Terminates,
    /// The chase diverges on the critical instance (hence on some database).
    Diverges(PumpingCertificate),
    /// Fuel ran out before saturation or certification.
    Unknown,
}

impl GuardedVerdict {
    /// `Some(true)` / `Some(false)` for decided verdicts, `None` otherwise.
    pub fn terminates(&self) -> Option<bool> {
        match self {
            GuardedVerdict::Terminates => Some(true),
            GuardedVerdict::Diverges(_) => Some(false),
            GuardedVerdict::Unknown => None,
        }
    }
}

/// Tunables of the guarded procedure.
#[derive(Debug, Clone, Copy)]
pub struct GuardedConfig {
    /// Chase variant (oblivious or semi-oblivious).
    pub variant: ChaseVariant,
    /// Fuel: maximum trigger applications before giving up.
    pub max_applications: u64,
    /// Fuel: maximum instance size before giving up.
    pub max_atoms: usize,
    /// Use the paper's standard-database critical instance.
    pub standard: bool,
    /// Cap on derivation-support size per certificate check.
    pub max_support: usize,
    /// Ablation switch: disable the deferred re-check index (pairs whose
    /// certificate fails only on a not-yet-derived side condition are
    /// retried when the missing atom arrives). With this off, divergences
    /// whose side conditions lag one round are never certified and end in
    /// `Unknown` — see `benches/ablation.rs` for the measured impact.
    pub defer_rechecks: bool,
}

impl GuardedConfig {
    /// Defaults: semi-oblivious, generous fuel.
    pub fn new(variant: ChaseVariant) -> Self {
        GuardedConfig {
            variant,
            max_applications: 50_000,
            max_atoms: 500_000,
            standard: false,
            max_support: 10_000,
            defer_rechecks: true,
        }
    }
}

/// Report of a guarded decision run.
#[derive(Debug)]
pub struct GuardedReport {
    /// The verdict.
    pub verdict: GuardedVerdict,
    /// Chase statistics of the exploration.
    pub stats: ChaseStats,
    /// The exploration's work in the portfolio-wide effort currency.
    pub effort: CheckerEffort,
}

/// Decides chase termination for a guarded rule set.
///
/// This is the paper's Theorem 4 procedure: for guarded inputs the pumping
/// search is complete (modulo fuel), so `Terminates`/`Diverges` answers are
/// both proofs.
pub fn decide_guarded(program: &Program, config: GuardedConfig) -> Result<GuardedReport, GuardedError> {
    if program.class() > RuleClass::Guarded {
        return Err(GuardedError::NotGuarded);
    }
    pumping_decide(program, config)
}

/// The pumping semi-decision procedure for **arbitrary** TGDs.
///
/// Soundness of both answers does not use guardedness (see the module docs:
/// the replay argument only needs the derivation-support invariants), so
/// this is available for any rule set; what is lost outside the guarded
/// class is the completeness guarantee — expect more `Unknown`s.
pub fn pumping_decide(program: &Program, config: GuardedConfig) -> Result<GuardedReport, GuardedError> {
    if config.variant == ChaseVariant::Restricted {
        return Err(GuardedError::UnsupportedVariant);
    }

    let mut program = program.clone();
    let crit = if config.standard {
        CriticalInstance::standard(&mut program)
    } else {
        CriticalInstance::build(&mut program)
    };

    let mut machine = ChaseMachine::new(
        &program,
        ChaseConfig::of(config.variant).with_derivation(),
        crit.instance,
    );

    // Pairs (descendant, ancestor, chain distance) whose certificate check
    // failed only because a φ-image was not in the instance *yet*, indexed
    // by the missing atom. Datalog side conditions are derived one round
    // after the atoms they accompany, so these re-checks are essential for
    // completeness, not an optimization.
    let mut pending: FxHashMap<Atom, Vec<(AtomId, AtomId, usize)>> = FxHashMap::default();

    loop {
        if machine.stats().applications >= config.max_applications
            || machine.instance().len() >= config.max_atoms
        {
            return Ok(finish(&machine, GuardedVerdict::Unknown));
        }
        let Some(event) = machine.step() else {
            return Ok(finish(&machine, GuardedVerdict::Terminates));
        };
        for &new_atom in &event.new_atoms {
            // Re-check pairs that were waiting for exactly this atom.
            let waiting = if config.defer_rechecks {
                pending.remove(&machine.instance().atom(new_atom).to_atom())
            } else {
                None
            };
            if let Some(pairs) = waiting {
                for (b_id, a_id, dist) in pairs {
                    match certify_pair(&machine, a_id, b_id, &config) {
                        CertOutcome::Certified => {
                            let cert = make_certificate(&machine, a_id, b_id, dist);
                            return Ok(finish(&machine, GuardedVerdict::Diverges(cert)));
                        }
                        CertOutcome::Missing(atom) => {
                            pending.entry(atom).or_default().push((b_id, a_id, dist));
                        }
                        CertOutcome::Failed => {}
                    }
                }
            }

            // Fresh checks along the new atom's guard chain.
            if let Some(cert) = scan_chain(&machine, new_atom, &config, &mut pending) {
                return Ok(finish(&machine, GuardedVerdict::Diverges(cert)));
            }
        }
    }
}

fn finish(machine: &ChaseMachine<'_>, verdict: GuardedVerdict) -> GuardedReport {
    let effort = CheckerEffort::chase(machine.stats().applications, machine.instance().len());
    GuardedReport { verdict, stats: machine.stats().clone(), effort }
}

fn make_certificate(
    machine: &ChaseMachine<'_>,
    a_id: AtomId,
    b_id: AtomId,
    dist: usize,
) -> PumpingCertificate {
    PumpingCertificate {
        ancestor: machine.instance().atom(a_id).to_atom(),
        descendant: machine.instance().atom(b_id).to_atom(),
        chain_length: dist,
    }
}

/// Searches `b`'s guard-ancestor chain for a pumpable ancestor, filing
/// not-yet-provable pairs under the atoms they wait for.
fn scan_chain(
    machine: &ChaseMachine<'_>,
    b_id: AtomId,
    config: &GuardedConfig,
    pending: &mut FxHashMap<Atom, Vec<(AtomId, AtomId, usize)>>,
) -> Option<PumpingCertificate> {
    let derivation = machine.derivation();
    let instance = machine.instance();
    let b = instance.atom(b_id);

    // (E) b must carry a null minted by its creator.
    let creator = derivation.creator_of(b_id)?;
    if !creator.born_nulls.iter().any(|&n| b.mentions(Term::Null(n))) {
        return None;
    }

    let chain = derivation.ancestor_chain(b_id);
    for (dist, &a_id) in chain.iter().enumerate() {
        let a = instance.atom(a_id);
        if a.pred != b.pred {
            continue;
        }
        match certify_pair(machine, a_id, b_id, config) {
            CertOutcome::Certified => {
                return Some(make_certificate(machine, a_id, b_id, dist + 1));
            }
            CertOutcome::Missing(atom) => {
                pending.entry(atom).or_default().push((b_id, a_id, dist + 1));
            }
            CertOutcome::Failed => {}
        }
    }
    None
}

/// Result of one certificate attempt.
enum CertOutcome {
    /// All conditions hold: divergence certified.
    Certified,
    /// Structurally impossible for this pair; never retry.
    Failed,
    /// Conditions hold except one φ-image is not (yet) in the instance.
    Missing(Atom),
}

/// Runs the full condition check for the pair `(a, b)`.
fn certify_pair(
    machine: &ChaseMachine<'_>,
    a_id: AtomId,
    b_id: AtomId,
    config: &GuardedConfig,
) -> CertOutcome {
    let instance = machine.instance();
    let a = instance.atom(a_id);
    let b = instance.atom(b_id);
    let Some(phi) = build_phi(a, b) else {
        return CertOutcome::Failed;
    };
    check_certificate(machine, a_id, b_id, &phi, config)
}

/// Builds the positional map φ: terms(a) → terms(b), requiring constants to
/// be fixed, nulls to map to nulls injectively, and — condition (F) — moved
/// nulls to map to strictly younger nulls.
fn build_phi(a: AtomRef<'_>, b: AtomRef<'_>) -> Option<FxHashMap<NullId, NullId>> {
    debug_assert_eq!(a.pred, b.pred);
    let mut phi: FxHashMap<NullId, NullId> = FxHashMap::default();
    let mut image: FxHashSet<NullId> = FxHashSet::default();
    for (&ta, &tb) in a.args.iter().zip(b.args) {
        match (ta, tb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Null(n), Term::Null(m)) => {
                match phi.get(&n) {
                    Some(&prev) => {
                        if prev != m {
                            return None;
                        }
                    }
                    None => {
                        if !image.insert(m) {
                            return None; // not injective
                        }
                        if m != n && m < n {
                            return None; // (F) moved nulls must be younger
                        }
                        phi.insert(n, m);
                    }
                }
            }
            _ => return None,
        }
    }
    // The identity map would mean a == b, which cannot happen for distinct
    // instance atoms of the same predicate; keep the check cheap anyway.
    if phi.iter().all(|(n, m)| n == m) {
        return None;
    }
    Some(phi)
}

/// Applies φ (identity on constants and unmapped nulls) to an atom.
fn apply_phi(atom: AtomRef<'_>, phi: &FxHashMap<NullId, NullId>) -> Atom {
    atom.map_args(|t| match t {
        Term::Null(n) => Term::Null(phi.get(&n).copied().unwrap_or(n)),
        other => other,
    })
}

/// Checks conditions (B) and (D) for the pair `(a, b)` under `phi`.
fn check_certificate(
    machine: &ChaseMachine<'_>,
    a_id: AtomId,
    b_id: AtomId,
    phi: &FxHashMap<NullId, NullId>,
    config: &GuardedConfig,
) -> CertOutcome {
    let derivation = machine.derivation();
    let instance = machine.instance();
    let a = instance.atom(a_id);

    let a_nulls: FxHashSet<NullId> = a.nulls().into_iter().collect();
    let moved: FxHashSet<NullId> =
        phi.iter().filter(|(n, m)| n != m).map(|(&n, _)| n).collect();
    if moved.is_empty() {
        return CertOutcome::Failed;
    }

    // Is every term of `atom` within terms(a) ∪ constants?
    let is_old = |atom: AtomRef<'_>| {
        atom.args.iter().all(|t| match *t {
            Term::Const(_) => true,
            Term::Null(n) => a_nulls.contains(&n),
            Term::Var(_) => unreachable!("instance atoms are ground"),
        })
    };

    // (D): the final trigger's identity must be driven by moved or
    // segment-fresh material. Checked before (B) because it is static for
    // the pair — if it fails, the pair can never be certified.
    // `support_born` is completed during the walk below, so the (D) check
    // proper happens after it; here we only resolve the identity nulls.
    let creator = derivation
        .creator_of(b_id)
        .expect("b has a creator by construction");
    let identity_nulls: Vec<NullId> = match config.variant {
        ChaseVariant::SemiOblivious => creator
            .frontier
            .iter()
            .filter_map(|t| t.as_null())
            .collect(),
        ChaseVariant::Oblivious => {
            let mut nulls = Vec::new();
            for &p in &creator.parents {
                for n in instance.atom(p).nulls() {
                    nulls.push(n);
                }
            }
            nulls
        }
        ChaseVariant::Restricted => unreachable!(),
    };

    // Walk b's derivation support: ancestors through creating applications,
    // stopping at old atoms (side conditions) and initial atoms.
    let mut support_born: FxHashSet<NullId> = FxHashSet::default();
    let mut seen: FxHashSet<AtomId> = FxHashSet::default();
    let mut stack = vec![b_id];
    let mut support_size = 0usize;
    let mut missing: Option<Atom> = None;
    while let Some(x_id) = stack.pop() {
        if !seen.insert(x_id) {
            continue;
        }
        support_size += 1;
        if support_size > config.max_support {
            return CertOutcome::Failed; // too big to certify; completeness hit only
        }
        let x = instance.atom(x_id);
        if is_old(x) && x_id != b_id {
            // (B): the side condition must be reproducible one level deeper.
            let image = apply_phi(x, phi);
            if !instance.contains(&image) && missing.is_none() {
                // Keep walking to complete `support_born` for (D), but
                // remember the first missing image.
                missing = Some(image);
            }
            continue;
        }
        match derivation.creator_of(x_id) {
            Some(app) => {
                support_born.extend(app.born_nulls.iter().copied());
                for &p in &app.parents {
                    stack.push(p);
                }
            }
            None => {
                // An initial atom: the critical instance is null-free, so a
                // non-old initial atom cannot occur.
                debug_assert!(is_old(x));
                if !is_old(x) {
                    return CertOutcome::Failed;
                }
            }
        }
    }

    if !identity_nulls
        .iter()
        .any(|n| moved.contains(n) || support_born.contains(n))
    {
        return CertOutcome::Failed;
    }

    match missing {
        Some(atom) => CertOutcome::Missing(atom),
        None => CertOutcome::Certified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decide(src: &str, variant: ChaseVariant) -> GuardedVerdict {
        let p = Program::parse(src).unwrap();
        decide_guarded(&p, GuardedConfig::new(variant)).unwrap().verdict
    }

    fn so(src: &str) -> Option<bool> {
        decide(src, ChaseVariant::SemiOblivious).terminates()
    }
    fn ob(src: &str) -> Option<bool> {
        decide(src, ChaseVariant::Oblivious).terminates()
    }

    #[test]
    fn example1_diverges() {
        let src = "person(X) -> hasFather(X, Y), person(Y).";
        assert_eq!(so(src), Some(false));
        assert_eq!(ob(src), Some(false));
    }

    #[test]
    fn example2_diverges() {
        let src = "p(X, Y) -> p(Y, Z).";
        assert_eq!(so(src), Some(false));
        assert_eq!(ob(src), Some(false));
    }

    #[test]
    fn classic_separator() {
        let src = "r(X, Y) -> r(X, Z).";
        assert_eq!(so(src), Some(true));
        assert_eq!(ob(src), Some(false));
    }

    #[test]
    fn copy_rule_terminates() {
        let src = "p(X, Y) -> q(X, Y).";
        assert_eq!(so(src), Some(true));
        assert_eq!(ob(src), Some(true));
    }

    #[test]
    fn guarded_multibody_terminating() {
        // The guard r carries both variables; the side atom p filters.
        let src = "r(X, Y), p(X) -> s(X, Y). s(X, Y) -> p(Y).";
        assert_eq!(so(src), Some(true));
        assert_eq!(ob(src), Some(true));
    }

    #[test]
    fn guarded_multibody_diverging() {
        // The guard feeds an existential that re-enters the guard predicate.
        let src = "r(X, Y), p(X) -> r(Y, Z). r(X, Y) -> p(X).";
        assert_eq!(so(src), Some(false));
        assert_eq!(ob(src), Some(false));
    }

    #[test]
    fn datalog_terminates() {
        let src = "e(X, Y), t(Y, Z) -> t(X, Z). e(X, Y) -> t(X, Y).";
        // Note: e(X,Y),t(Y,Z) is guarded? No single atom contains X,Y,Z.
        // Use a guarded variant instead.
        let p = Program::parse(src).unwrap();
        if p.class() > RuleClass::Guarded {
            // Fall back to a genuinely guarded Datalog set.
            let src = "t(X, Y, Z), e(X, Y) -> t2(X, Z). t2(X, Z) -> e(X, Z).";
            assert_eq!(so(src), Some(true));
            assert_eq!(ob(src), Some(true));
            return;
        }
        unreachable!("expected the original set to be non-guarded");
    }

    #[test]
    fn side_condition_blocks_divergence() {
        // The existential loop needs p on the fresh null, but p is never
        // derived for nulls: r(X,Y), p(Y) -> r(Y,Z). The fresh Z never gets
        // p(Z), so the rule fires only along the initial p-atoms.
        let src = "r(X, Y), p(Y) -> r(Y, Z).";
        assert_eq!(so(src), Some(true));
        assert_eq!(ob(src), Some(true));
    }

    #[test]
    fn side_condition_derived_for_nulls_diverges() {
        // Same loop, but now p propagates to the fresh null.
        let src = "r(X, Y), p(Y) -> r(Y, Z), p(Z).";
        assert_eq!(so(src), Some(false));
        assert_eq!(ob(src), Some(false));
    }

    #[test]
    fn agreement_with_linear_procedure() {
        use crate::linear::decide_linear;
        let samples = [
            "p(X, Y) -> p(Y, Z).",
            "r(X, Y) -> r(X, Z).",
            "p(X, Y) -> q(X, Y).",
            "p(X) -> q(X, Z). q(X, Z) -> p(X).",
            "p(X) -> q(X, Z). q(X, Z) -> p(Z).",
            "s(X) -> e(X, Z). e(X, X) -> s(X).",
            "s(X) -> e(a, Z). e(a, X) -> s(X).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
            "person(X) -> hasFather(X, Y), person(Y).",
        ];
        for src in samples {
            let p = Program::parse(src).unwrap();
            for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
                let lin = decide_linear(&p, variant, false).unwrap().terminates;
                let g = decide(src, variant).terminates();
                assert_eq!(g, Some(lin), "guarded vs linear on {src} under {variant}");
            }
        }
    }

    #[test]
    fn certificate_reports_chain() {
        let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
        let report =
            decide_guarded(&p, GuardedConfig::new(ChaseVariant::SemiOblivious)).unwrap();
        match report.verdict {
            GuardedVerdict::Diverges(cert) => {
                assert!(cert.chain_length >= 1);
                assert_eq!(cert.ancestor.pred, cert.descendant.pred);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn non_guarded_is_rejected() {
        let p = Program::parse("p(X), q(Y) -> r(X, Y).").unwrap();
        assert_eq!(
            decide_guarded(&p, GuardedConfig::new(ChaseVariant::SemiOblivious)).err(),
            Some(GuardedError::NotGuarded)
        );
    }

    #[test]
    fn restricted_variant_is_rejected() {
        let p = Program::parse("p(X) -> q(X).").unwrap();
        assert_eq!(
            decide_guarded(&p, GuardedConfig::new(ChaseVariant::Restricted)).err(),
            Some(GuardedError::UnsupportedVariant)
        );
    }

    #[test]
    fn tiny_fuel_yields_unknown_on_divergent_input() {
        let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
        let mut cfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        cfg.max_applications = 1;
        let report = decide_guarded(&p, cfg).unwrap();
        assert!(matches!(report.verdict, GuardedVerdict::Unknown | GuardedVerdict::Diverges(_)));
    }

    #[test]
    fn standard_mode_decides_too() {
        let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
        let mut cfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
        cfg.standard = true;
        let report = decide_guarded(&p, cfg).unwrap();
        assert_eq!(report.verdict.terminates(), Some(false));
    }

    #[test]
    fn guarded_dl_lite_style_ontology_terminates() {
        // Inclusion dependencies with a terminating structure.
        let src = "
            professor(X) -> teaches(X, Y).
            teaches(X, Y) -> course(Y).
            course(X) -> taughtBy(X, Z).
            taughtBy(X, Z) -> professor2(Z).
        ";
        assert_eq!(so(src), Some(true));
        assert_eq!(ob(src), Some(true));
    }

    #[test]
    fn guarded_ontology_with_cycle_diverges() {
        let src = "
            professor(X) -> teaches(X, Y).
            teaches(X, Y) -> course(Y).
            course(X) -> taughtBy(X, Z).
            taughtBy(X, Z) -> professor(Z).
        ";
        assert_eq!(so(src), Some(false));
        assert_eq!(ob(src), Some(false));
    }
}
