//! Atom shapes: canonical abstractions of ground atoms for the linear
//! analysis.
//!
//! A *shape* records, for each argument position of an atom, either the
//! concrete constant sitting there or the equivalence class of the null
//! sitting there (null classes are numbered by first occurrence, so shapes
//! are canonical: two atoms have the same shape iff they agree on constants
//! and on the equality pattern of their nulls).
//!
//! For **linear** TGDs the shape of an atom determines exactly which rules
//! can fire on it and the shapes of the atoms they produce, which is why the
//! reachable-shape graph of `crates/termination/src/linear.rs` decides chase
//! termination for linear rule sets.

use chasekit_core::{Atom, ConstId, FxHashMap, PredId, Term};

/// One position's abstract content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// A named constant.
    Const(ConstId),
    /// A null, identified by its class within the atom (first occurrence
    /// order: the first distinct null is class 0, the next class 1, ...).
    Null(u32),
}

impl Label {
    /// Whether the label is a null class.
    pub fn is_null(self) -> bool {
        matches!(self, Label::Null(_))
    }
}

/// A canonical atom pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    /// The predicate.
    pub pred: PredId,
    /// Canonical per-position labels.
    pub labels: Vec<Label>,
}

impl Shape {
    /// Builds the canonical shape from possibly non-canonical labels
    /// (renumbers null classes by first occurrence).
    pub fn canonicalize(pred: PredId, raw: &[Label]) -> Shape {
        let mut renumber: FxHashMap<u32, u32> = FxHashMap::default();
        let labels = raw
            .iter()
            .map(|&l| match l {
                Label::Const(c) => Label::Const(c),
                Label::Null(class) => {
                    let next = renumber.len() as u32;
                    Label::Null(*renumber.entry(class).or_insert(next))
                }
            })
            .collect();
        Shape { pred, labels }
    }

    /// The shape of a ground atom.
    ///
    /// # Panics
    ///
    /// Panics if the atom contains a variable.
    pub fn of_atom(atom: &Atom) -> Shape {
        let mut classes: FxHashMap<u32, u32> = FxHashMap::default();
        let labels = atom
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => Label::Const(c),
                Term::Null(n) => {
                    let next = classes.len() as u32;
                    Label::Null(*classes.entry(n.0).or_insert(next))
                }
                Term::Var(_) => panic!("shapes are defined on ground atoms"),
            })
            .collect();
        Shape { pred: atom.pred, labels }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct null classes.
    pub fn null_class_count(&self) -> usize {
        self.labels
            .iter()
            .filter_map(|l| match l {
                Label::Null(c) => Some(*c),
                Label::Const(_) => None,
            })
            .max()
            .map_or(0, |m| m as usize + 1)
    }
}

/// Interner assigning dense ids to shapes.
#[derive(Debug, Default)]
pub struct ShapeInterner {
    shapes: Vec<Shape>,
    lookup: FxHashMap<Shape, u32>,
}

impl ShapeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a shape; returns `(id, is_new)`.
    pub fn intern(&mut self, shape: Shape) -> (u32, bool) {
        if let Some(&id) = self.lookup.get(&shape) {
            return (id, false);
        }
        let id = self.shapes.len() as u32;
        self.lookup.insert(shape.clone(), id);
        self.shapes.push(shape);
        (id, true)
    }

    /// Resolves an id.
    pub fn get(&self, id: u32) -> &Shape {
        &self.shapes[id as usize]
    }

    /// Number of interned shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether no shape has been interned.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::NullId;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }

    #[test]
    fn equal_patterns_give_equal_shapes() {
        let a = Atom::new(PredId(0), vec![c(0), n(7), n(7), n(9)]);
        let b = Atom::new(PredId(0), vec![c(0), n(1), n(1), n(2)]);
        assert_eq!(Shape::of_atom(&a), Shape::of_atom(&b));
    }

    #[test]
    fn different_equality_patterns_differ() {
        let a = Atom::new(PredId(0), vec![n(1), n(1)]);
        let b = Atom::new(PredId(0), vec![n(1), n(2)]);
        assert_ne!(Shape::of_atom(&a), Shape::of_atom(&b));
    }

    #[test]
    fn different_constants_differ() {
        let a = Atom::new(PredId(0), vec![c(0)]);
        let b = Atom::new(PredId(0), vec![c(1)]);
        assert_ne!(Shape::of_atom(&a), Shape::of_atom(&b));
    }

    #[test]
    fn canonicalize_renumbers_by_first_occurrence() {
        let s = Shape::canonicalize(
            PredId(0),
            &[Label::Null(42), Label::Const(ConstId(3)), Label::Null(7), Label::Null(42)],
        );
        assert_eq!(
            s.labels,
            vec![Label::Null(0), Label::Const(ConstId(3)), Label::Null(1), Label::Null(0)]
        );
        assert_eq!(s.null_class_count(), 2);
    }

    #[test]
    fn interner_dedups() {
        let mut i = ShapeInterner::new();
        let s1 = Shape::of_atom(&Atom::new(PredId(0), vec![n(1), n(2)]));
        let s2 = Shape::of_atom(&Atom::new(PredId(0), vec![n(8), n(9)]));
        let (id1, new1) = i.intern(s1);
        let (id2, new2) = i.intern(s2);
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn zero_arity_shape() {
        let s = Shape::of_atom(&Atom::new(PredId(3), vec![]));
        assert_eq!(s.arity(), 0);
        assert_eq!(s.null_class_count(), 0);
    }
}
