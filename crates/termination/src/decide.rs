//! The portfolio decider: one entry point for "does the chase of Σ
//! terminate on all databases?".
//!
//! Dispatch, in order of strength:
//!
//! 1. **Linear** rule sets → the exact shape-graph procedure
//!    (Theorems 1–3; always decides).
//! 2. **Guarded** rule sets → the pumping procedure on the critical
//!    instance (Theorem 4; decides modulo fuel).
//! 3. Everything else → sufficient acyclicity conditions (RA for the
//!    oblivious chase; WA, JA, MFA for the semi-oblivious; aGRD for both),
//!    then the general pumping semi-decision (sound both ways, complete
//!    for neither).
//!
//! For the restricted chase, see [`crate::restricted`].

use chasekit_acyclicity::{
    check_with_work, is_grd_acyclic, is_jointly_acyclic, Acyclicity, GraphKind,
};
use chasekit_core::{Program, RuleClass};
use chasekit_engine::{Budget, ChaseVariant};

use crate::effort::CheckerEffort;
use crate::guarded::{decide_guarded, pumping_decide, GuardedConfig, GuardedVerdict};
use crate::linear::decide_linear;
use crate::mfa::{mfa_report, MfaStatus};

/// How the portfolio reached its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact linear shape-graph procedure (Theorems 1–3).
    ExactLinear,
    /// Guarded pumping procedure (Theorem 4).
    ExactGuarded,
    /// A named sufficient condition.
    Sufficient(&'static str),
    /// The general pumping semi-decision saturated the critical instance.
    CriticalSaturation,
    /// The general pumping semi-decision found a divergence certificate.
    Pumping,
    /// Nothing decided within budget.
    Undecided,
}

/// A portfolio decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// `Some(true)`: terminates on all databases; `Some(false)`: diverges
    /// on some database; `None`: unknown.
    pub terminates: Option<bool>,
    /// Which procedure answered.
    pub method: Method,
    /// The syntactic class the dispatcher saw.
    pub class: RuleClass,
    /// Total work of every procedure the cascade tried before answering.
    pub effort: CheckerEffort,
}

/// Budgeted portfolio decision for the oblivious or semi-oblivious chase.
pub fn decide(program: &Program, variant: ChaseVariant, budget: &Budget) -> Decision {
    assert!(
        variant != ChaseVariant::Restricted,
        "use chasekit_termination::restricted for the restricted chase"
    );
    let class = program.class();

    match class {
        RuleClass::SimpleLinear | RuleClass::Linear => {
            let d = decide_linear(program, variant, false)
                .expect("class checked: linear analysis cannot fail");
            Decision {
                terminates: Some(d.terminates),
                method: Method::ExactLinear,
                class,
                effort: CheckerEffort::graph(d.position_nodes, d.position_edges, 0),
            }
        }
        RuleClass::Guarded => {
            let mut cfg = GuardedConfig::new(variant);
            cfg.max_applications = budget.max_applications;
            cfg.max_atoms = budget.max_atoms;
            let report = decide_guarded(program, cfg)
                .expect("class checked: guarded analysis cannot fail");
            let effort = report.effort;
            match report.verdict {
                GuardedVerdict::Terminates => Decision {
                    terminates: Some(true),
                    method: Method::ExactGuarded,
                    class,
                    effort,
                },
                GuardedVerdict::Diverges(_) => Decision {
                    terminates: Some(false),
                    method: Method::ExactGuarded,
                    class,
                    effort,
                },
                GuardedVerdict::Unknown => Decision {
                    terminates: None,
                    method: Method::Undecided,
                    class,
                    effort,
                },
            }
        }
        RuleClass::General => decide_general(program, variant, budget, class),
    }
}

fn decide_general(
    program: &Program,
    variant: ChaseVariant,
    budget: &Budget,
    class: RuleClass,
) -> Decision {
    // Cheap sufficient conditions first, summing the cascade's effort so
    // the decision reports everything it cost, not just the last step.
    let mut effort = CheckerEffort::default();
    if variant == ChaseVariant::Oblivious {
        let (verdict, work) = check_with_work(program, GraphKind::Extended);
        effort.absorb(work.into());
        if verdict == Acyclicity::Acyclic {
            return Decision {
                terminates: Some(true),
                method: Method::Sufficient("rich-acyclicity"),
                class,
                effort,
            };
        }
    }
    if variant == ChaseVariant::SemiOblivious {
        let (verdict, work) = check_with_work(program, GraphKind::Standard);
        effort.absorb(work.into());
        if verdict == Acyclicity::Acyclic {
            return Decision {
                terminates: Some(true),
                method: Method::Sufficient("weak-acyclicity"),
                class,
                effort,
            };
        }
        if is_jointly_acyclic(program) {
            return Decision {
                terminates: Some(true),
                method: Method::Sufficient("joint-acyclicity"),
                class,
                effort,
            };
        }
    }
    if is_grd_acyclic(program) {
        return Decision {
            terminates: Some(true),
            method: Method::Sufficient("aGRD"),
            class,
            effort,
        };
    }
    if variant == ChaseVariant::SemiOblivious {
        let report = mfa_report(program, budget);
        effort.absorb(report.effort);
        if report.status == MfaStatus::Mfa {
            return Decision {
                terminates: Some(true),
                method: Method::Sufficient("MFA"),
                class,
                effort,
            };
        }
    }

    // General pumping semi-decision.
    let mut cfg = GuardedConfig::new(variant);
    cfg.max_applications = budget.max_applications;
    cfg.max_atoms = budget.max_atoms;
    let report = pumping_decide(program, cfg).expect("variant checked above");
    effort.absorb(report.effort);
    match report.verdict {
        GuardedVerdict::Terminates => Decision {
            terminates: Some(true),
            method: Method::CriticalSaturation,
            class,
            effort,
        },
        GuardedVerdict::Diverges(_) => {
            Decision { terminates: Some(false), method: Method::Pumping, class, effort }
        }
        GuardedVerdict::Unknown => {
            Decision { terminates: None, method: Method::Undecided, class, effort }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, variant: ChaseVariant) -> Decision {
        decide(&Program::parse(src).unwrap(), variant, &Budget::default())
    }

    #[test]
    fn linear_inputs_use_the_exact_procedure() {
        let d = run("p(X, Y) -> p(Y, Z).", ChaseVariant::SemiOblivious);
        assert_eq!(d.terminates, Some(false));
        assert_eq!(d.method, Method::ExactLinear);
        assert_eq!(d.class, RuleClass::SimpleLinear);
    }

    #[test]
    fn guarded_inputs_use_the_pumping_procedure() {
        let d = run(
            "r(X, Y), p(Y) -> r(Y, Z), p(Z).",
            ChaseVariant::SemiOblivious,
        );
        assert_eq!(d.terminates, Some(false));
        assert_eq!(d.method, Method::ExactGuarded);
        assert_eq!(d.class, RuleClass::Guarded);
    }

    #[test]
    fn general_weakly_acyclic_short_circuits() {
        let d = run("p(X), q(Y) -> r(X, Y, Z).", ChaseVariant::SemiOblivious);
        assert_eq!(d.terminates, Some(true));
        assert_eq!(d.method, Method::Sufficient("weak-acyclicity"));
        assert_eq!(d.class, RuleClass::General);
    }

    #[test]
    fn general_divergent_pumping() {
        let d = run(
            "p(X), q(Y) -> e(X, Y, Z). e(X, Y, Z) -> p(Z). e(X, Y, Z) -> q(Z).",
            ChaseVariant::SemiOblivious,
        );
        assert_eq!(d.terminates, Some(false));
        assert_eq!(d.method, Method::Pumping);
    }

    #[test]
    fn oblivious_uses_rich_acyclicity() {
        let d = run("p(X, Y), q(Y) -> r(X, Y).", ChaseVariant::Oblivious);
        assert_eq!(d.terminates, Some(true));
        // Guarded? p(X,Y) contains X and Y; q(Y) only Y — guard is p(X,Y).
        // So this is actually guarded and dispatches there.
        assert_eq!(d.method, Method::ExactGuarded);
    }

    #[test]
    fn truly_general_oblivious_rich_acyclic() {
        let d = run("p(X), q(Y) -> r(X, Y).", ChaseVariant::Oblivious);
        assert_eq!(d.terminates, Some(true));
        assert_eq!(d.method, Method::Sufficient("rich-acyclicity"));
    }

    #[test]
    #[should_panic(expected = "restricted")]
    fn restricted_variant_panics() {
        run("p(X) -> q(X).", ChaseVariant::Restricted);
    }

    #[test]
    fn variants_can_disagree() {
        let so = run("r(X, Y) -> r(X, Z).", ChaseVariant::SemiOblivious);
        let ob = run("r(X, Y) -> r(X, Z).", ChaseVariant::Oblivious);
        assert_eq!(so.terminates, Some(true));
        assert_eq!(ob.terminates, Some(false));
    }
}
