//! # chasekit-termination
//!
//! Decision procedures for chase termination over all databases, following
//! *"Chase Termination for Guarded Existential Rules"* (Calautti, Gottlob,
//! Pieris; PODS 2015):
//!
//! * [`linear`] — the **exact** procedure for linear TGDs via reachable
//!   shape graphs (critical weak/rich acyclicity; Theorems 1–3);
//! * [`guarded`] — the decision procedure for guarded TGDs via pumping
//!   certificates on the critical-instance chase (Theorem 4), plus its
//!   sound generalization to arbitrary TGDs;
//! * [`mfa`] — model-faithful acyclicity, the strongest practical
//!   sufficient condition, as a baseline;
//! * [`looping`] — the looping operator (the paper's lower-bound
//!   technique): reduces propositional atom entailment to chase
//!   non-termination;
//! * [`restricted`] — the future-work section: an exact procedure for the
//!   restricted chase on single-head linear TGDs;
//! * [`mod@decide`] — the portfolio front door.
//!
//! ```
//! use chasekit_core::Program;
//! use chasekit_engine::{Budget, ChaseVariant};
//! use chasekit_termination::decide::decide;
//!
//! // Paper, Example 2: diverges under every chase variant.
//! let p = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
//! let d = decide(&p, ChaseVariant::SemiOblivious, &Budget::default());
//! assert_eq!(d.terminates, Some(false));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decide;
pub mod effort;
pub mod guarded;
pub mod linear;
pub mod looping;
pub mod mfa;
pub mod restricted;
pub mod shape;

pub use decide::{decide, Decision, Method};
pub use effort::CheckerEffort;
pub use guarded::{
    decide_guarded, pumping_decide, GuardedConfig, GuardedError, GuardedReport, GuardedVerdict,
    PumpingCertificate,
};
pub use linear::{
    decide_linear, is_critically_richly_acyclic, is_critically_weakly_acyclic, DangerousWitness,
    LinearAnalysis, LinearDecision, LinearError,
};
pub use looping::{chain_instance, PropositionalProgram};
pub use mfa::{is_mfa, mfa_report, mfa_status, MfaReport, MfaStatus};
pub use restricted::{
    is_single_head_linear, restricted_verdict, single_head_linear_restricted_terminates,
    RestrictedMethod, RestrictedVerdict,
};
pub use shape::{Label, Shape, ShapeInterner};
