//! Restricted-chase termination — the paper's **future work** section.
//!
//! The paper reports preliminary results: for *single-head linear* TGDs
//! where each predicate appears in the head of at most one TGD, restricted-
//! chase termination is characterized by a careful extension of weak
//! acyclicity, decidable in polynomial time. The paper does not spell the
//! construction out; this module derives and implements an **exact**
//! procedure for that class, plus honest fallbacks outside it.
//!
//! # The exact procedure for single-head linear rule sets
//!
//! Call a rule set *single-head linear* when every rule is linear with one
//! head atom and no two rules share a head predicate. Two observations make
//! the class tractable:
//!
//! 1. **Satisfaction collapses to dedup + the database.** A trigger's head
//!    `p(f̄, Z̄)` can only be satisfied by a `p`-atom. Derived `p`-atoms all
//!    come from *the same rule*, and they match the head iff they were
//!    produced with the same frontier (every frontier variable occurs in
//!    the head) — but same rule + same frontier is exactly the trigger
//!    identity the fair chase deduplicates anyway. So beyond semi-oblivious
//!    behaviour, the restricted chase differs **only** through satisfaction
//!    by *initial database atoms*. In particular the restricted chase for
//!    this class is order-independent (CT∀ = CT∃).
//! 2. **Singleton databases suffice.** The chase from a database diverges
//!    iff it diverges from one of its single-atom sub-databases: a linear
//!    derivation descends from one atom, and shrinking the database only
//!    removes satisfying atoms, never blocks the diverging branch.
//!
//! Hence: the restricted chase terminates on all databases iff for every
//! **start shape** `s₀` (an arbitrary single atom, its fresh constants
//! abstracted like nulls), the reachable shape graph — with every edge
//! whose head instantiation matches the start atom *suppressed* — has no
//! dangerous cycle (semi-oblivious special sources). This is precisely an
//! "extension of weak acyclicity": the same dangerous-cycle test, on a
//! satisfaction-pruned, realizability-refined graph.
//!
//! Outside the single-head linear class the module falls back to sufficient
//! conditions (weak acyclicity, aGRD — both sound for the restricted
//! chase) and otherwise answers `Unknown`; probe runs live in the E7
//! experiment, not here, because budget exhaustion proves nothing.

use chasekit_acyclicity::{is_grd_acyclic, is_weakly_acyclic, DiGraph};
use chasekit_core::{ConstId, FxHashMap, Program, RuleClass, Term, Tgd, VarId};

use crate::shape::{Label, Shape, ShapeInterner};

/// How the restricted-chase answer was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestrictedMethod {
    /// The exact single-head linear procedure (both answers are proofs).
    ExactSingleHeadLinear,
    /// Weak acyclicity (sufficient).
    WeaklyAcyclic,
    /// aGRD (sufficient).
    GrdAcyclic,
    /// Could not decide.
    Inconclusive,
}

/// Verdict for restricted-chase termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestrictedVerdict {
    /// `Some(true)`: terminates on all databases (all fair orders).
    /// `Some(false)`: diverges on some database. `None`: unknown.
    pub terminates: Option<bool>,
    /// Which branch of the procedure produced the answer.
    pub method: RestrictedMethod,
}

/// Whether the rule set is in the paper's preliminary class: linear, one
/// head atom per rule, no two rules heading the same predicate.
pub fn is_single_head_linear(program: &Program) -> bool {
    if !matches!(program.class(), RuleClass::SimpleLinear | RuleClass::Linear) {
        return false;
    }
    let mut head_preds = chasekit_core::FxHashSet::default();
    program
        .rules()
        .iter()
        .all(|r| r.is_single_head() && head_preds.insert(r.head()[0].pred))
}

/// The exact decision for single-head linear rule sets; `None` if the rule
/// set is outside the class.
pub fn single_head_linear_restricted_terminates(program: &Program) -> Option<bool> {
    if !is_single_head_linear(program) {
        return None;
    }
    Some(find_divergent_start(program).is_none())
}

/// Materializes a start shape into a one-atom database, interning fresh
/// witness constants into the program's vocabulary. Used by experiment E7
/// to confirm divergence claims against the engine.
pub fn materialize_start(program: &mut Program, start: &Shape) -> chasekit_core::Instance {
    let args: Vec<Term> = start
        .labels
        .iter()
        .enumerate()
        .map(|(i, &l)| match l {
            Label::Const(c) if c.index() < program.vocab.const_count() => Term::Const(c),
            Label::Const(_) => {
                Term::Const(program.vocab.intern_const(&format!("w{i}\u{2605}")))
            }
            Label::Null(_) => unreachable!("start shapes carry constants only"),
        })
        .collect();
    // Equal canonical labels must become equal constants: rebuild with a map.
    let mut map: FxHashMap<Label, Term> = FxHashMap::default();
    let args: Vec<Term> = start
        .labels
        .iter()
        .zip(args)
        .map(|(&l, fallback)| *map.entry(l).or_insert(fallback))
        .collect();
    chasekit_core::Instance::from_atoms([chasekit_core::Atom::new(start.pred, args)])
}

/// Finds a start shape whose restricted chase diverges, if any. `None`
/// means the restricted chase terminates on every database (when the rule
/// set is single-head linear).
pub fn find_divergent_start(program: &Program) -> Option<Shape> {
    // Start-shape constant pool: the rule constants plus `arity` many fresh
    // database constants (canonicalized, so `max_arity` of them suffice).
    let rule_consts = program.rule_constants();
    let max_arity = program
        .rule_predicates()
        .iter()
        .map(|&p| program.vocab.arity(p))
        .max()
        .unwrap_or(0);
    // Fresh synthetic constants live beyond the program's constant space.
    let fresh_base = program.vocab.const_count();
    let fresh: Vec<ConstId> =
        (0..max_arity).map(|i| ConstId::from_index(fresh_base + i)).collect();

    for pred in program.rule_predicates() {
        let arity = program.vocab.arity(pred);
        // Enumerate canonical start shapes: label vectors over rule
        // constants and fresh constants, deduplicated up to renaming of the
        // fresh ones (canonicalize by first occurrence).
        let mut pool: Vec<Label> = rule_consts.iter().map(|&c| Label::Const(c)).collect();
        pool.extend(fresh.iter().take(arity.max(1)).map(|&c| Label::Const(c)));

        let mut combo = vec![0usize; arity];
        let mut seen_starts: chasekit_core::FxHashSet<Vec<Label>> =
            chasekit_core::FxHashSet::default();
        'combos: loop {
            let labels: Vec<Label> = combo.iter().map(|&i| pool[i]).collect();
            let canon = canonicalize_start(&labels, &rule_consts);
            if seen_starts.insert(canon.clone()) {
                let start = Shape { pred, labels: canon };
                if diverges_from_start(program, &start) {
                    return Some(start);
                }
            }
            let mut k = arity;
            loop {
                if k == 0 {
                    break 'combos;
                }
                k -= 1;
                combo[k] += 1;
                if combo[k] < pool.len() {
                    break;
                }
                combo[k] = 0;
            }
        }
    }
    None
}

/// Canonicalizes a start-label vector: rule constants stay; fresh database
/// constants are renumbered by first occurrence (they are interchangeable).
fn canonicalize_start(labels: &[Label], rule_consts: &[ConstId]) -> Vec<Label> {
    let mut renumber: FxHashMap<ConstId, usize> = FxHashMap::default();
    let base = (u32::MAX / 2) as usize;
    labels
        .iter()
        .map(|&l| match l {
            Label::Const(c) if rule_consts.contains(&c) => Label::Const(c),
            Label::Const(c) => {
                let next = renumber.len();
                let idx = *renumber.entry(c).or_insert(next);
                Label::Const(ConstId::from_index(base + idx))
            }
            Label::Null(_) => unreachable!("start shapes carry constants only"),
        })
        .collect()
}

/// Explores the shape graph from the singleton start shape under restricted
/// semantics and checks for a dangerous cycle.
fn diverges_from_start(program: &Program, start: &Shape) -> bool {
    let mut interner = ShapeInterner::new();
    let mut worklist: Vec<u32> = Vec::new();
    let (start_id, _) = interner.intern(start.clone());
    worklist.push(start_id);

    struct Step {
        from: u32,
        to: u32,
        regular: Vec<(usize, usize)>,
        special_sources: Vec<usize>,
        existential_positions: Vec<usize>,
    }
    let mut steps: Vec<Step> = Vec::new();

    while let Some(shape_id) = worklist.pop() {
        for rule in program.rules() {
            let shape = interner.get(shape_id).clone();
            let Some(binding) = crate::linear::match_body(&rule.body()[0], &shape) else {
                continue;
            };
            let head = &rule.head()[0];

            // Head instantiation at this shape: existentials are wildcards.
            // Suppress the edge when the start atom matches it (the head is
            // already satisfied by the database).
            if head_matches_start(rule, head, &binding, start) {
                continue;
            }

            let mut raw: Vec<Label> = Vec::with_capacity(head.arity());
            let mut existential_positions = Vec::new();
            for (j, t) in head.args.iter().enumerate() {
                match *t {
                    Term::Const(c) => raw.push(Label::Const(c)),
                    Term::Var(v) => {
                        if rule.is_universal(v) {
                            raw.push(binding[&v]);
                        } else {
                            raw.push(Label::Null((1 << 24) + v.0));
                            existential_positions.push(j);
                        }
                    }
                    Term::Null(_) => unreachable!("rules contain no nulls"),
                }
            }
            let child = Shape::canonicalize(head.pred, &raw);
            let (to, is_new) = interner.intern(child);
            if is_new {
                worklist.push(to);
            }

            let body = &rule.body()[0];
            let mut regular = Vec::new();
            let mut special_sources = Vec::new();
            for (i, bt) in body.args.iter().enumerate() {
                let Term::Var(v) = *bt else { continue };
                if !rule.is_frontier(v) {
                    continue;
                }
                special_sources.push(i);
                for (j, ht) in head.args.iter().enumerate() {
                    if *ht == Term::Var(v) {
                        regular.push((i, j));
                    }
                }
            }

            steps.push(Step { from: shape_id, to, regular, special_sources, existential_positions });
        }
    }

    // Dangerous-cycle test on the (shape, position) overlay.
    let mut offsets = Vec::with_capacity(interner.len());
    let mut total = 0usize;
    for id in 0..interner.len() {
        offsets.push(total);
        total += interner.get(id as u32).arity();
    }
    let mut g = DiGraph::new(total);
    for step in &steps {
        for &(i, j) in &step.regular {
            g.add_edge(offsets[step.from as usize] + i, offsets[step.to as usize] + j, false);
        }
        for &i in &step.special_sources {
            for &j in &step.existential_positions {
                g.add_edge(offsets[step.from as usize] + i, offsets[step.to as usize] + j, true);
            }
        }
    }
    g.has_special_cycle()
}

/// Whether the head instantiation at a shape matches the start atom
/// (existential positions are wildcards; a chase-null label can never equal
/// a database constant).
fn head_matches_start(
    rule: &Tgd,
    head: &chasekit_core::Atom,
    binding: &FxHashMap<VarId, Label>,
    start: &Shape,
) -> bool {
    if head.pred != start.pred {
        return false;
    }
    for (j, t) in head.args.iter().enumerate() {
        match *t {
            Term::Const(c) => {
                if start.labels[j] != Label::Const(c) {
                    return false;
                }
            }
            Term::Var(v) => {
                if rule.is_universal(v) && binding[&v] != start.labels[j] {
                    return false;
                }
                // Existential: wildcard, matches anything.
            }
            Term::Null(_) => unreachable!("rules contain no nulls"),
        }
    }
    true
}

/// Analyzes restricted-chase termination. Exact inside the single-head
/// linear class; sufficient conditions outside it.
pub fn restricted_verdict(program: &Program) -> RestrictedVerdict {
    if let Some(answer) = single_head_linear_restricted_terminates(program) {
        return RestrictedVerdict {
            terminates: Some(answer),
            method: RestrictedMethod::ExactSingleHeadLinear,
        };
    }
    if is_weakly_acyclic(program) {
        return RestrictedVerdict {
            terminates: Some(true),
            method: RestrictedMethod::WeaklyAcyclic,
        };
    }
    if is_grd_acyclic(program) {
        return RestrictedVerdict { terminates: Some(true), method: RestrictedMethod::GrdAcyclic };
    }
    RestrictedVerdict { terminates: None, method: RestrictedMethod::Inconclusive }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_engine::{chase, Budget, StopReason, ChaseVariant};

    fn verdict(src: &str) -> RestrictedVerdict {
        restricted_verdict(&Program::parse(src).unwrap())
    }

    #[test]
    fn class_detection() {
        assert!(is_single_head_linear(&Program::parse("p(X, Y) -> p(Y, Z).").unwrap()));
        assert!(!is_single_head_linear(
            &Program::parse("p(X) -> q(X, Z). r(X) -> q(X, X).").unwrap()
        ));
        assert!(!is_single_head_linear(
            &Program::parse("person(X) -> hasFather(X, Y), person(Y).").unwrap()
        ));
        assert!(!is_single_head_linear(&Program::parse("p(X), q(X) -> r(X).").unwrap()));
    }

    #[test]
    fn example2_restricted_diverges() {
        // p(X, Y) -> p(Y, Z) diverges from p(a, b) (paper, Example 2) even
        // though it terminates from the loop p(a, a).
        let v = verdict("p(X, Y) -> p(Y, Z).");
        assert_eq!(v.terminates, Some(false));
        assert_eq!(v.method, RestrictedMethod::ExactSingleHeadLinear);
    }

    #[test]
    fn forward_copy_with_existential_terminates() {
        // r(X, Y) -> s(Y, Z): one step, s heads nothing else.
        let v = verdict("r(X, Y) -> s(Y, Z).");
        assert_eq!(v.terminates, Some(true));
        assert_eq!(v.method, RestrictedMethod::ExactSingleHeadLinear);
    }

    #[test]
    fn self_satisfying_loop_terminates_restrictedly() {
        // e(X, Y) -> e(Y, Z): from any single atom e(c1, c2), the chase
        // adds e(c2, z1), then needs e(z1, _) — never satisfied — so it
        // DIVERGES. (The self-loop e(c,c) is satisfied at once, but the
        // path database is the witness.)
        let v = verdict("e(X, Y) -> e(Y, Z).");
        assert_eq!(v.terminates, Some(false));
    }

    #[test]
    fn head_equal_to_body_terminates() {
        // e(X, Y) -> e(X, Y) is a tautology: satisfied by the trigger atom
        // itself... but satisfaction checks the *database*; the start atom
        // IS the body image here, so the edge is suppressed for every
        // start shape.
        let v = verdict("e(X, Y) -> e(X, Y).");
        assert_eq!(v.terminates, Some(true));
    }

    #[test]
    fn cross_validation_against_the_engine() {
        // For single-head linear sets the verdict must match a budgeted
        // restricted run from the divergence witness family; we validate
        // the terminating answers by running from adversarial databases.
        let cases = [
            ("p(X, Y) -> p(Y, Z).", "p(c1, c2)."),
            ("e(X, Y) -> e(Y, Z).", "e(c1, c2)."),
            ("r(X, Y) -> s(Y, Z).", "r(c1, c2)."),
            ("a(X) -> b(X, Y). b(X, Y) -> c(Y).", "a(c1)."),
        ];
        for (rules, db) in cases {
            let program = Program::parse(&format!("{rules} {db}")).unwrap();
            let v = restricted_verdict(&program);
            let run = chase(
                &program,
                ChaseVariant::Restricted,
                chasekit_core::Instance::from_atoms(program.facts().iter().cloned()),
                &Budget::applications(2_000),
            );
            match v.terminates {
                Some(true) => assert_eq!(
                    run.outcome,
                    StopReason::Saturated,
                    "verdict says terminates but engine kept going on {rules}"
                ),
                Some(false) => {
                    // The witness database here happens to be the generic
                    // path; the engine must not saturate quickly... it may
                    // saturate if this db is not the witness, so only check
                    // the diverging cases we constructed to diverge.
                    assert_eq!(
                        run.outcome,
                        StopReason::Applications,
                        "verdict says diverges but engine saturated on {rules}"
                    );
                }
                None => panic!("exact procedure returned unknown for {rules}"),
            }
        }
    }

    #[test]
    fn chain_with_feedback_diverges() {
        let v = verdict("a(X) -> b(X, Y). b(X, Y) -> a(Y).");
        assert_eq!(v.terminates, Some(false));
    }

    #[test]
    fn outside_class_falls_back_to_wa() {
        let v = verdict("person(X) -> hasFather(X, Y), parent(X).");
        // Multi-head, so outside the class; WA holds here.
        assert_eq!(v.terminates, Some(true));
        assert_eq!(v.method, RestrictedMethod::WeaklyAcyclic);
    }

    #[test]
    fn outside_class_inconclusive_when_nothing_fires() {
        let v = verdict("person(X) -> hasFather(X, Y), person(Y).");
        assert_eq!(v.terminates, None);
        assert_eq!(v.method, RestrictedMethod::Inconclusive);
    }

    #[test]
    fn constants_participate_in_start_shapes() {
        // e(a, X) -> e(X, Z): from e(a, a) the chase adds e(a, z)... then
        // e(z, z') needs body e(a, X): no match on e(z, _)? The body is
        // e(a, X): it matches e(a, a) and e(a, z1) — e(a, z1) arises from
        // X = a... wait: head e(X, Z) with X bound by body position 1.
        // From e(a, a): head e(a, z1) -> matches body again (X = z1):
        // head e(z1, z2): body e(a, X) does not match e(z1, z2). Finite.
        let v = verdict("e(a, X) -> e(X, Z).");
        assert_eq!(v.terminates, Some(true), "method {:?}", v.method);
    }
}
