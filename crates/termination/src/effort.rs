//! Uniform effort accounting across the termination checkers.
//!
//! Every checker in the portfolio does its work in one of two currencies:
//! graph construction (the acyclicity conditions walk a dependency graph
//! of schema positions) or chase exploration (MFA and the pumping
//! procedures run the chase of the critical instance). [`CheckerEffort`]
//! carries both so that [`crate::Decision`], [`crate::GuardedReport`], and
//! [`crate::MfaReport`] — and through them the `conditions` CLI and the
//! landscape harness — report cost in the same shape.

use chasekit_acyclicity::GraphWork;
use chasekit_engine::ChaseStats;

/// Work a termination checker performed before answering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckerEffort {
    /// Chase applications performed on the critical instance.
    pub applications: u64,
    /// Atoms in the critical-instance chase when the check decided.
    pub atoms: usize,
    /// Nodes (schema positions) in dependency graphs built.
    pub nodes: usize,
    /// Edges in dependency graphs built (regular + special).
    pub edges: usize,
    /// Edges marked special (null-creating propagation).
    pub special_edges: usize,
}

impl CheckerEffort {
    /// Effort of a chase-based checker (MFA, pumping).
    pub fn chase(applications: u64, atoms: usize) -> CheckerEffort {
        CheckerEffort { applications, atoms, ..CheckerEffort::default() }
    }

    /// Effort of a graph-based checker (WA, RA, JA, aGRD, shape graphs).
    pub fn graph(nodes: usize, edges: usize, special_edges: usize) -> CheckerEffort {
        CheckerEffort { nodes, edges, special_edges, ..CheckerEffort::default() }
    }

    /// Accumulates another checker's effort (a portfolio cascade sums the
    /// work of everything it tried).
    pub fn absorb(&mut self, other: CheckerEffort) {
        self.applications += other.applications;
        self.atoms += other.atoms;
        self.nodes += other.nodes;
        self.edges += other.edges;
        self.special_edges += other.special_edges;
    }

    /// A single scalar for medians/percentiles: chase applications plus
    /// graph edges — each is the unit the respective checker loops over.
    pub fn cost(&self) -> u64 {
        self.applications + self.edges as u64
    }

    /// Renders the non-zero currencies as `[...]`, the format the
    /// `conditions` CLI prints after each verdict: graph work as
    /// `[N nodes, M edges, K special]`, chase work as
    /// `[N applications, M atoms]`, both joined by `; ` when a cascade
    /// spent both.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.nodes > 0 || self.edges > 0 {
            parts.push(format!(
                "{} nodes, {} edges, {} special",
                self.nodes, self.edges, self.special_edges
            ));
        }
        if self.applications > 0 || self.atoms > 0 {
            parts.push(format!("{} applications, {} atoms", self.applications, self.atoms));
        }
        if parts.is_empty() {
            parts.push("no work".to_string());
        }
        format!("[{}]", parts.join("; "))
    }
}

impl From<GraphWork> for CheckerEffort {
    fn from(w: GraphWork) -> CheckerEffort {
        CheckerEffort::graph(w.nodes, w.edges, w.special_edges)
    }
}

impl From<&ChaseStats> for CheckerEffort {
    /// Chase effort from engine statistics. `ChaseStats` counts atoms
    /// *added*, not the instance size; callers that have the machine at
    /// hand should prefer [`CheckerEffort::chase`] with the true size.
    fn from(stats: &ChaseStats) -> CheckerEffort {
        CheckerEffort::chase(stats.applications, stats.atoms_added as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_render_each_currency() {
        assert_eq!(CheckerEffort::graph(2, 3, 1).summary(), "[2 nodes, 3 edges, 1 special]");
        assert_eq!(CheckerEffort::chase(7, 40).summary(), "[7 applications, 40 atoms]");
        assert_eq!(CheckerEffort::default().summary(), "[no work]");
        let mut both = CheckerEffort::graph(2, 3, 1);
        both.absorb(CheckerEffort::chase(7, 40));
        assert_eq!(both.summary(), "[2 nodes, 3 edges, 1 special; 7 applications, 40 atoms]");
    }

    #[test]
    fn absorb_sums_and_cost_is_monotone() {
        let mut e = CheckerEffort::graph(4, 6, 2);
        let before = e.cost();
        e.absorb(CheckerEffort::chase(10, 25));
        assert_eq!(e.nodes, 4);
        assert_eq!(e.applications, 10);
        assert!(e.cost() > before);
        assert_eq!(e.cost(), 16);
    }
}
