//! The **looping operator**: the paper's generic lower-bound technique.
//!
//! The paper's hardness results reduce *propositional atom entailment* to
//! the complement of chase termination: given a propositional rule set
//! `Σ₀`, a set of initial facts `D₀`, and a goal atom `g`, build a guarded
//! TGD set `loop(Σ₀, D₀, g)` whose chase terminates on **all** databases
//! iff `Σ₀ ∪ D₀ ⊬ g`.
//!
//! # Construction
//!
//! Every propositional atom `p` becomes a unary predicate `p(L)` over a
//! *level* `L`:
//!
//! * each propositional rule `p ∧ q → r` becomes `p(L), q(L) -> r(L)` —
//!   guarded, because every body atom carries the single universal `L`;
//! * each initial fact `p ∈ D₀` becomes the seeding rule
//!   `start(L) -> p(L)`;
//! * the loop gadget `g(L) -> next(L, L'), start(L')` opens a fresh level
//!   whenever the goal is reached.
//!
//! On the critical instance every level-0 atom is present, so the gadget
//! fires once unconditionally; level 1 is a *fresh null*, seeded only with
//! `start`, so `g(level 1)` is derivable iff `Σ₀ ∪ D₀ ⊢ g` — in which case
//! the gadget re-fires forever (each level a fresh null, hence a fresh
//! frontier, under both the oblivious and semi-oblivious chase). If the
//! goal is not entailed, every level saturates after finitely many steps
//! and only finitely many levels are ever opened.
//!
//! The operator therefore turns any family of hard entailment instances
//! into a family of hard termination instances — experiment E5 uses it to
//! probe the termination checkers with instances whose answers are known
//! from a simple propositional fixpoint.

use chasekit_core::{CoreError, Program, RuleBuilder};

/// A propositional Horn program: rules (body atoms → head atom), initial
/// facts, and a goal atom, all named.
#[derive(Debug, Clone, Default)]
pub struct PropositionalProgram {
    /// Rules: (body atom names, head atom name).
    pub rules: Vec<(Vec<String>, String)>,
    /// Initially true atoms.
    pub facts: Vec<String>,
    /// The goal atom.
    pub goal: String,
}

impl PropositionalProgram {
    /// Builds a program from string slices.
    pub fn new(rules: &[(&[&str], &str)], facts: &[&str], goal: &str) -> Self {
        PropositionalProgram {
            rules: rules
                .iter()
                .map(|(b, h)| (b.iter().map(|s| s.to_string()).collect(), h.to_string()))
                .collect(),
            facts: facts.iter().map(|s| s.to_string()).collect(),
            goal: goal.to_string(),
        }
    }

    /// Ground truth: does the program entail its goal? (Naive fixpoint —
    /// these programs are tiny.)
    pub fn entails_goal(&self) -> bool {
        let mut true_atoms: Vec<&str> = self.facts.iter().map(String::as_str).collect();
        loop {
            let mut changed = false;
            for (body, head) in &self.rules {
                if true_atoms.contains(&head.as_str()) {
                    continue;
                }
                if body.iter().all(|b| true_atoms.contains(&b.as_str())) {
                    true_atoms.push(head);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        true_atoms.contains(&self.goal.as_str())
    }

    /// Applies the looping operator, producing a guarded TGD set whose
    /// chase terminates on all databases iff the goal is **not** entailed.
    pub fn looped(&self) -> Result<Program, CoreError> {
        let mut program = Program::new();
        let start = program.vocab.declare_pred("start\u{2113}", 1)?;
        let next = program.vocab.declare_pred("next\u{2113}", 2)?;

        // Propositional rules, levelled.
        for (body, head) in &self.rules {
            let head_pred = program.vocab.declare_pred(head, 1)?;
            let mut rb = RuleBuilder::new();
            let level = rb.var("L");
            for b in body {
                let p = program.vocab.declare_pred(b, 1)?;
                rb.body_atom(p, vec![level]);
            }
            rb.head_atom(head_pred, vec![level]);
            program.add_rule(rb.build()?)?;
        }

        // Seeding rules for the initial facts.
        for f in &self.facts {
            let p = program.vocab.declare_pred(f, 1)?;
            let mut rb = RuleBuilder::new();
            let level = rb.var("L");
            rb.body_atom(start, vec![level]);
            rb.head_atom(p, vec![level]);
            program.add_rule(rb.build()?)?;
        }

        // The loop gadget.
        let goal = program.vocab.declare_pred(&self.goal, 1)?;
        let mut rb = RuleBuilder::new();
        let level = rb.var("L");
        let fresh = rb.var("Lnext");
        rb.body_atom(goal, vec![level]);
        rb.head_atom(next, vec![level, fresh]);
        rb.head_atom(start, vec![fresh]);
        program.add_rule(rb.build()?)?;

        Ok(program)
    }
}

/// Generates a chain instance of depth `n`: facts `a0`, rules
/// `a0 → a1 → ... → an`, goal `an` (entailed), or goal `b` (not entailed)
/// when `entailed` is false. Used by the E5 scaling experiment.
pub fn chain_instance(n: usize, entailed: bool) -> PropositionalProgram {
    let mut rules = Vec::with_capacity(n);
    for i in 0..n {
        rules.push((vec![format!("a{i}")], format!("a{}", i + 1)));
    }
    PropositionalProgram {
        rules,
        facts: vec!["a0".to_string()],
        goal: if entailed { format!("a{n}") } else { "unreachable".to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarded::{decide_guarded, GuardedConfig};
    use chasekit_core::RuleClass;
    use chasekit_engine::ChaseVariant;

    fn decide(p: &Program, variant: ChaseVariant) -> Option<bool> {
        decide_guarded(p, GuardedConfig::new(variant)).unwrap().verdict.terminates()
    }

    #[test]
    fn entailment_fixpoint_is_correct() {
        let p = PropositionalProgram::new(
            &[(&["a", "b"], "c"), (&["c"], "d")],
            &["a", "b"],
            "d",
        );
        assert!(p.entails_goal());
        let q = PropositionalProgram::new(&[(&["a", "b"], "c")], &["a"], "c");
        assert!(!q.entails_goal());
    }

    #[test]
    fn looped_program_is_guarded() {
        let p = PropositionalProgram::new(&[(&["a", "b"], "c")], &["a", "b"], "c");
        let looped = p.looped().unwrap();
        assert!(looped.class() <= RuleClass::Guarded);
    }

    #[test]
    fn entailed_goal_makes_the_chase_diverge() {
        let p = PropositionalProgram::new(
            &[(&["a", "b"], "c"), (&["c"], "d")],
            &["a", "b"],
            "d",
        );
        assert!(p.entails_goal());
        let looped = p.looped().unwrap();
        assert_eq!(decide(&looped, ChaseVariant::SemiOblivious), Some(false));
        assert_eq!(decide(&looped, ChaseVariant::Oblivious), Some(false));
    }

    #[test]
    fn unentailed_goal_makes_the_chase_terminate() {
        let p = PropositionalProgram::new(
            &[(&["a", "b"], "c"), (&["c"], "d")],
            &["a"], // b missing: c, d underivable
            "d",
        );
        assert!(!p.entails_goal());
        let looped = p.looped().unwrap();
        assert_eq!(decide(&looped, ChaseVariant::SemiOblivious), Some(true));
        assert_eq!(decide(&looped, ChaseVariant::Oblivious), Some(true));
    }

    #[test]
    fn chain_instances_scale_and_decide_correctly() {
        for n in [1, 4, 16] {
            let yes = chain_instance(n, true);
            assert!(yes.entails_goal());
            assert_eq!(
                decide(&yes.looped().unwrap(), ChaseVariant::SemiOblivious),
                Some(false),
                "depth {n} entailed"
            );
            let no = chain_instance(n, false);
            assert!(!no.entails_goal());
            assert_eq!(
                decide(&no.looped().unwrap(), ChaseVariant::SemiOblivious),
                Some(true),
                "depth {n} unentailed"
            );
        }
    }

    #[test]
    fn goal_already_a_fact_diverges_immediately() {
        let p = PropositionalProgram::new(&[], &["g"], "g");
        assert!(p.entails_goal());
        let looped = p.looped().unwrap();
        assert_eq!(decide(&looped, ChaseVariant::SemiOblivious), Some(false));
    }

    #[test]
    fn empty_program_with_no_facts_terminates() {
        let p = PropositionalProgram::new(&[], &[], "g");
        assert!(!p.entails_goal());
        let looped = p.looped().unwrap();
        assert_eq!(decide(&looped, ChaseVariant::SemiOblivious), Some(true));
    }
}
