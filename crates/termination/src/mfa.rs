//! Model-faithful acyclicity (MFA) — Cuenca Grau et al., JAIR 2013.
//!
//! MFA is (one of) the most general practical *sufficient* conditions for
//! semi-oblivious (Skolem) chase termination: Skolemize the rules, chase the
//! critical instance, and declare failure as soon as a **cyclic term**
//! appears — a functional term `f_{σ,z}(…)` nested inside another term with
//! the same function symbol. If the Skolem chase of the critical instance
//! saturates without producing a cyclic term, the set is MFA and the
//! semi-oblivious chase terminates on every instance.
//!
//! The check itself always terminates: a term of nesting depth greater than
//! the number of Skolem symbols must repeat a symbol along a path, so
//! divergence is detected no later than that depth. The instance can still
//! grow doubly exponentially before that happens, so the implementation
//! carries a fuel bound and reports `None` when it is exhausted.
//!
//! Implementation note: the engine's semi-oblivious chase deduplicates
//! triggers by frontier, which makes it isomorphic to the Skolem chase
//! (each `(rule, frontier)` pair mints its nulls exactly once); the
//! `track_skolem` option records each null's function tag and ancestry and
//! flags cyclic terms — so MFA reduces to one configured chase run.

use crate::effort::CheckerEffort;
use chasekit_core::{CriticalInstance, Program};
use chasekit_engine::{Budget, ChaseConfig, ChaseMachine, ChaseVariant};

/// Result of the MFA check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MfaStatus {
    /// The set is MFA: the semi-oblivious chase terminates on all databases.
    Mfa,
    /// A cyclic term appeared: the set is not MFA (the chase may or may not
    /// terminate — MFA is only sufficient).
    NotMfa,
    /// Fuel exhausted before saturation or a cyclic term.
    Unknown,
}

impl MfaStatus {
    /// `Some(true)` iff MFA, `Some(false)` iff not MFA, `None` if unknown.
    pub fn is_mfa(self) -> Option<bool> {
        match self {
            MfaStatus::Mfa => Some(true),
            MfaStatus::NotMfa => Some(false),
            MfaStatus::Unknown => None,
        }
    }
}

/// The MFA verdict plus the work the check performed: how far the Skolem
/// chase of the critical instance ran before deciding. Lets experiments
/// report checker effort, not just outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfaReport {
    /// The verdict.
    pub status: MfaStatus,
    /// Chase work performed on the critical instance.
    pub effort: CheckerEffort,
}

/// Checks model-faithful acyclicity with the given fuel.
pub fn mfa_status(program: &Program, budget: &Budget) -> MfaStatus {
    mfa_report(program, budget).status
}

/// Like [`mfa_status`], but also reports how much chase work the check
/// performed before deciding.
pub fn mfa_report(program: &Program, budget: &Budget) -> MfaReport {
    let mut program = program.clone();
    let crit = CriticalInstance::build(&mut program);
    let mut machine = ChaseMachine::new(
        &program,
        ChaseConfig::of(ChaseVariant::SemiOblivious).with_skolem(),
        crit.instance,
    );
    let status = loop {
        if machine.skolem_cyclic().is_some() {
            break MfaStatus::NotMfa;
        }
        if machine.stats().applications >= budget.max_applications
            || machine.instance().len() >= budget.max_atoms
        {
            break MfaStatus::Unknown;
        }
        if machine.step().is_none() {
            break if machine.skolem_cyclic().is_some() {
                MfaStatus::NotMfa
            } else {
                MfaStatus::Mfa
            };
        }
    };
    MfaReport {
        status,
        effort: CheckerEffort::chase(machine.stats().applications, machine.instance().len()),
    }
}

/// Convenience wrapper with a default fuel.
pub fn is_mfa(program: &Program) -> Option<bool> {
    mfa_status(program, &Budget::default()).is_mfa()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_acyclicity::{is_jointly_acyclic, is_weakly_acyclic};

    fn parse(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn example1_is_not_mfa() {
        assert_eq!(is_mfa(&parse("person(X) -> hasFather(X, Y), person(Y).")), Some(false));
    }

    #[test]
    fn copy_rule_is_mfa() {
        assert_eq!(is_mfa(&parse("p(X, Y) -> q(X, Y).")), Some(true));
    }

    #[test]
    fn one_shot_existential_is_mfa() {
        assert_eq!(is_mfa(&parse("p(X) -> q(X, Z). q(X, Z) -> s(X).")), Some(true));
    }

    /// MFA strictly generalizes WA: the repeated-variable witness that WA
    /// rejects is MFA (the chase of the critical instance just terminates).
    #[test]
    fn mfa_accepts_the_wa_overapproximation_witness() {
        let p = parse("s(X) -> e(X, Z). e(X, X) -> s(X).");
        assert!(!is_weakly_acyclic(&p));
        assert_eq!(is_mfa(&p), Some(true));
    }

    /// MFA is strictly weaker than exact termination: here the chase of the
    /// critical instance nests f(f(a)) once before the constant filter
    /// kills the loop — a cyclic term appears (not MFA) although the
    /// semi-oblivious chase terminates on every database (the exact linear
    /// procedure proves it).
    #[test]
    fn mfa_strictly_weaker_than_exact_termination() {
        use crate::linear::decide_linear;
        use chasekit_engine::ChaseVariant;
        let p = parse("s(X) -> e(a, X, Z). e(X, X, Y) -> s(Y).");
        assert_eq!(is_mfa(&p), Some(false));
        assert!(
            decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates,
            "the chase terminates even though MFA rejects"
        );
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn wa_implies_mfa_on_samples() {
        for src in [
            "p(X, Y) -> q(X, Y).",
            "p(X) -> q(X, Z).",
            "r(X, Y) -> r(X, Z).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> d(X).",
            "e(X, Y) -> t(X, Y). e(X, Y), t(Y, Z) -> t(X, Z).",
        ] {
            let p = parse(src);
            assert!(is_weakly_acyclic(&p), "{src}");
            assert_eq!(is_mfa(&p), Some(true), "WA ⇒ MFA must hold for {src}");
        }
    }

    #[test]
    fn ja_implies_mfa_on_samples() {
        for src in [
            "s(X) -> e(X, Z). e(X, X) -> s(X).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y, Z). c(X, Y) -> d(Y).",
        ] {
            let p = parse(src);
            assert!(is_jointly_acyclic(&p), "{src}");
            assert_eq!(is_mfa(&p), Some(true), "JA ⇒ MFA must hold for {src}");
        }
    }

    /// A non-MFA set whose chase nevertheless terminates would witness that
    /// MFA is not necessary; cyclic-term false alarms require the term to
    /// actually nest, which needs the null to reach the same rule's
    /// frontier — here it does, yet the so-chase terminates because the
    /// second rule's repeated variable never matches.
    #[test]
    fn mfa_is_only_sufficient() {
        // f(z) feeds back into p via q(X,Z) -> p(Z): cyclic term appears.
        // But make the feedback dead by a repeated-variable filter on a
        // *different* predicate than the creation path — tricky; use the
        // simplest honest case instead: a set that is not MFA and truly
        // diverges, checking the NotMfa answer.
        let p = parse("p(X) -> q(X, Z). q(X, Z) -> p(Z).");
        assert_eq!(is_mfa(&p), Some(false));
    }

    #[test]
    fn fuel_exhaustion_reports_unknown() {
        let p = parse("p(X) -> q(X, Z). q(X, Z) -> p(Z).");
        let status = mfa_status(&p, &Budget::applications(1));
        assert_eq!(status, MfaStatus::Unknown);
    }

    #[test]
    fn mfa_report_counts_checker_work() {
        let p = parse("p(X, Y) -> q(X, Y).");
        let report = mfa_report(&p, &Budget::default());
        assert_eq!(report.status, MfaStatus::Mfa);
        assert!(report.effort.applications >= 1, "the copy rule fires on the critical instance");
        assert!(report.effort.atoms >= 2);

        let diverging = parse("person(X) -> hasFather(X, Y), person(Y).");
        let report = mfa_report(&diverging, &Budget::default());
        assert_eq!(report.status, MfaStatus::NotMfa);
        assert!(report.effort.applications >= 2, "nesting f(f(a)) needs at least two firings");
    }
}
