//! Deterministic, seed-keyed fault injection for hardening tests.
//!
//! The experiment pool ([`crate::parallel`]) promises that a panicking
//! worker costs exactly its own seed and nothing else. Proving that
//! requires faults that are *reproducible*: the same plan must select the
//! same seeds on every run and under every thread count, or the test is
//! flaky by construction. A [`FaultPlan`] selects victim seeds with a
//! splitmix64 hash keyed by a salt, so selection is a pure function of
//! `(salt, seed)` — no RNG state, no ordering sensitivity.
//!
//! Two injection styles cover the two failure modes the pool handles:
//!
//! * [`FaultPlan::should_fail`] + a plain `panic!` — a *deterministic*
//!   fault that fails every attempt, exercising the [`SeedFailure`] path;
//! * [`TransientFaults`] — a fault that fires only on the first attempt
//!   per seed, exercising the retry path (the seed still succeeds).
//!
//! [`SeedFailure`]: crate::parallel::SeedFailure

use std::sync::Mutex;

/// Selects a deterministic pseudo-random subset of seeds to fail.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    salt: u64,
    /// Failure probability as a numerator over 2^16.
    threshold: u16,
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan that fails each seed independently with probability `rate`
    /// (clamped to `[0, 1]`), keyed by `salt`. Different salts give
    /// statistically independent victim sets.
    pub fn new(salt: u64, rate: f64) -> Self {
        let threshold = (rate.clamp(0.0, 1.0) * f64::from(u16::MAX)).round() as u16;
        FaultPlan { salt, threshold }
    }

    /// Whether this plan injects a fault for `seed`. Pure: depends only on
    /// the plan's salt/rate and the seed.
    pub fn should_fail(&self, seed: u64) -> bool {
        let h = splitmix64(seed ^ splitmix64(self.salt));
        (h & 0xffff) as u16 <= self.threshold && self.threshold > 0
    }

    /// All victim seeds below `count`, in ascending order.
    pub fn victims(&self, count: u64) -> Vec<u64> {
        (0..count).filter(|&s| self.should_fail(s)).collect()
    }

    /// Panics (with the seed in the message) iff the plan selects `seed`.
    /// Call at the top of a worker closure to inject deterministic faults.
    pub fn trip(&self, seed: u64) {
        if self.should_fail(seed) {
            panic!("injected fault for seed {seed}");
        }
    }
}

/// Injects faults that fire only on the *first* attempt per seed, so the
/// pool's single retry absorbs them. Interior mutability makes it usable
/// from the `Fn(u64)` worker closure shared across threads.
#[derive(Debug, Default)]
pub struct TransientFaults {
    fired: Mutex<std::collections::HashSet<u64>>,
}

impl TransientFaults {
    /// An empty record: no seed has faulted yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Panics the first time it is called for a `seed` selected by `plan`;
    /// subsequent calls for the same seed pass through.
    pub fn trip(&self, plan: &FaultPlan, seed: u64) {
        if plan.should_fail(seed) && self.fired.lock().unwrap().insert(seed) {
            panic!("injected transient fault for seed {seed}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::par_try_map_seeds;

    #[test]
    fn plans_are_deterministic_and_salt_sensitive() {
        let a = FaultPlan::new(1, 0.1);
        let b = FaultPlan::new(2, 0.1);
        assert_eq!(a.victims(500), FaultPlan::new(1, 0.1).victims(500));
        assert_ne!(a.victims(500), b.victims(500));
        assert!(FaultPlan::new(7, 0.0).victims(1000).is_empty());
        assert_eq!(FaultPlan::new(7, 1.0).victims(100).len(), 100);
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let plan = FaultPlan::new(42, 0.05);
        let victims = plan.victims(10_000).len();
        // 5% of 10k = 500; allow a generous band for hash variance.
        assert!((300..=700).contains(&victims), "{victims} victims");
    }

    /// The ISSUE's acceptance scenario: 200 seeds, ~5% injected panics.
    /// The population completes, exactly the planned seeds fail, and every
    /// survivor is bit-identical to the fault-free run — under several
    /// thread counts.
    #[test]
    fn injected_faults_cost_exactly_their_own_seeds() {
        use chasekit_datagen::{random_simple_linear, RandomConfig};
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;

        const SEEDS: u64 = 200;
        let plan = FaultPlan::new(0xC0FFEE, 0.05);
        let victims = plan.victims(SEEDS);
        assert!(!victims.is_empty(), "plan must select at least one victim");

        let cfg = RandomConfig::default();
        let work = |seed: u64| {
            let p = random_simple_linear(&cfg, seed);
            decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
        };

        let clean: Vec<bool> = (0..SEEDS).map(work).collect();

        for threads in [1, 4, 8] {
            let faulty = par_try_map_seeds(SEEDS, threads, |seed| {
                plan.trip(seed);
                work(seed)
            });
            assert_eq!(faulty.len() as u64, SEEDS);
            let failed: Vec<u64> = faulty
                .iter()
                .enumerate()
                .filter_map(|(s, r)| r.is_err().then_some(s as u64))
                .collect();
            assert_eq!(failed, victims, "threads = {threads}");
            for (seed, slot) in faulty.iter().enumerate() {
                match slot {
                    Ok(v) => assert_eq!(*v, clean[seed], "seed {seed} diverged"),
                    Err(f) => {
                        assert_eq!(f.seed, seed as u64);
                        assert!(f.message.contains(&format!("seed {seed}")));
                    }
                }
            }
        }
    }

    /// The acceptance scenario again with the chase's own threaded pool
    /// *nested inside* each seed's work: every seed runs a parallel-round
    /// chase, so the experiment pool's workers spawn scoped discovery
    /// threads of their own. A panicking seed must still cost exactly
    /// itself, and every survivor's parallel run must stay bit-identical
    /// to the fault-free sequential chase of the same seed.
    #[test]
    fn injected_faults_in_nested_parallel_chases_cost_exactly_their_own_seeds() {
        use chasekit_core::CriticalInstance;
        use chasekit_datagen::{random_guarded, RandomConfig};
        use chasekit_engine::{Budget, ChaseConfig, ChaseMachine, ChaseVariant};

        const SEEDS: u64 = 200;
        let plan = FaultPlan::new(0xBEEF, 0.05);
        let victims = plan.victims(SEEDS);
        assert!(!victims.is_empty(), "plan must select at least one victim");

        let cfg = RandomConfig::default();
        let budget = Budget::applications(40).with_atoms(1_000);
        // The checkpoint text is the whole observable run state, so it
        // doubles as the value under differential comparison.
        let chase_text = |seed: u64, threads: usize| {
            // Random guarded sets carry no facts: chase the critical
            // instance, like the guarded experiments do.
            let mut p = random_guarded(&cfg, seed);
            let initial = CriticalInstance::build(&mut p).instance;
            let mut m =
                ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::SemiOblivious), initial);
            let stop = m.run_parallel(&budget, threads);
            format!("{stop}\n{}", m.snapshot().to_text().unwrap())
        };

        let clean: Vec<String> = (0..SEEDS).map(|s| chase_text(s, 1)).collect();

        for threads in [2, 4] {
            let faulty = par_try_map_seeds(SEEDS, threads, |seed| {
                plan.trip(seed);
                chase_text(seed, 2)
            });
            assert_eq!(faulty.len() as u64, SEEDS);
            let failed: Vec<u64> = faulty
                .iter()
                .enumerate()
                .filter_map(|(s, r)| r.is_err().then_some(s as u64))
                .collect();
            assert_eq!(failed, victims, "pool threads = {threads}");
            for (seed, slot) in faulty.iter().enumerate() {
                match slot {
                    Ok(text) => assert_eq!(
                        text, &clean[seed],
                        "seed {seed} diverged under the nested parallel chase"
                    ),
                    Err(f) => assert_eq!(f.seed, seed as u64),
                }
            }
        }
    }

    #[test]
    fn transient_faults_are_absorbed_by_the_retry() {
        let plan = FaultPlan::new(99, 0.2);
        let transients = TransientFaults::new();
        let out = par_try_map_seeds(100, 4, |seed| {
            transients.trip(&plan, seed);
            seed * 2
        });
        assert!(out.iter().all(|r| r.is_ok()), "retry must absorb single-shot faults");
        let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..100).map(|s| s * 2).collect::<Vec<_>>());
    }
}
