//! The experiment driver: regenerates every table of the reproduction.
//!
//! Usage:
//!
//! ```text
//! experiments [all|e0|e1|e2|e3|e4|e5|e6|e7] [--quick] [--csv <dir>]
//! ```
//!
//! `--quick` shrinks the populations ~10x for smoke runs; `--csv <dir>`
//! additionally writes one CSV file per table.

use std::io::Write as _;

use chasekit_bench::exp::{
    e0_examples, e1_simple_linear, e2_linear, e3_scaling, e4_guarded, e5_looping, e6_landscape,
    e7_restricted, landscape,
};
use chasekit_bench::table::Table;

struct Options {
    which: Vec<String>,
    quick: bool,
    csv_dir: Option<String>,
}

fn parse_args() -> Options {
    let mut which = Vec::new();
    let mut quick = false;
    let mut csv_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [all|e0|e1|e2|e3|e4|e5|e6|e7|e9]... [--quick] [--csv <dir>]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = (0..=7).map(|i| format!("e{i}")).collect();
        which.push("e9".to_string());
    }
    Options { which, quick, csv_dir }
}

fn emit(tables: &[Table], opts: &Options, failures: &mut Vec<String>, checks: &[(bool, String)]) {
    for t in tables {
        println!("{}", t.render());
        if let Some(dir) = &opts.csv_dir {
            let slug: String = t
                .title
                .chars()
                .take_while(|&c| c != ':')
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
                .collect();
            let path = format!("{dir}/{}.csv", slug.trim_matches('-'));
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::File::create(&path)?.write_all(t.to_csv().as_bytes()))
            {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
    for (ok, msg) in checks {
        if *ok {
            println!("CHECK PASS: {msg}");
        } else {
            println!("CHECK FAIL: {msg}");
            failures.push(msg.clone());
        }
    }
    println!();
}

fn main() {
    let opts = parse_args();
    let q = opts.quick;
    let mut failures: Vec<String> = Vec::new();

    for which in opts.which.clone() {
        match which.as_str() {
            "e0" => {
                let t = e0_examples::run(if q { 50 } else { 1_000 });
                emit(&[t], &opts, &mut failures, &[]);
            }
            "e1" => {
                let mut p = e1_simple_linear::Params::default();
                if q {
                    p.samples = 200;
                }
                let (t, o) = e1_simple_linear::run(&p);
                emit(
                    &[t],
                    &opts,
                    &mut failures,
                    &[
                        (o.wa_vs_exact_so == 0, "Theorem 1: WA = CT-so on SL".into()),
                        (o.ra_vs_exact_o == 0, "Theorem 1: RA = CT-o on SL".into()),
                        (o.truth_contradictions == 0, "E1: no chase contradictions".into()),
                    ],
                );
            }
            "e2" => {
                let mut p = e2_linear::Params::default();
                if q {
                    p.samples = 200;
                }
                let (ts, o) = e2_linear::run(&p);
                emit(
                    &ts,
                    &opts,
                    &mut failures,
                    &[
                        (
                            o.truth_contradictions == 0,
                            "Theorem 2: exact procedure matches the chase".into(),
                        ),
                        (
                            o.gap_misclassified == 0,
                            "Theorem 2: gap family classified correctly".into(),
                        ),
                        (
                            o.wa_wrong > 0,
                            "Theorem 2: WA is strictly weaker on linear rules".into(),
                        ),
                    ],
                );
            }
            "e3" => {
                let mut p = e3_scaling::Params::default();
                if q {
                    p.rule_counts = vec![2, 8, 32];
                    p.arities = vec![2, 4, 6];
                    p.repeats = 3;
                }
                let ts = e3_scaling::run(&p);
                emit(&ts, &opts, &mut failures, &[]);
            }
            "e4" => {
                let mut p = e4_guarded::Params::default();
                if q {
                    p.samples = 150;
                    p.arities = vec![1, 2, 3];
                }
                match e4_guarded::run(&p) {
                    Ok((ts, o)) => emit(
                        &ts,
                        &opts,
                        &mut failures,
                        &[(
                            o.contradictions == 0,
                            "Theorem 4: guarded decider matches the chase".into(),
                        )],
                    ),
                    Err(e) => {
                        eprintln!("e4: guarded decider rejected a generated set: {e}");
                        failures.push(format!("e4 aborted: {e}"));
                    }
                }
            }
            "e5" => {
                let mut p = e5_looping::Params::default();
                if q {
                    p.depths = vec![1, 4, 16];
                }
                let (t, o) = e5_looping::run(&p);
                emit(
                    &[t],
                    &opts,
                    &mut failures,
                    &[(o.mismatches == 0, "Looping operator: diverges iff entailed".into())],
                );
            }
            "e6" => {
                let mut p = e6_landscape::Params::default();
                if q {
                    p.samples = 250;
                }
                let (ts, o) = e6_landscape::run(&p);
                emit(
                    &ts,
                    &opts,
                    &mut failures,
                    &[
                        (o.soundness_violations == 0, "Landscape: all conditions sound".into()),
                        (
                            o.containment_violations == 0,
                            "Landscape: RA/WA/JA/MFA containments hold".into(),
                        ),
                    ],
                );
            }
            "e7" => {
                let mut p = e7_restricted::Params::default();
                if q {
                    p.samples = 250;
                }
                let (t, o) = e7_restricted::run(&p);
                emit(
                    &[t],
                    &opts,
                    &mut failures,
                    &[
                        (
                            o.unconfirmed_witnesses == 0,
                            "E7: every divergence witness confirmed".into(),
                        ),
                        (
                            o.probe_contradictions == 0,
                            "E7: no probe contradicts a termination claim".into(),
                        ),
                    ],
                );
            }
            "e9" => {
                let p = if q { landscape::Params::quick() } else { landscape::Params::default() };
                let result = landscape::run(&p);
                let json_path =
                    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checker_landscape.json");
                if let Err(e) = std::fs::write(json_path, &result.json) {
                    eprintln!("failed to write {json_path}: {e}");
                    failures.push(format!("e9: could not write {json_path}"));
                }
                let o = &result.outcome;
                let min_programs = if q { 1_000 } else { 1_500 };
                emit(
                    &result.tables,
                    &opts,
                    &mut failures,
                    &[
                        (
                            o.contradictions.is_empty(),
                            format!(
                                "E9: zero checker-vs-chase contradictions ({} found)",
                                o.contradictions.len()
                            ),
                        ),
                        (
                            o.programs >= min_programs,
                            format!("E9: corpus scale ({} programs >= {min_programs})", o.programs),
                        ),
                    ],
                );
                for c in o.contradictions.iter().take(20) {
                    eprintln!("e9 contradiction: {c}");
                }
            }
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        }
    }

    if failures.is_empty() {
        println!("All experiment checks passed.");
    } else {
        println!("{} CHECK FAILURES:", failures.len());
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
