//! # chasekit-bench
//!
//! The experiment harness reproducing the paper's results: one experiment
//! per theorem/example (E0–E7), a tiny table writer, and chase-based ground
//! truth. The `experiments` binary prints every table; the Criterion
//! benches in `benches/` measure the same workloads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exp;
pub mod fault;
pub mod parallel;
pub mod table;
pub mod truth;
