//! A tiny aligned-text table writer (with CSV export) for experiment
//! output. No serialization framework needed.

use std::fmt::Write as _;

/// A simple table: header + rows of strings.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        let row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = w - cell.chars().count();
                s.push_str(cell);
                s.extend(std::iter::repeat_n(' ', pad));
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders CSV (RFC-4180-ish; quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "22222"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[3].starts_with("alpha"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }
}
