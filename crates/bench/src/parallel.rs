//! A tiny seed-parallel map for the experiment populations.
//!
//! Experiments evaluate thousands of independent seeded samples; this
//! spreads them over worker threads (crossbeam scoped threads + an atomic
//! work counter) while keeping results in seed order, so all tables and
//! counters stay exactly reproducible regardless of thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Applies `f` to every seed in `0..count`, in parallel, returning results
/// in seed order. `threads = 1` degenerates to a plain loop.
pub fn par_map_seeds<T, F>(count: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..count).map(|_| None).collect());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(count as usize) {
            scope.spawn(|_| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= count {
                    break;
                }
                let value = f(seed);
                results.lock().expect("no panics hold the lock")[seed as usize] = Some(value);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|slot| slot.expect("every seed was processed"))
        .collect()
}

/// A sensible default worker count: the available parallelism, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let out = par_map_seeds(100, 4, |seed| seed * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let seq = par_map_seeds(37, 1, |s| s * s % 17);
        let par = par_map_seeds(37, 8, |s| s * s % 17);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_one_seed_edge_cases() {
        assert!(par_map_seeds(0, 4, |s| s).is_empty());
        assert_eq!(par_map_seeds(1, 4, |s| s), vec![0]);
    }

    #[test]
    fn real_workload_through_the_pool() {
        use chasekit_datagen::{random_simple_linear, RandomConfig};
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        let cfg = RandomConfig::default();
        let results = par_map_seeds(40, 4, |seed| {
            let p = random_simple_linear(&cfg, seed);
            decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
        });
        let sequential: Vec<bool> = (0..40)
            .map(|seed| {
                let p = random_simple_linear(&cfg, seed);
                decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
            })
            .collect();
        assert_eq!(results, sequential);
    }
}
