//! A seed-parallel map for the experiment populations, hardened against
//! worker faults.
//!
//! Experiments evaluate thousands of independent seeded samples; this
//! spreads them over worker threads (std scoped threads + an atomic work
//! counter) while keeping results in seed order, so all tables and
//! counters stay exactly reproducible regardless of thread count.
//!
//! Two layers:
//!
//! * [`par_try_map_seeds`] — the fault-tolerant core. Each seed runs under
//!   `catch_unwind` with one retry; a panicking seed yields a
//!   [`SeedFailure`] in its slot instead of aborting the population.
//!   Results flow back over a channel tagged with their seed, so there is
//!   no shared results vector to contend on or poison.
//! * [`par_map_seeds`] — the strict wrapper: panics (with the offending
//!   seed in the message) if any seed failed twice.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// A seed whose worker panicked on every attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedFailure {
    /// The seed that failed.
    pub seed: u64,
    /// How many times it was attempted (currently always 2).
    pub attempts: u32,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl std::fmt::Display for SeedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} panicked on all {} attempts: {}",
            self.seed, self.attempts, self.message
        )
    }
}

impl std::error::Error for SeedFailure {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(seed)` under `catch_unwind`, retrying once on panic.
///
/// The retry matters in practice: transient faults (a fallible allocator,
/// an injected fault, a glitchy IO-backed workload) should not cost the
/// population a sample. Deterministic panics fail both attempts and
/// surface as [`SeedFailure`].
fn attempt<T>(f: &(impl Fn(u64) -> T + Sync), seed: u64) -> Result<T, SeedFailure> {
    match catch_unwind(AssertUnwindSafe(|| f(seed))) {
        Ok(v) => Ok(v),
        Err(_first) => match catch_unwind(AssertUnwindSafe(|| f(seed))) {
            Ok(v) => Ok(v),
            Err(second) => Err(SeedFailure {
                seed,
                attempts: 2,
                message: payload_message(second.as_ref()),
            }),
        },
    }
}

/// Applies `f` to every seed in `0..count`, in parallel, returning one
/// `Result` per seed in seed order. A seed whose worker panics twice
/// yields `Err(SeedFailure)`; all other seeds are unaffected.
/// `threads = 1` degenerates to a plain loop.
pub fn par_try_map_seeds<T, F>(count: u64, threads: usize, f: F) -> Vec<Result<T, SeedFailure>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(|seed| attempt(&f, seed)).collect();
    }

    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(u64, Result<T, SeedFailure>)>();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(count as usize) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= count {
                    break;
                }
                // `attempt` never unwinds, so a worker always finishes its
                // loop and the scope join cannot itself panic.
                if tx.send((seed, attempt(f, seed))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<Result<T, SeedFailure>>> = (0..count).map(|_| None).collect();
    for (seed, result) in rx {
        slots[seed as usize] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(seed, slot)| slot.unwrap_or_else(|| panic!("seed {seed} was never processed")))
        .collect()
}

/// Applies `f` to every seed in `0..count`, in parallel, returning results
/// in seed order. Panics — naming the seed — if any seed fails twice; use
/// [`par_try_map_seeds`] when the population should survive bad seeds.
pub fn par_map_seeds<T, F>(count: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_try_map_seeds(count, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|failure| panic!("par_map_seeds: {failure}")))
        .collect()
}

/// A sensible default worker count: the available parallelism, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let out = par_map_seeds(100, 4, |seed| seed * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let seq = par_map_seeds(37, 1, |s| s * s % 17);
        let par = par_map_seeds(37, 8, |s| s * s % 17);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_never_changes_results() {
        for threads in [1, 2, 3, 8, 32] {
            let out = par_try_map_seeds(53, threads, |s| s.wrapping_mul(0x9e37_79b9) >> 7);
            let reference: Vec<_> = (0..53).map(|s: u64| Ok(s.wrapping_mul(0x9e37_79b9) >> 7)).collect();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn zero_and_one_seed_edge_cases() {
        assert!(par_map_seeds(0, 4, |s| s).is_empty());
        assert_eq!(par_map_seeds(1, 4, |s| s), vec![0]);
    }

    #[test]
    fn panicking_seed_degrades_to_a_failure_slot() {
        let out = par_try_map_seeds(20, 4, |seed| {
            if seed == 7 || seed == 13 {
                panic!("injected failure for seed {seed}");
            }
            seed + 1
        });
        for (seed, slot) in out.iter().enumerate() {
            match slot {
                Ok(v) => {
                    assert_ne!(seed, 7);
                    assert_ne!(seed, 13);
                    assert_eq!(*v, seed as u64 + 1);
                }
                Err(failure) => {
                    assert!(seed == 7 || seed == 13);
                    assert_eq!(failure.seed, seed as u64);
                    assert_eq!(failure.attempts, 2);
                    assert!(failure.message.contains("injected failure"));
                }
            }
        }
    }

    #[test]
    fn transient_panics_are_retried_successfully() {
        use std::sync::Mutex;
        // First attempt for each odd seed panics; the retry succeeds.
        let fired: Mutex<std::collections::HashSet<u64>> = Mutex::new(Default::default());
        let out = par_try_map_seeds(16, 4, |seed| {
            if seed % 2 == 1 && fired.lock().unwrap().insert(seed) {
                panic!("transient glitch");
            }
            seed
        });
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
    }

    #[test]
    #[should_panic(expected = "seed 3")]
    fn strict_wrapper_names_the_failing_seed() {
        let _ = par_map_seeds(8, 2, |seed| {
            if seed == 3 {
                panic!("boom");
            }
            seed
        });
    }

    #[test]
    fn real_workload_through_the_pool() {
        use chasekit_datagen::{random_simple_linear, RandomConfig};
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        let cfg = RandomConfig::default();
        let results = par_map_seeds(40, 4, |seed| {
            let p = random_simple_linear(&cfg, seed);
            decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
        });
        let sequential: Vec<bool> = (0..40)
            .map(|seed| {
                let p = random_simple_linear(&cfg, seed);
                decide_linear(&p, ChaseVariant::SemiOblivious, false).unwrap().terminates
            })
            .collect();
        assert_eq!(results, sequential);
    }
}
