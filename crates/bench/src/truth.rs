//! Ground truth for validation: what the chase engine actually does on the
//! critical instance, independently of any syntactic analysis.

use chasekit_core::{CriticalInstance, Program};
use chasekit_engine::{chase, Budget, ChaseVariant};

/// What a budgeted critical-instance chase run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseTruth {
    /// The chase saturated: termination proven (Marnette's lemma lifts the
    /// critical instance to all databases).
    Saturates,
    /// The budget ran out: evidence of divergence, not proof. Validation
    /// uses budgets far above the saturation sizes seen in the population,
    /// so a checker claiming `Terminates` against `Exceeded` is a red flag.
    Exceeded,
}

/// Runs the chase of `program` on its critical instance under `budget`.
pub fn critical_chase_truth(
    program: &Program,
    variant: ChaseVariant,
    budget: &Budget,
) -> ChaseTruth {
    let mut program = program.clone();
    let crit = CriticalInstance::build(&mut program);
    if chase(&program, variant, crit.instance, budget).outcome.is_saturated() {
        ChaseTruth::Saturates
    } else {
        ChaseTruth::Exceeded
    }
}

/// Compares a checker's claim against the observed truth.
/// Returns `Some(description)` when they contradict.
pub fn contradiction(claim: Option<bool>, truth: ChaseTruth) -> Option<&'static str> {
    match (claim, truth) {
        (Some(true), ChaseTruth::Exceeded) => {
            Some("checker says terminates, chase exceeded budget")
        }
        (Some(false), ChaseTruth::Saturates) => {
            Some("checker says diverges, chase saturated")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_known_cases() {
        let diverging = Program::parse("p(X, Y) -> p(Y, Z).").unwrap();
        assert_eq!(
            critical_chase_truth(&diverging, ChaseVariant::SemiOblivious, &Budget::applications(500)),
            ChaseTruth::Exceeded
        );
        let terminating = Program::parse("p(X, Y) -> q(X, Y).").unwrap();
        assert_eq!(
            critical_chase_truth(&terminating, ChaseVariant::SemiOblivious, &Budget::default()),
            ChaseTruth::Saturates
        );
    }

    #[test]
    fn contradictions_are_reported() {
        assert!(contradiction(Some(true), ChaseTruth::Exceeded).is_some());
        assert!(contradiction(Some(false), ChaseTruth::Saturates).is_some());
        assert!(contradiction(Some(true), ChaseTruth::Saturates).is_none());
        assert!(contradiction(Some(false), ChaseTruth::Exceeded).is_none());
        assert!(contradiction(None, ChaseTruth::Saturates).is_none());
    }
}
