//! E4 — Theorem 4: deciding chase termination for guarded TGDs.
//!
//! Validates the pumping procedure on a random guarded population against
//! chase ground truth (zero contradictions required; `Unknown`s counted),
//! and measures the cost growth as the guard arity increases — the
//! bounded-arity EXPTIME vs unbounded 2EXPTIME separation shows up as the
//! cloud/type space expanding with arity.

use chasekit_datagen::{random_guarded, RandomConfig};
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::{decide_guarded, GuardedConfig, GuardedError, GuardedVerdict};

use crate::exp::{median_us, timed};
use crate::table::Table;
use crate::truth::{contradiction, critical_chase_truth};

/// E4 parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of sampled guarded rule sets per variant.
    pub samples: u64,
    /// Generator dials.
    pub cfg: RandomConfig,
    /// Decision fuel.
    pub fuel: Budget,
    /// Ground-truth chase budget (should exceed the decision fuel).
    pub truth_budget: Budget,
    /// Arity sweep for the scaling series.
    pub arities: Vec<usize>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            samples: 1_000,
            cfg: RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() },
            fuel: Budget { max_applications: 4_000, max_atoms: 40_000, ..Budget::unlimited() },
            truth_budget: Budget { max_applications: 8_000, max_atoms: 80_000, ..Budget::unlimited() },
            arities: vec![1, 2, 3, 4],
        }
    }
}

/// E4 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Decider-vs-chase contradictions (must be zero).
    pub contradictions: u64,
    /// Samples the decider could not decide within fuel.
    pub unknown: u64,
}

/// Runs E4. Fails — instead of panicking — if the generator ever emits a
/// rule set the guarded decider rejects (a generator bug, not a crash).
pub fn run(params: &Params) -> Result<(Vec<Table>, Outcome), GuardedError> {
    let mut outcome = Outcome::default();

    let mut pop = Table::new(
        "E4a / Theorem 4: guarded population vs chase ground truth",
        &["variant", "samples", "terminates", "diverges", "unknown", "contradictions", "median time (us)"],
    );
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        let records = crate::parallel::par_map_seeds(
            params.samples,
            crate::parallel::default_threads(),
            |seed| {
                let program = random_guarded(&params.cfg, seed);
                let mut cfg = GuardedConfig::new(variant);
                cfg.max_applications = params.fuel.max_applications;
                cfg.max_atoms = params.fuel.max_atoms;
                let (report, us) = timed(|| decide_guarded(&program, cfg));
                let truth = critical_chase_truth(&program, variant, &params.truth_budget);
                report.map(|r| (r.verdict, truth, us))
            },
        );

        let mut terminates = 0u64;
        let mut diverges = 0u64;
        let mut unknown = 0u64;
        let mut contradictions = 0u64;
        let mut times = Vec::new();
        for record in records {
            let (verdict, truth, us) = record?;
            times.push(us);
            let claim = verdict.terminates();
            match verdict {
                GuardedVerdict::Terminates => terminates += 1,
                GuardedVerdict::Diverges(_) => diverges += 1,
                GuardedVerdict::Unknown => unknown += 1,
            }
            if contradiction(claim, truth).is_some() {
                contradictions += 1;
            }
        }
        outcome.contradictions += contradictions;
        outcome.unknown += unknown;
        pop.row(&[
            variant.to_string(),
            params.samples.to_string(),
            terminates.to_string(),
            diverges.to_string(),
            unknown.to_string(),
            contradictions.to_string(),
            median_us(times).to_string(),
        ]);
    }

    // Arity scaling series.
    let mut scale = Table::new(
        "E4b / Theorem 4: decision cost vs guard arity (bounded-arity EXPTIME regime)",
        &["max arity", "median time (us)", "unknown fraction"],
    );
    for &arity in &params.arities {
        let cfg = RandomConfig { max_arity: arity, ..params.cfg };
        let mut times = Vec::new();
        let mut unknown = 0u64;
        let reps = (params.samples / 10).max(10);
        for seed in 0..reps {
            let program = random_guarded(&cfg, 50_000 + seed);
            let mut gcfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
            gcfg.max_applications = params.fuel.max_applications;
            gcfg.max_atoms = params.fuel.max_atoms;
            let (report, us) = timed(|| decide_guarded(&program, gcfg));
            let report = report?;
            times.push(us);
            if matches!(report.verdict, GuardedVerdict::Unknown) {
                unknown += 1;
            }
        }
        scale.row(&[
            arity.to_string(),
            median_us(times).to_string(),
            format!("{:.3}", unknown as f64 / reps as f64),
        ]);
    }

    Ok((vec![pop, scale], outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_decider_never_contradicts_the_chase() {
        let params = Params { samples: 120, arities: vec![2, 3], ..Default::default() };
        let (_, outcome) = run(&params).expect("generator emits guarded sets");
        assert_eq!(outcome.contradictions, 0);
        // Unknowns should be rare on this small population.
        assert!(
            outcome.unknown <= params.samples / 10,
            "too many unknowns: {}",
            outcome.unknown
        );
    }
}
