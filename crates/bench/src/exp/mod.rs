//! The experiment suite: one module per paper artifact. See DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for paper-vs-measured records.

pub mod e0_examples;
pub mod e1_simple_linear;
pub mod e2_linear;
pub mod e3_scaling;
pub mod e4_guarded;
pub mod e5_looping;
pub mod e6_landscape;
pub mod e7_restricted;
pub mod landscape;

use std::time::Instant;

/// Times a closure, returning (result, elapsed microseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros())
}

/// Median of a slice of microsecond timings (0 for empty input).
pub fn median_us(mut xs: Vec<u128>) -> u128 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Renders an `Option<bool>` termination verdict.
pub fn verdict_str(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "terminates",
        Some(false) => "diverges",
        None => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_edges() {
        assert_eq!(median_us(vec![]), 0);
        assert_eq!(median_us(vec![5]), 5);
        assert_eq!(median_us(vec![3, 1, 2]), 2);
    }

    #[test]
    fn verdict_strings() {
        assert_eq!(verdict_str(Some(true)), "terminates");
        assert_eq!(verdict_str(Some(false)), "diverges");
        assert_eq!(verdict_str(None), "unknown");
    }
}
