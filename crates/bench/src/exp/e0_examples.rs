//! E0 — the paper's worked examples (Section 1, Examples 1 and 2).
//!
//! Reproduces the narrative claims: both examples make every chase variant
//! run forever, and the growth is one new atom per step (an infinite
//! father-chain / path). The table shows the budgeted runs.

use chasekit_core::{Instance, Program};
use chasekit_engine::{chase, Budget, ChaseVariant};

use crate::table::Table;

/// Runs E0 with the given step budget per run.
pub fn run(steps: u64) -> Table {
    let mut table = Table::new(
        "E0: paper Examples 1-2 under all chase variants (budgeted runs)",
        &["example", "variant", "outcome", "applications", "atoms", "nulls"],
    );
    let examples = [
        (
            "Example 1 (person/hasFather)",
            "person(bob). person(X) -> hasFather(X, Y), person(Y).",
        ),
        ("Example 2 (p-path)", "p(a, b). p(X, Y) -> p(Y, Z)."),
    ];
    for (name, src) in examples {
        let program = Program::parse(src).expect("example parses");
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
        ] {
            let initial = Instance::from_atoms(program.facts().iter().cloned());
            let run = chase(&program, variant, initial, &Budget::applications(steps));
            let outcome = if run.outcome.is_saturated() {
                "saturated"
            } else {
                "budget-exhausted (diverging)"
            };
            table.row(&[
                name.to_string(),
                variant.to_string(),
                outcome.to_string(),
                run.stats.applications.to_string(),
                run.instance.len().to_string(),
                run.stats.nulls_minted.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_examples_diverge_under_all_variants() {
        let t = run(100);
        assert_eq!(t.len(), 6);
        let rendered = t.render();
        assert!(!rendered.contains(" saturated"));
        assert!(rendered.matches("budget-exhausted").count() == 6);
    }
}
