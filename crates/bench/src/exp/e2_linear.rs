//! E2 — Theorem 2: on linear TGDs, plain weak/rich acyclicity are no longer
//! exact; the *critical* (shape-refined) variants are.
//!
//! Two parts:
//!
//! 1. **The gap family** (the theorem's motivation): `critical-gap-n`
//!    stacks rules whose dangerous position cycle is unrealizable (repeated
//!    body variable) — plain WA/RA reject every member, the exact
//!    procedure accepts, and the chase indeed saturates.
//! 2. **Random linear population** with repeated variables and constants:
//!    per-sample agreement between the exact procedure and chase ground
//!    truth must be perfect; the number of samples where plain WA/RA get
//!    the answer wrong measures the size of the gap the theorem closes.

use chasekit_acyclicity::{is_richly_acyclic, is_weakly_acyclic};
use chasekit_datagen::{critical_gap, random_linear, RandomConfig};
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::decide_linear;

use crate::table::Table;
use crate::truth::{contradiction, critical_chase_truth, ChaseTruth};

/// E2 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of sampled linear rule sets.
    pub samples: u64,
    /// Generator dials (constants and repeated variables on).
    pub cfg: RandomConfig,
    /// Gap-family sizes to table.
    pub gap_sizes: [usize; 3],
    /// Ground-truth chase budget.
    pub truth_budget: Budget,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            samples: 2_000,
            cfg: RandomConfig { constants: 2, complexity: 0.45, ..RandomConfig::default() },
            gap_sizes: [1, 2, 4],
            truth_budget: Budget { max_applications: 3_000, max_atoms: 30_000, ..Budget::unlimited() },
        }
    }
}

/// E2 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Samples where plain WA got CTˢ° wrong (the gap Theorem 2 closes).
    pub wa_wrong: u64,
    /// Samples where plain RA got CT° wrong.
    pub ra_wrong: u64,
    /// Exact-procedure-vs-chase contradictions (must be zero).
    pub truth_contradictions: u64,
    /// Gap-family members misclassified by the exact procedure (must be 0).
    pub gap_misclassified: u64,
}

/// Runs E2.
pub fn run(params: &Params) -> (Vec<Table>, Outcome) {
    let mut outcome = Outcome::default();

    // Part 1: the gap family.
    let mut gap_table = Table::new(
        "E2a / Theorem 2 motivation: the gap family (plain WA/RA reject, chase terminates)",
        &["family", "WA", "RA", "critical-WA (exact CT-so)", "critical-RA (exact CT-o)", "chase"],
    );
    for &n in &params.gap_sizes {
        let lp = critical_gap(n);
        let wa = is_weakly_acyclic(&lp.program);
        let ra = is_richly_acyclic(&lp.program);
        let cwa = decide_linear(&lp.program, ChaseVariant::SemiOblivious, false)
            .unwrap()
            .terminates;
        let cra = decide_linear(&lp.program, ChaseVariant::Oblivious, false).unwrap().terminates;
        let truth =
            critical_chase_truth(&lp.program, ChaseVariant::SemiOblivious, &params.truth_budget);
        if Some(cwa) != lp.so_terminates || Some(cra) != lp.o_terminates {
            outcome.gap_misclassified += 1;
        }
        gap_table.row(&[
            lp.name.clone(),
            (if wa { "accepts" } else { "rejects" }).to_string(),
            (if ra { "accepts" } else { "rejects" }).to_string(),
            (if cwa { "terminates" } else { "diverges" }).to_string(),
            (if cra { "terminates" } else { "diverges" }).to_string(),
            format!("{truth:?}"),
        ]);
    }

    // Part 2: random linear population (parallel over seeds).
    struct Sample {
        wa: bool,
        ra: bool,
        exact_so: bool,
        exact_o: bool,
        truth_so: ChaseTruth,
        truth_o: ChaseTruth,
    }
    let samples = crate::parallel::par_map_seeds(
        params.samples,
        crate::parallel::default_threads(),
        |seed| {
            let program = random_linear(&params.cfg, seed);
            Sample {
                wa: is_weakly_acyclic(&program),
                ra: is_richly_acyclic(&program),
                exact_so: decide_linear(&program, ChaseVariant::SemiOblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
                exact_o: decide_linear(&program, ChaseVariant::Oblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
                truth_so: critical_chase_truth(
                    &program,
                    ChaseVariant::SemiOblivious,
                    &params.truth_budget,
                ),
                truth_o: critical_chase_truth(
                    &program,
                    ChaseVariant::Oblivious,
                    &params.truth_budget,
                ),
            }
        },
    );

    let mut wa_accepts = 0u64;
    let mut exact_so_terminating = 0u64;
    let mut exact_o_terminating = 0u64;
    for s in &samples {
        wa_accepts += s.wa as u64;
        exact_so_terminating += s.exact_so as u64;
        exact_o_terminating += s.exact_o as u64;
        if s.wa != s.exact_so {
            outcome.wa_wrong += 1;
            // WA is sound: it can only be wrong by rejecting a terminating
            // set, never by accepting a diverging one.
            assert!(s.exact_so && !s.wa, "WA accepted a diverging set — soundness bug");
        }
        if s.ra != s.exact_o {
            outcome.ra_wrong += 1;
            assert!(s.exact_o && !s.ra, "RA accepted a diverging set — soundness bug");
        }
        for (claim, truth) in [(s.exact_so, s.truth_so), (s.exact_o, s.truth_o)] {
            if contradiction(Some(claim), truth).is_some() {
                outcome.truth_contradictions += 1;
            }
        }
    }

    let mut pop_table = Table::new(
        "E2b / Theorem 2: random linear population (repeated variables + constants)",
        &["quantity", "value"],
    );
    pop_table.row(&["samples", &params.samples.to_string()]);
    pop_table.row(&["WA accepts", &wa_accepts.to_string()]);
    pop_table.row(&["exact CT-so terminating", &exact_so_terminating.to_string()]);
    pop_table.row(&["exact CT-o terminating", &exact_o_terminating.to_string()]);
    pop_table.row(&["WA wrong (gap closed by Thm 2)", &outcome.wa_wrong.to_string()]);
    pop_table.row(&["RA wrong (gap closed by Thm 2)", &outcome.ra_wrong.to_string()]);
    pop_table.row(&[
        "exact vs chase contradictions",
        &outcome.truth_contradictions.to_string(),
    ]);

    (vec![gap_table, pop_table], outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_procedure_is_clean_and_wa_has_a_gap() {
        let params = Params { samples: 200, ..Default::default() };
        let (_, outcome) = run(&params);
        assert_eq!(outcome.truth_contradictions, 0);
        assert_eq!(outcome.gap_misclassified, 0);
        assert!(
            outcome.wa_wrong > 0,
            "the population should exhibit the WA gap Theorem 2 closes"
        );
    }
}
