//! E1 — Theorem 1: on (constant-free) simple linear TGDs,
//! `CT° = RA` and `CTˢ° = WA`.
//!
//! The experiment samples the class and checks four-way agreement per
//! sample and per variant:
//!
//! * plain weak/rich acyclicity (the theorem's syntactic side);
//! * the exact shape-graph procedure (this library's `CT` decision);
//! * chase ground truth on the critical instance (the semantic side;
//!   budgeted — `Exceeded` is divergence *evidence*, and any checker claim
//!   of termination against it is counted as a contradiction).
//!
//! The reproduction succeeds iff both disagreement columns are zero.

use chasekit_acyclicity::{is_richly_acyclic, is_weakly_acyclic};
use chasekit_datagen::{random_simple_linear, RandomConfig};
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::decide_linear;

use crate::table::Table;
use crate::truth::{contradiction, critical_chase_truth, ChaseTruth};

/// E1 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of sampled rule sets.
    pub samples: u64,
    /// Generator dials (constants are forced to 0: Theorem 1 is stated for
    /// constant-free rules; see E2 for why that matters).
    pub cfg: RandomConfig,
    /// Ground-truth chase budget.
    pub truth_budget: Budget,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            samples: 2_000,
            cfg: RandomConfig::default(),
            truth_budget: Budget { max_applications: 3_000, max_atoms: 30_000, ..Budget::unlimited() },
        }
    }
}

/// E1 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Samples where WA and the exact CTˢ° decision disagreed.
    pub wa_vs_exact_so: u64,
    /// Samples where RA and the exact CT° decision disagreed.
    pub ra_vs_exact_o: u64,
    /// Checker-vs-chase contradictions (both variants).
    pub truth_contradictions: u64,
}

/// Per-seed record (computed in parallel, reduced in seed order).
struct Sample {
    wa: bool,
    ra: bool,
    exact_so: bool,
    exact_o: bool,
    truth_so: ChaseTruth,
    truth_o: ChaseTruth,
}

/// Runs E1.
pub fn run(params: &Params) -> (Table, Outcome) {
    let mut cfg = params.cfg;
    cfg.constants = 0;

    let samples = crate::parallel::par_map_seeds(
        params.samples,
        crate::parallel::default_threads(),
        |seed| {
            let program = random_simple_linear(&cfg, seed);
            Sample {
                wa: is_weakly_acyclic(&program),
                ra: is_richly_acyclic(&program),
                exact_so: decide_linear(&program, ChaseVariant::SemiOblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
                exact_o: decide_linear(&program, ChaseVariant::Oblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
                truth_so: critical_chase_truth(
                    &program,
                    ChaseVariant::SemiOblivious,
                    &params.truth_budget,
                ),
                truth_o: critical_chase_truth(
                    &program,
                    ChaseVariant::Oblivious,
                    &params.truth_budget,
                ),
            }
        },
    );

    let mut outcome = Outcome::default();
    let mut so_terminating = 0u64;
    let mut o_terminating = 0u64;
    let mut truth_exceeded = 0u64;
    for s in &samples {
        if s.wa != s.exact_so {
            outcome.wa_vs_exact_so += 1;
        }
        if s.ra != s.exact_o {
            outcome.ra_vs_exact_o += 1;
        }
        so_terminating += s.exact_so as u64;
        o_terminating += s.exact_o as u64;
        for (claim, truth) in [(s.exact_so, s.truth_so), (s.exact_o, s.truth_o)] {
            if truth == ChaseTruth::Exceeded {
                truth_exceeded += 1;
            }
            if contradiction(Some(claim), truth).is_some() {
                outcome.truth_contradictions += 1;
            }
        }
    }

    let mut table = Table::new(
        "E1 / Theorem 1: CT-so = WA and CT-o = RA on constant-free simple linear TGDs",
        &["quantity", "value"],
    );
    table.row(&["samples", &params.samples.to_string()]);
    table.row(&["CT-so terminating", &so_terminating.to_string()]);
    table.row(&["CT-o terminating", &o_terminating.to_string()]);
    table.row(&["WA vs exact CT-so disagreements", &outcome.wa_vs_exact_so.to_string()]);
    table.row(&["RA vs exact CT-o disagreements", &outcome.ra_vs_exact_o.to_string()]);
    table.row(&[
        "checker vs chase contradictions",
        &outcome.truth_contradictions.to_string(),
    ]);
    table.row(&["chase runs exceeding truth budget", &truth_exceeded.to_string()]);
    (table, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_holds_on_a_quick_population() {
        let params = Params { samples: 150, ..Default::default() };
        let (_, outcome) = run(&params);
        assert_eq!(outcome.wa_vs_exact_so, 0, "WA must equal exact CT-so on SL");
        assert_eq!(outcome.ra_vs_exact_o, 0, "RA must equal exact CT-o on SL");
        assert_eq!(outcome.truth_contradictions, 0);
    }
}
