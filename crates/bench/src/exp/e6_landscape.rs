//! E6 — the sufficient-condition landscape (the paper's §1: "a long line of
//! research on sufficient conditions").
//!
//! On a random linear population (where the exact answer is computable),
//! measures each classical condition against exact `CTˢ°` / `CT°`:
//! acceptance counts, soundness violations (a condition accepting a
//! diverging set — must be zero), and strictness witnesses for the known
//! containments `RA ⊊ WA ⊊ JA ⊆ MFA ⊊ CTˢ°` and `aGRD` incomparable
//! with all of them.

use chasekit_acyclicity::{
    is_grd_acyclic, is_jointly_acyclic, is_richly_acyclic, is_weakly_acyclic,
};
use chasekit_datagen::{random_linear, RandomConfig};
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::{decide_linear, mfa_status, MfaStatus};

use crate::table::Table;

/// E6 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of sampled linear rule sets.
    pub samples: u64,
    /// Generator dials.
    pub cfg: RandomConfig,
    /// MFA chase budget.
    pub mfa_budget: Budget,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            samples: 1_500,
            cfg: RandomConfig { constants: 1, complexity: 0.4, ..RandomConfig::default() },
            mfa_budget: Budget { max_applications: 3_000, max_atoms: 30_000, ..Budget::unlimited() },
        }
    }
}

/// E6 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Any condition accepting a set whose chase diverges (must be zero).
    pub soundness_violations: u64,
    /// Containment violations among RA⊆WA⊆JA⊆MFA (must be zero).
    pub containment_violations: u64,
}

/// Runs E6.
pub fn run(params: &Params) -> (Vec<Table>, Outcome) {
    let mut outcome = Outcome::default();

    let mut accept = [0u64; 6]; // RA, WA, JA, MFA, aGRD, exact-so
    let mut exact_o_count = 0u64;
    // Strictness witnesses.
    let mut wa_not_ra = 0u64;
    let mut ja_not_wa = 0u64;
    let mut mfa_not_ja = 0u64;
    let mut exact_not_mfa = 0u64;
    let mut agrd_not_wa = 0u64;
    let mut wa_not_agrd = 0u64;
    let mut mfa_unknown = 0u64;

    let records = crate::parallel::par_map_seeds(
        params.samples,
        crate::parallel::default_threads(),
        |seed| {
            let program = random_linear(&params.cfg, 7_000_000 + seed);
            (
                is_richly_acyclic(&program),
                is_weakly_acyclic(&program),
                is_jointly_acyclic(&program),
                mfa_status(&program, &params.mfa_budget),
                is_grd_acyclic(&program),
                decide_linear(&program, ChaseVariant::SemiOblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
                decide_linear(&program, ChaseVariant::Oblivious, false)
                    .expect("generated sets are linear")
                    .terminates,
            )
        },
    );

    for (seed, (ra, wa, ja, mfa_raw, agrd, exact_so, exact_o)) in records.into_iter().enumerate() {
        let mfa = match mfa_raw {
            MfaStatus::Mfa => Some(true),
            MfaStatus::NotMfa => Some(false),
            MfaStatus::Unknown => {
                mfa_unknown += 1;
                None
            }
        };

        accept[0] += ra as u64;
        accept[1] += wa as u64;
        accept[2] += ja as u64;
        accept[3] += (mfa == Some(true)) as u64;
        accept[4] += agrd as u64;
        accept[5] += exact_so as u64;
        exact_o_count += exact_o as u64;

        // Soundness: each condition implies termination of its variant.
        if ra && !exact_o {
            outcome.soundness_violations += 1;
        }
        for (cond, name) in
            [(wa, "WA"), (ja, "JA"), (mfa == Some(true), "MFA"), (agrd, "aGRD")]
        {
            if cond && !exact_so {
                outcome.soundness_violations += 1;
                eprintln!("soundness violation: {name} accepted a diverging set (seed {seed})");
            }
        }

        // Containments.
        if ra && !wa {
            outcome.containment_violations += 1;
        }
        if wa && !ja {
            outcome.containment_violations += 1;
        }
        if ja && mfa == Some(false) {
            outcome.containment_violations += 1;
        }

        // Strictness witnesses.
        wa_not_ra += (wa && !ra) as u64;
        ja_not_wa += (ja && !wa) as u64;
        mfa_not_ja += (mfa == Some(true) && !ja) as u64;
        exact_not_mfa += (exact_so && mfa == Some(false)) as u64;
        agrd_not_wa += (agrd && !wa) as u64;
        wa_not_agrd += (wa && !agrd) as u64;
    }

    let mut acc = Table::new(
        "E6a / sufficient-condition landscape: acceptance on random linear sets",
        &["condition", "accepts", "of exact CT-so", "guarantee"],
    );
    let names = ["RA", "WA", "JA", "MFA", "aGRD", "exact CT-so"];
    let guarantees = [
        "oblivious chase",
        "semi-oblivious chase",
        "semi-oblivious chase",
        "semi-oblivious chase",
        "all chase variants",
        "exact (this paper)",
    ];
    for i in 0..6 {
        acc.row(&[
            names[i].to_string(),
            accept[i].to_string(),
            format!("{:.1}%", 100.0 * accept[i] as f64 / accept[5].max(1) as f64),
            guarantees[i].to_string(),
        ]);
    }

    let mut strict = Table::new(
        "E6b / strictness witnesses (counts of separating samples)",
        &["separation", "witnesses"],
    );
    strict.row(&["WA \\ RA (o-chase diverges, so-chase terminates)", &wa_not_ra.to_string()]);
    strict.row(&["JA \\ WA", &ja_not_wa.to_string()]);
    strict.row(&["MFA \\ JA", &mfa_not_ja.to_string()]);
    strict.row(&["exact CT-so \\ MFA", &exact_not_mfa.to_string()]);
    strict.row(&["aGRD \\ WA", &agrd_not_wa.to_string()]);
    strict.row(&["WA \\ aGRD", &wa_not_agrd.to_string()]);
    strict.row(&["MFA unknown (fuel)", &mfa_unknown.to_string()]);
    strict.row(&["exact CT-o terminating", &exact_o_count.to_string()]);
    strict.row(&["soundness violations", &outcome.soundness_violations.to_string()]);
    strict.row(&["containment violations", &outcome.containment_violations.to_string()]);

    (vec![acc, strict], outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landscape_is_sound_and_properly_nested() {
        let params = Params { samples: 250, ..Default::default() };
        let (_, outcome) = run(&params);
        assert_eq!(outcome.soundness_violations, 0);
        assert_eq!(outcome.containment_violations, 0);
    }
}
