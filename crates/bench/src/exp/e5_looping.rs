//! E5 — the looping operator: the paper's lower-bound technique as an
//! executable reduction.
//!
//! For entailment chains of growing depth, the looped rule set diverges iff
//! the goal is entailed, and any correct termination checker must in effect
//! perform the entailment — visible as decision time growing with the chain
//! depth. The table reports, per depth: the verdicts for the entailed and
//! unentailed variants (which must be `diverges` / `terminates`
//! respectively) and the decision times.

use chasekit_datagen as _;
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::{chain_instance, decide_guarded, GuardedConfig};

use crate::exp::{timed, verdict_str};
use crate::table::Table;

/// E5 parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Chain depths to test.
    pub depths: Vec<usize>,
    /// Decision fuel.
    pub fuel: Budget,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            depths: vec![1, 2, 4, 8, 16, 32, 64],
            fuel: Budget { max_applications: 50_000, max_atoms: 500_000, ..Budget::unlimited() },
        }
    }
}

/// E5 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Depths where the checker's answer differed from the entailment
    /// ground truth (must be zero).
    pub mismatches: u64,
}

/// Runs E5.
pub fn run(params: &Params) -> (Table, Outcome) {
    let mut outcome = Outcome::default();
    let mut table = Table::new(
        "E5 / looping operator: termination <=> non-entailment (chain family)",
        &[
            "depth",
            "entailed verdict",
            "entailed time (us)",
            "unentailed verdict",
            "unentailed time (us)",
        ],
    );
    for &depth in &params.depths {
        let mut cells: Vec<String> = vec![depth.to_string()];
        for entailed in [true, false] {
            let prop = chain_instance(depth, entailed);
            debug_assert_eq!(prop.entails_goal(), entailed);
            let looped = prop.looped().expect("looping operator output is valid");
            let mut cfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
            cfg.max_applications = params.fuel.max_applications;
            cfg.max_atoms = params.fuel.max_atoms;
            let (report, us) =
                timed(|| decide_guarded(&looped, cfg).expect("looped sets are guarded"));
            let claim = report.verdict.terminates();
            // Diverges iff entailed.
            if claim != Some(!entailed) {
                outcome.mismatches += 1;
            }
            cells.push(verdict_str(claim).to_string());
            cells.push(us.to_string());
        }
        table.row(&cells);
    }
    (table, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn looping_reduction_is_faithful_at_all_depths() {
        let params = Params { depths: vec![1, 3, 9], ..Default::default() };
        let (_, outcome) = run(&params);
        assert_eq!(outcome.mismatches, 0);
    }
}
