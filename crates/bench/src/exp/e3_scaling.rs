//! E3 — Theorem 3: complexity of the linear decision procedures.
//!
//! The theorem places the problem in NL for simple linear rules (and for
//! linear rules of bounded arity) and PSPACE-completeness for unbounded
//! arity. The implementation explores the reachable shape graph explicitly,
//! so the *measured shape* is:
//!
//! * polynomial growth in the number of rules/predicates at fixed arity
//!   (the shape space is polynomial when arity is bounded);
//! * exponential growth in the arity (the shape space is the full pattern
//!   space of a width-`k` register).
//!
//! Both series report median wall time and explored-shape counts.

use chasekit_datagen::{random_simple_linear, wide, wide_terminating, RandomConfig};
use chasekit_engine::ChaseVariant;
use chasekit_termination::LinearAnalysis;

use crate::exp::{median_us, timed};
use crate::table::Table;

/// E3 parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Rule counts for the fixed-arity series.
    pub rule_counts: Vec<usize>,
    /// Arities for the wide-register series.
    pub arities: Vec<usize>,
    /// Seeds per point (median reported).
    pub repeats: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            rule_counts: vec![2, 4, 8, 16, 32, 64, 128, 256],
            arities: vec![1, 2, 3, 4, 5, 6, 7, 8],
            repeats: 5,
        }
    }
}

fn analyze(program: &chasekit_core::Program) -> (bool, usize, u128) {
    let ((terminates, shapes), us) = timed(|| {
        let analysis = LinearAnalysis::explore(program, false).expect("linear input");
        let d = analysis.decide(ChaseVariant::SemiOblivious).expect("supported variant");
        (d.terminates, d.shapes)
    });
    (terminates, shapes, us)
}

/// Runs E3.
pub fn run(params: &Params) -> Vec<Table> {
    // Series A: #rules at fixed arity 2.
    let mut a = Table::new(
        "E3a / Theorem 3: decision cost vs #rules (simple linear, arity <= 2: the NL regime)",
        &["rules", "median time (us)", "median shapes", "terminating fraction"],
    );
    for &n in &params.rule_counts {
        let cfg = RandomConfig {
            predicates: n.max(2),
            max_arity: 2,
            rules: n,
            ..RandomConfig::default()
        };
        let mut times = Vec::new();
        let mut shapes = Vec::new();
        let mut terminating = 0u64;
        for seed in 0..params.repeats {
            let program = random_simple_linear(&cfg, 1_000 + seed);
            let (t, s, us) = analyze(&program);
            times.push(us);
            shapes.push(s as u128);
            terminating += t as u64;
        }
        a.row(&[
            n.to_string(),
            median_us(times).to_string(),
            median_us(shapes).to_string(),
            format!("{:.2}", terminating as f64 / params.repeats as f64),
        ]);
    }

    // Series B: arity sweep on the wide-register families.
    let mut b = Table::new(
        "E3b / Theorem 3: decision cost vs arity (wide registers: the PSPACE regime)",
        &["arity", "family", "verdict", "time (us)", "shapes"],
    );
    for &k in &params.arities {
        for lp in [wide(k), wide_terminating(k)] {
            let (t, s, us) = analyze(&lp.program);
            b.row(&[
                k.to_string(),
                lp.name.clone(),
                if t { "terminates" } else { "diverges" }.to_string(),
                us.to_string(),
                s.to_string(),
            ]);
        }
    }

    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_counts_grow_exponentially_in_arity_but_linearly_in_rules() {
        let params = Params {
            rule_counts: vec![2, 8],
            arities: vec![2, 4, 6],
            repeats: 3,
        };
        let tables = run(&params);
        assert_eq!(tables.len(), 2);
        // The wide-terminating family at arity k has >= 2^k initial shapes.
        let rendered = tables[1].render();
        assert!(rendered.contains("wide-terminating-6"));
    }

    #[test]
    fn wide_terminating_shape_growth_is_exponential() {
        use chasekit_termination::LinearAnalysis;
        let s4 = LinearAnalysis::explore(&wide_terminating(4).program, false)
            .unwrap()
            .shape_count();
        let s8 = LinearAnalysis::explore(&wide_terminating(8).program, false)
            .unwrap()
            .shape_count();
        assert!(
            s8 >= 8 * s4,
            "expected exponential growth, got {s4} at arity 4 vs {s8} at arity 8"
        );
    }
}
