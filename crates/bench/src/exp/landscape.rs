//! E9 — the corpus-scale termination-checker shoot-out (ROADMAP item 4).
//!
//! Runs the **whole portfolio** — WA/RA via `check_with_work`, JA, aGRD,
//! MFA via `mfa_report`, the exact linear procedure (critical-WA/RA), the
//! guarded pumping procedure, the general pumping semi-decision, the
//! `decide` front door, and the restricted-chase procedure — over
//! thousands of ontology-shaped generated programs
//! ([`chasekit_datagen::ontology`]), establishes ground truth by bounded
//! chase of the critical instance under all three variants, and
//! cross-validates every verdict.
//!
//! # Ground-truth protocol
//!
//! For each program the critical instance is chased under each variant
//! with a budget. Saturation proves termination (Marnette's lemma for the
//! oblivious/semi-oblivious chase; for the restricted chase it only
//! reports that this fair order terminated on this database). A budget
//! overrun lands the program in the explicit **`exceeded` bucket**:
//! presumed diverging, never proven. Because terminating chases can be
//! long (see `binary_counter`), a checker claim of *terminates* against
//! an exceeded run first triggers one **escalated** re-run with
//! `escalation ×` the budget; only if the chase still exceeds is the pair
//! counted a contradiction.
//!
//! Contradictions are **hard failures**, not statistics:
//!
//! * claim `terminates` + chase exceeded (after escalation) — every
//!   variant (for the restricted chase a diverging fair order on the
//!   critical instance already refutes CT);
//! * claim `diverges` + chase saturated — oblivious/semi-oblivious only
//!   (restricted saturation of one order proves nothing about all
//!   databases, so the pair is skipped there).

use chasekit_acyclicity::{check_with_work, is_grd_acyclic, is_jointly_acyclic, GraphKind};
use chasekit_core::RuleClass;
use chasekit_datagen::ontology::{critical_constants, dl_lite_r, lubm};
use chasekit_datagen::LabeledProgram;
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::{
    decide, decide_guarded, decide_linear, mfa_report, pumping_decide, CheckerEffort,
    GuardedConfig, MfaStatus,
};

use crate::exp::timed;
use crate::table::Table;
use crate::truth::{critical_chase_truth, ChaseTruth};

/// Every checker in the shoot-out, in record order. The JSON rows and the
/// smoke tests key on these names.
pub const CHECKERS: &[&str] = &[
    "wa(so)",
    "ra(o)",
    "ja(so)",
    "agrd(so)",
    "agrd(o)",
    "mfa(so)",
    "critical-wa(so)",
    "critical-ra(o)",
    "guarded(so)",
    "guarded(o)",
    "pumping(so)",
    "pumping(o)",
    "portfolio(so)",
    "portfolio(o)",
    "restricted",
];

/// Index into the per-variant ground truth for each checker: 0 = so,
/// 1 = o, 2 = restricted.
const CHECKER_VARIANT: &[usize] = &[0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 2];

const VARIANT_NAMES: &[&str] = &["so", "o", "restricted"];

/// A seeded, size-parameterized program generator.
pub type FamilyGen = fn(usize, u64) -> LabeledProgram;

/// The generated families (name, generator).
pub const FAMILIES: &[(&str, FamilyGen)] = &[
    ("dl-lite-r", dl_lite_r),
    ("lubm", lubm),
    ("critical-constants", critical_constants),
];

/// E9 parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Family size parameters to sweep.
    pub sizes: Vec<usize>,
    /// Seeds per (family, size) cell.
    pub seeds_per_size: u64,
    /// Per-checker fuel (MFA, pumping, portfolio).
    pub checker_budget: Budget,
    /// Ground-truth bounded-chase fuel (before escalation).
    pub truth_budget: Budget,
    /// Budget multiplier for the escalated ground-truth re-run.
    pub escalation: u32,
    /// Marked in the JSON so smoke-mode numbers are never mistaken for
    /// real ones.
    pub quick: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            sizes: vec![2, 4, 8, 12],
            seeds_per_size: 125,
            checker_budget: Budget {
                max_applications: 10_000,
                max_atoms: 100_000,
                ..Budget::unlimited()
            },
            truth_budget: Budget {
                max_applications: 20_000,
                max_atoms: 200_000,
                ..Budget::unlimited()
            },
            escalation: 8,
            quick: false,
        }
    }
}

impl Params {
    /// The `CHASEKIT_BENCH_QUICK` smoke configuration: still ≥ 1000
    /// programs across the three families, smaller budgets.
    pub fn quick() -> Params {
        Params {
            sizes: vec![2, 4, 6],
            seeds_per_size: 112,
            checker_budget: Budget {
                max_applications: 4_000,
                max_atoms: 40_000,
                ..Budget::unlimited()
            },
            truth_budget: Budget {
                max_applications: 8_000,
                max_atoms: 80_000,
                ..Budget::unlimited()
            },
            escalation: 8,
            quick: true,
        }
    }
}

/// One checker's outcome on one program.
#[derive(Debug, Clone, Copy)]
struct Record {
    /// `None` both for "no claim" (a sufficient condition rejecting) and
    /// for fuel-limited unknowns.
    claim: Option<bool>,
    /// Whether the checker ran at all (the exact procedures only accept
    /// their class).
    applicable: bool,
    /// [`CheckerEffort::cost`] scalar.
    cost: u64,
    /// Wall-clock microseconds.
    us: u128,
}

const NOT_APPLICABLE: Record = Record { claim: None, applicable: false, cost: 0, us: 0 };

/// One program's full evaluation.
struct ProgramEval {
    /// The generated program's name (family + size + seed); tests key
    /// assertion messages on it, the aggregator only reads the fields
    /// below.
    #[cfg_attr(not(test), allow(dead_code))]
    name: String,
    /// Ground truth per variant (so, o, restricted).
    truth: [ChaseTruth; 3],
    /// Whether the escalated re-run fired per variant.
    escalated: [bool; 3],
    records: Vec<Record>,
    contradictions: Vec<String>,
}

/// E9 outcome.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Programs evaluated.
    pub programs: u64,
    /// Hard cross-validation failures (must be empty).
    pub contradictions: Vec<String>,
}

/// Tables + outcome + the BENCH_checker_landscape.json body.
pub struct LandscapeResult {
    /// Rendered tables (per-checker landscape, ground-truth census).
    pub tables: Vec<Table>,
    /// Pass/fail counters.
    pub outcome: Outcome,
    /// JSON body for `BENCH_checker_landscape.json`.
    pub json: String,
}

fn scaled(budget: &Budget, factor: u32) -> Budget {
    Budget {
        max_applications: budget.max_applications.saturating_mul(factor as u64),
        max_atoms: budget.max_atoms.saturating_mul(factor as usize),
        ..*budget
    }
}

/// Runs every checker on one program (ground truth comes separately).
fn run_checkers(lp: &LabeledProgram, params: &Params) -> Vec<Record> {
    let p = &lp.program;
    let class = p.class();
    let linear = class <= RuleClass::Linear;
    let guarded = class <= RuleClass::Guarded;
    let mut recs = Vec::with_capacity(CHECKERS.len());

    // wa(so) / ra(o): sufficient, termination claims only.
    for kind in [GraphKind::Standard, GraphKind::Extended] {
        let ((verdict, work), us) = timed(|| check_with_work(p, kind));
        recs.push(Record {
            claim: verdict.is_acyclic().then_some(true),
            applicable: true,
            cost: CheckerEffort::from(work).cost(),
            us,
        });
    }
    // ja(so).
    let (ja, us) = timed(|| is_jointly_acyclic(p));
    recs.push(Record { claim: ja.then_some(true), applicable: true, cost: 0, us });
    // agrd: one computation, sound for both variants.
    let (agrd, us) = timed(|| is_grd_acyclic(p));
    let agrd_rec = Record { claim: agrd.then_some(true), applicable: true, cost: 0, us };
    recs.push(agrd_rec);
    recs.push(agrd_rec);
    // mfa(so).
    let (mfa, us) = timed(|| mfa_report(p, &params.checker_budget));
    recs.push(Record {
        claim: (mfa.status == MfaStatus::Mfa).then_some(true),
        applicable: true,
        cost: mfa.effort.cost(),
        us,
    });
    // critical-wa(so) / critical-ra(o): exact on linear inputs.
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        if linear {
            let (d, us) = timed(|| decide_linear(p, variant, false).expect("class checked"));
            recs.push(Record {
                claim: Some(d.terminates),
                applicable: true,
                cost: CheckerEffort::graph(d.position_nodes, d.position_edges, 0).cost(),
                us,
            });
        } else {
            recs.push(NOT_APPLICABLE);
        }
    }
    // guarded(so) / guarded(o): exact (modulo fuel) on guarded inputs.
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        if guarded {
            let mut cfg = GuardedConfig::new(variant);
            cfg.max_applications = params.checker_budget.max_applications;
            cfg.max_atoms = params.checker_budget.max_atoms;
            let (r, us) = timed(|| decide_guarded(p, cfg).expect("class checked"));
            recs.push(Record {
                claim: r.verdict.terminates(),
                applicable: true,
                cost: r.effort.cost(),
                us,
            });
        } else {
            recs.push(NOT_APPLICABLE);
        }
    }
    // pumping(so) / pumping(o): the sound-both-ways semi-decision, any class.
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        let mut cfg = GuardedConfig::new(variant);
        cfg.max_applications = params.checker_budget.max_applications;
        cfg.max_atoms = params.checker_budget.max_atoms;
        let (r, us) = timed(|| pumping_decide(p, cfg).expect("variant is not restricted"));
        recs.push(Record {
            claim: r.verdict.terminates(),
            applicable: true,
            cost: r.effort.cost(),
            us,
        });
    }
    // portfolio(so) / portfolio(o): the front door.
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        let (d, us) = timed(|| decide(p, variant, &params.checker_budget));
        recs.push(Record { claim: d.terminates, applicable: true, cost: d.effort.cost(), us });
    }
    // restricted.
    let (v, us) = timed(|| chasekit_termination::restricted_verdict(p));
    recs.push(Record { claim: v.terminates, applicable: true, cost: 0, us });

    recs
}

fn evaluate(lp: &LabeledProgram, params: &Params) -> ProgramEval {
    let records = run_checkers(lp, params);

    let variants =
        [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious, ChaseVariant::Restricted];
    let mut truth = [ChaseTruth::Exceeded; 3];
    let mut escalated = [false; 3];
    for (vi, &variant) in variants.iter().enumerate() {
        truth[vi] = critical_chase_truth(&lp.program, variant, &params.truth_budget);
        if truth[vi] == ChaseTruth::Exceeded {
            // Escalate only when a checker actually claims termination for
            // this variant — the only case where `exceeded` could turn a
            // slow saturation into a false contradiction.
            let claimed = records
                .iter()
                .zip(CHECKER_VARIANT)
                .any(|(r, &cv)| cv == vi && r.claim == Some(true));
            if claimed {
                escalated[vi] = true;
                truth[vi] = critical_chase_truth(
                    &lp.program,
                    variant,
                    &scaled(&params.truth_budget, params.escalation),
                );
            }
        }
    }

    let mut contradictions = Vec::new();
    for (ci, rec) in records.iter().enumerate() {
        let vi = CHECKER_VARIANT[ci];
        match (rec.claim, truth[vi]) {
            (Some(true), ChaseTruth::Exceeded) => contradictions.push(format!(
                "{}: {} claims terminates but the {} chase of the critical instance \
                 exceeded the escalated budget",
                lp.name, CHECKERS[ci], VARIANT_NAMES[vi]
            )),
            (Some(false), ChaseTruth::Saturates) if vi != 2 => contradictions.push(format!(
                "{}: {} claims diverges but the {} chase of the critical instance saturated",
                lp.name, CHECKERS[ci], VARIANT_NAMES[vi]
            )),
            _ => {}
        }
    }

    ProgramEval { name: lp.name.clone(), truth, escalated, records, contradictions }
}

/// Aggregated statistics for one checker over a set of programs.
#[derive(Debug, Default, Clone)]
struct CheckerAgg {
    applicable: u64,
    claims_terminate: u64,
    claims_diverge: u64,
    unknown: u64,
    correct: u64,
    /// Claims the bounded chase cannot adjudicate: a restricted-chase
    /// `diverges` claim against a saturating restricted order (CT-restricted
    /// quantifies over *all* fair orders and databases, so one saturating
    /// order neither confirms nor refutes it). Excluded from the precision
    /// denominator.
    unverifiable: u64,
    costs: Vec<u64>,
    micros: Vec<u128>,
}

impl CheckerAgg {
    fn add(&mut self, rec: &Record, truth: ChaseTruth, restricted: bool) {
        if !rec.applicable {
            return;
        }
        self.applicable += 1;
        self.costs.push(rec.cost);
        self.micros.push(rec.us);
        match rec.claim {
            Some(true) => {
                self.claims_terminate += 1;
                if truth == ChaseTruth::Saturates {
                    self.correct += 1;
                }
            }
            Some(false) => {
                self.claims_diverge += 1;
                if truth == ChaseTruth::Exceeded {
                    self.correct += 1;
                } else if restricted {
                    self.unverifiable += 1;
                }
            }
            None => self.unknown += 1,
        }
    }

    fn decided(&self) -> u64 {
        self.claims_terminate + self.claims_diverge - self.unverifiable
    }

    /// Fraction of chase-adjudicable claims agreeing with ground truth
    /// (1 when silent).
    fn precision(&self) -> f64 {
        if self.decided() == 0 {
            1.0
        } else {
            self.correct as f64 / self.decided() as f64
        }
    }

    /// Fraction of applicable programs correctly decided.
    fn recall(&self) -> f64 {
        if self.applicable == 0 {
            0.0
        } else {
            self.correct as f64 / self.applicable as f64
        }
    }
}

fn percentile<T: Copy + Ord>(xs: &[T], pct: usize) -> Option<T> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    Some(sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)])
}

/// One (family, size) sweep cell: its per-checker aggregates, ground-truth
/// census (saturated/exceeded per variant), and escalation count.
struct Cell {
    family: String,
    size: usize,
    programs: u64,
    aggs: Vec<CheckerAgg>,
    census: [u64; 6],
    escalations: u64,
}

/// Runs E9.
pub fn run(params: &Params) -> LandscapeResult {
    let mut outcome = Outcome::default();
    let mut cells: Vec<Cell> = Vec::new();
    let mut global: Vec<CheckerAgg> = vec![CheckerAgg::default(); CHECKERS.len()];
    let mut truth_census = [0u64; 6]; // sat/exc per variant
    let mut escalations = 0u64;

    for (fi, &(family, gen)) in FAMILIES.iter().enumerate() {
        for &size in &params.sizes {
            let base = 1_000_003u64
                .wrapping_mul(size as u64)
                .wrapping_add(7_000_019u64.wrapping_mul(fi as u64));
            let evals = crate::parallel::par_map_seeds(
                params.seeds_per_size,
                crate::parallel::default_threads(),
                |seed| evaluate(&gen(size, base.wrapping_add(seed)), params),
            );

            let mut aggs = vec![CheckerAgg::default(); CHECKERS.len()];
            let mut cell_census = [0u64; 6];
            let mut cell_escalations = 0u64;
            for eval in &evals {
                outcome.programs += 1;
                for vi in 0..3 {
                    let slot = vi * 2 + (eval.truth[vi] == ChaseTruth::Exceeded) as usize;
                    cell_census[slot] += 1;
                    truth_census[slot] += 1;
                    cell_escalations += eval.escalated[vi] as u64;
                }
                for (ci, rec) in eval.records.iter().enumerate() {
                    let t = eval.truth[CHECKER_VARIANT[ci]];
                    let restricted = CHECKER_VARIANT[ci] == 2;
                    aggs[ci].add(rec, t, restricted);
                    global[ci].add(rec, t, restricted);
                }
                outcome.contradictions.extend(eval.contradictions.iter().cloned());
            }
            escalations += cell_escalations;
            cells.push(Cell {
                family: family.to_string(),
                size,
                programs: evals.len() as u64,
                aggs,
                census: cell_census,
                escalations: cell_escalations,
            });
        }
    }

    // Table 1: per-checker landscape over the whole corpus.
    let mut t1 = Table::new(
        "E9 / checker landscape: full portfolio over ontology-shaped corpora",
        &[
            "checker",
            "applicable",
            "terminates",
            "diverges",
            "unknown",
            "precision",
            "recall",
            "med effort",
            "p95 effort",
            "med us",
            "p95 us",
        ],
    );
    for (ci, agg) in global.iter().enumerate() {
        t1.row(&[
            CHECKERS[ci].to_string(),
            agg.applicable.to_string(),
            agg.claims_terminate.to_string(),
            agg.claims_diverge.to_string(),
            agg.unknown.to_string(),
            format!("{:.3}", agg.precision()),
            format!("{:.3}", agg.recall()),
            percentile(&agg.costs, 50).unwrap_or(0).to_string(),
            percentile(&agg.costs, 95).unwrap_or(0).to_string(),
            percentile(&agg.micros, 50).unwrap_or(0).to_string(),
            percentile(&agg.micros, 95).unwrap_or(0).to_string(),
        ]);
    }

    // Table 2: ground-truth census per (family, size).
    let mut t2 = Table::new(
        "E9 / bounded-chase ground truth census",
        &[
            "family",
            "size",
            "programs",
            "so sat/exc",
            "o sat/exc",
            "restricted sat/exc",
            "escalations",
        ],
    );
    for cell in &cells {
        t2.row(&[
            cell.family.clone(),
            cell.size.to_string(),
            cell.programs.to_string(),
            format!("{}/{}", cell.census[0], cell.census[1]),
            format!("{}/{}", cell.census[2], cell.census[3]),
            format!("{}/{}", cell.census[4], cell.census[5]),
            cell.escalations.to_string(),
        ]);
    }

    let json = render_json(params, &outcome, &cells, &truth_census, escalations);
    LandscapeResult { tables: vec![t1, t2], outcome, json }
}

fn render_json(
    params: &Params,
    outcome: &Outcome,
    cells: &[Cell],
    truth_census: &[u64; 6],
    escalations: u64,
) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"checker_landscape\",\n");
    json.push_str(&format!("  \"quick\": {},\n", params.quick));
    json.push_str(&format!("  \"programs\": {},\n", outcome.programs));
    json.push_str(&format!("  \"contradictions\": {},\n", outcome.contradictions.len()));
    json.push_str(&format!(
        "  \"ground_truth\": {{\"budget_applications\": {}, \"budget_atoms\": {}, \
         \"escalation\": {}, \"escalated_runs\": {}, \"so\": {{\"saturated\": {}, \
         \"exceeded\": {}}}, \"o\": {{\"saturated\": {}, \"exceeded\": {}}}, \
         \"restricted\": {{\"saturated\": {}, \"exceeded\": {}}}}},\n",
        params.truth_budget.max_applications,
        params.truth_budget.max_atoms,
        params.escalation,
        escalations,
        truth_census[0],
        truth_census[1],
        truth_census[2],
        truth_census[3],
        truth_census[4],
        truth_census[5],
    ));
    json.push_str("  \"families\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"size\": {}, \"programs\": {}, \
             \"truth\": {{\"so_saturated\": {}, \"so_exceeded\": {}, \"o_saturated\": {}, \
             \"o_exceeded\": {}, \"restricted_saturated\": {}, \"restricted_exceeded\": {}, \
             \"escalations\": {}}},\n",
            cell.family,
            cell.size,
            cell.programs,
            cell.census[0],
            cell.census[1],
            cell.census[2],
            cell.census[3],
            cell.census[4],
            cell.census[5],
            cell.escalations,
        ));
        json.push_str("     \"checkers\": [\n");
        for (ci, agg) in cell.aggs.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"checker\": \"{}\", \"applicable\": {}, \"terminates\": {}, \
                 \"diverges\": {}, \"unknown\": {}, \"precision\": {:.4}, \"recall\": {:.4}, \
                 \"median_effort\": {}, \"p95_effort\": {}, \"median_us\": {}, \
                 \"p95_us\": {}}}{}\n",
                CHECKERS[ci],
                agg.applicable,
                agg.claims_terminate,
                agg.claims_diverge,
                agg.unknown,
                agg.precision(),
                agg.recall(),
                percentile(&agg.costs, 50).unwrap_or(0),
                percentile(&agg.costs, 95).unwrap_or(0),
                percentile(&agg.micros, 50).unwrap_or(0),
                percentile(&agg.micros, 95).unwrap_or(0),
                if ci + 1 < cell.aggs.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        Params {
            sizes: vec![2, 3],
            seeds_per_size: 6,
            ..Params::quick()
        }
    }

    #[test]
    fn shootout_has_no_contradictions_on_a_small_slice() {
        let result = run(&tiny_params());
        assert_eq!(result.outcome.programs, 2 * 6 * FAMILIES.len() as u64);
        assert!(
            result.outcome.contradictions.is_empty(),
            "{:?}",
            result.outcome.contradictions
        );
    }

    #[test]
    fn json_mentions_every_checker_and_family() {
        let result = run(&tiny_params());
        for name in CHECKERS {
            assert!(
                result.json.contains(&format!("\"checker\": \"{name}\"")),
                "missing {name}"
            );
        }
        for (family, _) in FAMILIES {
            assert!(result.json.contains(&format!("\"family\": \"{family}\"")));
        }
        assert!(result.json.contains("\"quick\": true"));
        // Balanced braces/brackets — the writer is hand-rolled.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = result.json.matches(open).count();
            let closes = result.json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn exact_checkers_decide_linear_members() {
        // On the dl-lite-r cell every program is simple linear, so the
        // exact linear procedure must decide all of them.
        let params = tiny_params();
        let evals: Vec<ProgramEval> = (0..8u64)
            .map(|seed| evaluate(&dl_lite_r(3, seed), &params))
            .collect();
        let cw = CHECKERS.iter().position(|&c| c == "critical-wa(so)").unwrap();
        for e in &evals {
            assert!(e.records[cw].applicable, "{}", e.name);
            assert!(e.records[cw].claim.is_some(), "{}", e.name);
            assert!(e.contradictions.is_empty(), "{:?}", e.contradictions);
        }
    }
}
