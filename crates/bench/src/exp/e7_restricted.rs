//! E7 — future work: restricted-chase termination for single-head linear
//! TGDs.
//!
//! Validates the exact procedure two ways:
//!
//! * **Divergence claims** come with a witness start shape; the witness is
//!   materialized into a one-atom database and the engine's restricted
//!   chase must blow through its budget on it.
//! * **Termination claims** are probed: the restricted chase must saturate
//!   on the critical instance and on a family of random databases.
//!
//! The table also reports how often plain WA (sufficient for the restricted
//! chase) differs from the exact answer — the gap the future-work
//! characterization closes.

use chasekit_acyclicity::is_weakly_acyclic;
use chasekit_core::Instance;
use chasekit_datagen::{
    random_database, random_linear, random_simple_linear, DbConfig, RandomConfig,
};
use chasekit_engine::{chase, Budget, StopReason, ChaseVariant};
use chasekit_termination::restricted::{find_divergent_start, materialize_start};
use chasekit_termination::is_single_head_linear;

use crate::table::Table;

/// E7 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of candidate rule sets to sample (filtered to the class).
    pub samples: u64,
    /// Generator dials.
    pub cfg: RandomConfig,
    /// Engine budget for witness/probe validation.
    pub probe_budget: Budget,
    /// Random probe databases per terminating claim.
    pub probes: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            samples: 2_000,
            cfg: RandomConfig { max_head_atoms: 1, ..RandomConfig::default() },
            probe_budget: Budget { max_applications: 2_000, max_atoms: 20_000, ..Budget::unlimited() },
            probes: 3,
        }
    }
}

/// E7 outcome counters.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Rule sets in the single-head linear class.
    pub in_class: u64,
    /// Divergence witnesses the engine failed to confirm (must be zero).
    pub unconfirmed_witnesses: u64,
    /// Termination claims contradicted by a probe run (must be zero).
    pub probe_contradictions: u64,
}

/// Runs E7.
pub fn run(params: &Params) -> (Table, Outcome) {
    let mut outcome = Outcome::default();
    let mut terminating = 0u64;
    let mut diverging = 0u64;
    let mut wa_differs = 0u64;

    for seed in 0..params.samples {
        // Mix simple and non-simple linear sets: the repeated-variable
        // rules are where the future-work characterization strictly beats
        // plain weak acyclicity (start-atom satisfaction prunes the
        // dangerous cycle).
        let program = if seed % 2 == 0 {
            random_simple_linear(&params.cfg, 9_000_000 + seed)
        } else {
            let cfg = RandomConfig { complexity: 0.5, ..params.cfg };
            random_linear(&cfg, 9_500_000 + seed)
        };
        if !is_single_head_linear(&program) {
            continue;
        }
        outcome.in_class += 1;

        match find_divergent_start(&program) {
            Some(witness) => {
                diverging += 1;
                if is_weakly_acyclic(&program) {
                    wa_differs += 1; // WA accepted a restricted-diverging set?!
                    eprintln!("soundness alarm: WA accepted a restricted-diverging set");
                }
                // Materialize and confirm with the engine.
                let mut program = program.clone();
                let db = materialize_start(&mut program, &witness);
                let run = chase(&program, ChaseVariant::Restricted, db, &params.probe_budget);
                if run.outcome != StopReason::Applications {
                    outcome.unconfirmed_witnesses += 1;
                }
            }
            None => {
                terminating += 1;
                if !is_weakly_acyclic(&program) {
                    wa_differs += 1; // The gap: WA rejects, restricted terminates.
                }
                // Probe with the critical instance and random databases.
                let mut program = program.clone();
                let crit = chasekit_core::CriticalInstance::build(&mut program);
                let mut probes: Vec<Instance> = vec![crit.instance];
                for p in 0..params.probes {
                    probes.push(random_database(
                        &mut program,
                        &DbConfig { facts: 8, constants: 4 },
                        seed * 31 + p,
                    ));
                }
                for db in probes {
                    let run =
                        chase(&program, ChaseVariant::Restricted, db, &params.probe_budget);
                    if run.outcome != StopReason::Saturated {
                        outcome.probe_contradictions += 1;
                    }
                }
            }
        }
    }

    let mut table = Table::new(
        "E7 / future work: restricted chase on single-head linear TGDs (exact procedure)",
        &["quantity", "value"],
    );
    table.row(&["candidates sampled", &params.samples.to_string()]);
    table.row(&["in single-head linear class", &outcome.in_class.to_string()]);
    table.row(&["restricted-terminating", &terminating.to_string()]);
    table.row(&["restricted-diverging (with witness db)", &diverging.to_string()]);
    table.row(&["witnesses unconfirmed by engine", &outcome.unconfirmed_witnesses.to_string()]);
    table.row(&["termination claims contradicted by probes", &outcome.probe_contradictions.to_string()]);
    table.row(&["samples where plain WA differs (the future-work gap)", &wa_differs.to_string()]);
    (table, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_procedure_is_validated_by_the_engine() {
        let params = Params { samples: 250, ..Default::default() };
        let (table, outcome) = run(&params);
        assert!(outcome.in_class >= 10, "population too thin: {}", outcome.in_class);
        assert_eq!(outcome.unconfirmed_witnesses, 0, "{}", table.render());
        assert_eq!(outcome.probe_contradictions, 0, "{}", table.render());
    }
}
