//! Smoke test for the landscape shoot-out artifact: a tiny run must
//! produce a JSON body that parses (hand-rolled writer — validate shape,
//! not just substrings), covers every registered checker in every
//! (family, size) cell, and reports internally consistent counts.

use chasekit_bench::exp::landscape::{run, Params, CHECKERS, FAMILIES};

fn tiny() -> Params {
    Params { sizes: vec![2], seeds_per_size: 4, ..Params::quick() }
}

/// Pulls the numeric value following `"key": ` out of a JSON line.
fn field(line: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag).unwrap_or_else(|| panic!("no {key} in `{line}`")) + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| panic!("bad {key} in `{line}`: {e}"))
}

#[test]
fn json_artifact_is_well_formed_and_complete() {
    let result = run(&tiny());
    let json = &result.json;

    // Structure: balanced braces/brackets, trailing newline, no NaN/inf
    // (format!("{:.4}", f64) would happily print them).
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(json.matches(open).count(), json.matches(close).count());
    }
    assert!(json.ends_with('\n'));
    assert!(!json.contains("NaN") && !json.contains("inf"), "non-finite stat leaked");

    // Every registered checker appears in every (family, size) cell.
    let cell_count = FAMILIES.len() * tiny().sizes.len();
    for name in CHECKERS {
        let tag = format!("\"checker\": \"{name}\"");
        assert_eq!(
            json.matches(&tag).count(),
            cell_count,
            "{name} missing from some cell"
        );
    }
    for (family, _) in FAMILIES {
        assert!(json.contains(&format!("\"family\": \"{family}\"")));
    }

    // Every checker row's numbers parse and are internally consistent.
    let programs_per_cell = tiny().seeds_per_size as f64;
    for line in json.lines().filter(|l| l.contains("\"checker\": ")) {
        let applicable = field(line, "applicable");
        let decided = field(line, "terminates") + field(line, "diverges");
        let unknown = field(line, "unknown");
        assert!(applicable <= programs_per_cell, "`{line}`");
        assert_eq!(decided + unknown, applicable, "`{line}`");
        for key in ["precision", "recall"] {
            let v = field(line, key);
            assert!((0.0..=1.0).contains(&v), "{key} out of range in `{line}`");
        }
        for key in ["median_effort", "p95_effort", "median_us", "p95_us"] {
            assert!(field(line, key) >= 0.0, "`{line}`");
        }
    }

    // Header counts match the sweep.
    assert_eq!(field(json, "programs"), programs_per_cell * cell_count as f64);
    assert_eq!(field(json, "contradictions"), 0.0, "{:?}", result.outcome.contradictions);
    assert!(json.contains("\"quick\": true"));
}
