//! E1 / Theorem 1 bench: cost of the exact CT decision vs plain WA/RA on
//! simple linear rule sets. The theorem says they coincide; the bench
//! shows what the exactness costs (shape exploration vs one graph pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_acyclicity::{is_richly_acyclic, is_weakly_acyclic};
use chasekit_datagen::{random_simple_linear, RandomConfig};
use chasekit_engine::ChaseVariant;
use chasekit_termination::decide_linear;

fn bench_thm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1_sl");
    group.sample_size(20);
    for rules in [4usize, 16, 64] {
        let cfg = RandomConfig {
            predicates: rules.max(2),
            rules,
            max_arity: 2,
            ..RandomConfig::default()
        };
        let programs: Vec<_> = (0..10).map(|s| random_simple_linear(&cfg, s)).collect();

        group.bench_with_input(BenchmarkId::new("weak_acyclicity", rules), &programs, |b, ps| {
            b.iter(|| {
                let mut acc = 0u32;
                for p in ps {
                    acc += is_weakly_acyclic(p) as u32;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("rich_acyclicity", rules), &programs, |b, ps| {
            b.iter(|| {
                let mut acc = 0u32;
                for p in ps {
                    acc += is_richly_acyclic(p) as u32;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_ct_so", rules), &programs, |b, ps| {
            b.iter(|| {
                let mut acc = 0u32;
                for p in ps {
                    acc += decide_linear(p, ChaseVariant::SemiOblivious, false)
                        .unwrap()
                        .terminates as u32;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_ct_o", rules), &programs, |b, ps| {
            b.iter(|| {
                let mut acc = 0u32;
                for p in ps {
                    acc += decide_linear(p, ChaseVariant::Oblivious, false).unwrap().terminates
                        as u32;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thm1);
criterion_main!(benches);
