//! Throughput and latency of the `chasekit serve` job server.
//!
//! Runs an in-process server (real TCP, real job store, real durable
//! state) and drives it with 1, 4, and 8 concurrent clients, each
//! submitting cache-bypassing jobs back-to-back and waiting for
//! completion. Records jobs/sec plus p50/p99 submit→done latency per
//! client count in `BENCH_serve_throughput.json` at the repo root.
//!
//! Every job chases the same diverging program for a fixed application
//! budget, so the server-side work per job is constant; the sweep
//! isolates protocol + admission + store overhead and worker-pool
//! scaling, not chase variance.

use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chasekit_engine::serve::{serve, JobSpec, ServeConfig, ServerHandle};

const CLIENTS: [usize; 3] = [1, 4, 8];
const JOBS_PER_CLIENT: usize = 16;
const STEPS_PER_JOB: u64 = 300;
const PROGRAM: &str = "person(bob). person(X) -> hasFather(X, Y), person(Y).";

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chasekit-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

fn start_server(store: &std::path::Path) -> ServerHandle {
    let mut config = ServeConfig::new(store);
    config.workers = 4;
    config.queue_capacity = 1024;
    config.defaults = JobSpec { steps: STEPS_PER_JOB, ..JobSpec::server_default() };
    serve(config).expect("server starts")
}

/// One client: `jobs` sequential submit→wait round trips over a single
/// connection. Returns the submit→done latency of each job in
/// microseconds.
fn client_run(addr: std::net::SocketAddr, jobs: usize) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = stream;
    let submit = format!(
        "{{\"op\":\"submit\",\"program\":\"{PROGRAM}\",\"steps\":{STEPS_PER_JOB},\"fresh\":1}}\n"
    );
    let mut latencies = Vec::with_capacity(jobs);
    let mut line = String::new();
    for _ in 0..jobs {
        let start = Instant::now();
        out.write_all(submit.as_bytes()).expect("submit");
        line.clear();
        reader.read_line(&mut line).expect("ack");
        let job = line
            .split("\"job\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or_else(|| panic!("no job id in {line:?}"))
            .to_string();
        out.write_all(format!("{{\"op\":\"wait\",\"job\":\"{job}\"}}\n").as_bytes())
            .expect("wait");
        line.clear();
        reader.read_line(&mut line).expect("done");
        assert!(line.contains("\"state\":\"done\""), "job failed: {line}");
        latencies.push(start.elapsed().as_micros() as u64);
    }
    latencies
}

/// One full sweep at `clients` concurrent connections against a fresh
/// server on a fresh store. Returns (total wall-clock µs, all latencies).
fn sweep(dir: &std::path::Path, clients: usize) -> (u64, Vec<u64>) {
    let store = dir.join(format!("store-{clients}"));
    let _ = std::fs::remove_dir_all(&store);
    let server = start_server(&store);
    let addr = server.addr();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| std::thread::spawn(move || client_run(addr, JOBS_PER_CLIENT)))
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = start.elapsed().as_micros() as u64;
    server.shutdown();
    (wall, latencies)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn bench_serve_throughput(c: &mut Criterion) {
    let dir = scratch();

    let mut group = c.benchmark_group("serve/throughput");
    group.sample_size(10);
    for &clients in &CLIENTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| b.iter(|| black_box(sweep(&dir, clients).0)),
        );
    }
    group.finish();

    // Independent medians + latency percentiles for the JSON record.
    let rows: Vec<String> = CLIENTS
        .iter()
        .map(|&clients| {
            let mut walls = Vec::new();
            let mut latencies = Vec::new();
            for _ in 0..3 {
                let (wall, lat) = sweep(&dir, clients);
                walls.push(wall);
                latencies.extend(lat);
            }
            walls.sort_unstable();
            latencies.sort_unstable();
            let wall = walls[walls.len() / 2];
            let total_jobs = clients * JOBS_PER_CLIENT;
            let jobs_per_sec = total_jobs as f64 / (wall as f64 / 1e6);
            format!(
                "    {{\"clients\": {clients}, \"jobs\": {total_jobs}, \
                 \"median_wall_us\": {wall}, \"jobs_per_sec\": {jobs_per_sec:.1}, \
                 \"latency_p50_us\": {}, \"latency_p99_us\": {}}}",
                percentile(&latencies, 0.50),
                percentile(&latencies, 0.99),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"workload\": \"diverging single-rule \
         program, {STEPS_PER_JOB} applications per job, {JOBS_PER_CLIENT} jobs per client, \
         fresh (cache-bypassing) submissions\",\n  \"server\": {{\"workers\": 4, \
         \"queue_capacity\": 1024}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_throughput.json");
    std::fs::write(out, &json).expect("write BENCH_serve_throughput.json");
    eprintln!("serve_throughput: wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
