//! Engine micro-benchmarks: the chase itself, per variant, on the
//! substrate workloads every experiment runs through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_core::{Instance, Program};
use chasekit_engine::{chase, Budget, ChaseVariant};

fn facts(program: &Program) -> Instance {
    Instance::from_atoms(program.facts().iter().cloned())
}

/// Datalog transitive closure over a path of `n` edges: pure join/dedup
/// throughput, no nulls.
fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/transitive_closure");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
        }
        src.push_str("e(X, Y) -> t(X, Y). e(X, Y), t(Y, Z) -> t(X, Z).\n");
        let program = Program::parse(&src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| {
                let r = chase(p, ChaseVariant::SemiOblivious, facts(p), &Budget::default());
                black_box(r.instance.len())
            })
        });
    }
    group.finish();
}

/// A diverging run cut at a fixed budget: null-minting and delta-matching
/// throughput for each variant.
fn bench_diverging_budgeted(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/diverging_1000_steps");
    group.sample_size(10);
    let program = Program::parse("p(a, b). p(X, Y) -> p(Y, Z).").unwrap();
    for variant in [
        ChaseVariant::Oblivious,
        ChaseVariant::SemiOblivious,
        ChaseVariant::Restricted,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let r = chase(&program, variant, facts(&program), &Budget::applications(1_000));
                    black_box(r.stats.applications)
                })
            },
        );
    }
    group.finish();
}

/// Restricted-chase satisfaction checking on a workload with many skips.
fn bench_restricted_satisfaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/restricted_satisfaction");
    group.sample_size(10);
    let mut src = String::new();
    for i in 0..32 {
        src.push_str(&format!("e(u{i}, u{i}).\n"));
    }
    src.push_str("e(X, Y) -> e(Y, Z).\n");
    let program = Program::parse(&src).unwrap();
    group.bench_function("loops_32", |b| {
        b.iter(|| {
            let r = chase(&program, ChaseVariant::Restricted, facts(&program), &Budget::default());
            black_box(r.stats.satisfied_skips)
        })
    });
    group.finish();
}

/// The binary counter: a terminating chase of length exactly 2^k - 1.
/// Measures sustained application throughput on constant-only workloads.
fn bench_binary_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/binary_counter");
    group.sample_size(10);
    for k in [8usize, 10, 12] {
        let lp = chasekit_datagen::binary_counter(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &lp.program, |b, p| {
            b.iter(|| {
                let r = chase(p, ChaseVariant::SemiOblivious, facts(p), &Budget::default());
                assert_eq!(r.stats.applications, (1u64 << k) - 1);
                black_box(r.instance.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_diverging_budgeted,
    bench_restricted_satisfaction,
    bench_binary_counter
);
criterion_main!(benches);
