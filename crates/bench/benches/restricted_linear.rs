//! E7 / future-work bench: the exact restricted-chase decision for
//! single-head linear rule sets (start-shape enumeration + suppressed
//! shape graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_datagen::{random_simple_linear, RandomConfig};
use chasekit_termination::{
    is_single_head_linear, single_head_linear_restricted_terminates,
};

fn bench_restricted(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_linear");
    group.sample_size(15);
    for rules in [2usize, 4, 8] {
        let cfg = RandomConfig {
            predicates: rules * 2,
            rules,
            max_arity: 2,
            max_head_atoms: 1,
            ..RandomConfig::default()
        };
        // Collect in-class programs.
        let programs: Vec<_> = (0..200u64)
            .map(|s| random_simple_linear(&cfg, 64_000 + s))
            .filter(is_single_head_linear)
            .take(10)
            .collect();
        assert!(!programs.is_empty(), "population too thin at {rules} rules");
        group.bench_with_input(BenchmarkId::from_parameter(rules), &programs, |b, ps| {
            b.iter(|| {
                let mut terminating = 0u32;
                for p in ps {
                    terminating +=
                        single_head_linear_restricted_terminates(p).unwrap() as u32;
                }
                black_box(terminating)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restricted);
criterion_main!(benches);
