//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Delta-driven trigger discovery** (re-match only bodies touching the
//!   new atom) vs naive full re-matching after every step.
//! * **Deferred certificate re-checks** in the guarded decider (retry pairs
//!   when their missing side condition arrives) vs fresh scans only — this
//!   one trades time for *completeness*, so the bench also reports how many
//!   of the sample sets become undecidable without it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_core::{Instance, Program};
use chasekit_datagen::{random_guarded, RandomConfig};
use chasekit_engine::{Budget, ChaseConfig, ChaseMachine, ChaseVariant};
use chasekit_termination::{decide_guarded, GuardedConfig, GuardedVerdict};

fn transitive_closure_program(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
    }
    src.push_str("e(X, Y) -> t(X, Y). e(X, Y), t(Y, Z) -> t(X, Z).\n");
    Program::parse(&src).unwrap()
}

fn bench_delta_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/trigger_discovery");
    group.sample_size(10);
    for n in [16usize, 32] {
        let program = transitive_closure_program(n);
        for naive in [false, true] {
            let label = format!("{}-{}", if naive { "naive" } else { "delta" }, n);
            group.bench_with_input(BenchmarkId::from_parameter(label), &program, |b, p| {
                b.iter(|| {
                    let cfg = if naive {
                        ChaseConfig::of(ChaseVariant::SemiOblivious).with_naive_matching()
                    } else {
                        ChaseConfig::of(ChaseVariant::SemiOblivious)
                    };
                    let initial = Instance::from_atoms(p.facts().iter().cloned());
                    let mut m = ChaseMachine::new(p, cfg, initial);
                    let _ = m.run(&Budget::default());
                    black_box(m.instance().len())
                })
            });
        }
    }
    group.finish();
}

fn bench_deferred_rechecks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/deferred_rechecks");
    group.sample_size(10);
    let cfg = RandomConfig::default();
    let programs: Vec<_> = (0..20).map(|s| random_guarded(&cfg, 40_000 + s)).collect();

    for deferred in [true, false] {
        let label = if deferred { "with_rechecks" } else { "fresh_scans_only" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut decided = 0u32;
                for p in &programs {
                    let mut gcfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
                    gcfg.defer_rechecks = deferred;
                    gcfg.max_applications = 2_000;
                    gcfg.max_atoms = 20_000;
                    if let Ok(r) = decide_guarded(p, gcfg) {
                        decided += r.verdict.terminates().is_some() as u32;
                    }
                }
                black_box(decided)
            })
        });
    }

    // Completeness impact (reported once; not a timing measurement).
    let count = |deferred: bool| {
        programs
            .iter()
            .filter(|p| {
                let mut gcfg = GuardedConfig::new(ChaseVariant::SemiOblivious);
                gcfg.defer_rechecks = deferred;
                gcfg.max_applications = 2_000;
                gcfg.max_atoms = 20_000;
                matches!(
                    decide_guarded(p, gcfg).map(|r| r.verdict),
                    Ok(GuardedVerdict::Unknown)
                )
            })
            .count()
    };
    eprintln!(
        "ablation/deferred_rechecks: unknowns with rechecks = {}, without = {}",
        count(true),
        count(false)
    );
    group.finish();
}

/// Thread-count ablation for the parallel-round driver on the E4 guarded
/// family: the same chases at 1, 2, and 4 workers. Results are bit-identical
/// by construction, so this row isolates the cost/benefit of fan-out alone
/// (see `benches/parallel_chase.rs` for the full scaling sweep + JSON).
fn bench_parallel_rounds(c: &mut Criterion) {
    use chasekit_core::CriticalInstance;

    let mut group = c.benchmark_group("ablation/parallel_rounds");
    group.sample_size(10);
    let cfg = RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() };
    let programs: Vec<Program> = (0..8)
        .map(|s| {
            let mut p = random_guarded(&cfg, 90_000 + s);
            let _ = CriticalInstance::build(&mut p);
            p
        })
        .collect();
    let budget = Budget { max_applications: 800, max_atoms: 20_000, ..Budget::unlimited() };

    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let mut atoms = 0usize;
                for p in &programs {
                    let mut frozen = p.clone();
                    let initial = CriticalInstance::build(&mut frozen).instance;
                    let mut m = ChaseMachine::new(
                        &frozen,
                        ChaseConfig::of(ChaseVariant::SemiOblivious),
                        initial,
                    );
                    let _ = m.run_parallel(&budget, threads);
                    atoms += m.instance().len();
                }
                black_box(atoms)
            })
        });
    }
    group.finish();
}

/// Observability ablation on the E4 guarded family: the same chases with
/// tracing disabled (the default `Option<TraceHandle>` = `None` path), with
/// a JSONL sink writing to `io::sink()`, and with the in-memory metrics
/// registry. The disabled row must sit within noise of the pre-trace
/// baseline — the handle is one `Option` check on the hot path.
fn bench_trace_overhead(c: &mut Criterion) {
    use chasekit_core::CriticalInstance;
    use chasekit_engine::{JsonlSink, MetricsSink};

    let mut group = c.benchmark_group("ablation/trace_overhead");
    group.sample_size(10);
    let cfg = RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() };
    let programs: Vec<Program> = (0..8)
        .map(|s| {
            let mut p = random_guarded(&cfg, 90_000 + s);
            let _ = CriticalInstance::build(&mut p);
            p
        })
        .collect();
    let budget = Budget { max_applications: 800, max_atoms: 20_000, ..Budget::unlimited() };

    for mode in ["disabled", "jsonl", "metrics"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                let mut atoms = 0usize;
                for p in &programs {
                    let mut frozen = p.clone();
                    let initial = CriticalInstance::build(&mut frozen).instance;
                    let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious);
                    let mut m = match mode {
                        "jsonl" => ChaseMachine::new_with_trace(
                            &frozen,
                            cfg,
                            initial,
                            Box::new(JsonlSink::new(std::io::sink(), &frozen)),
                        ),
                        "metrics" => ChaseMachine::new_with_trace(
                            &frozen,
                            cfg,
                            initial,
                            Box::new(MetricsSink::new(&frozen)),
                        ),
                        _ => ChaseMachine::new(&frozen, cfg, initial),
                    };
                    let _ = m.run(&budget);
                    atoms += m.instance().len();
                }
                black_box(atoms)
            })
        });
    }
    group.finish();
}

/// Durability ablation on the E4 guarded family: the same chases with no
/// journal, with the write-ahead journal appending every admitted trigger,
/// and with the full durable loop (journal + atomic snapshot every 200
/// applications). The no-journal row also measures the disabled-failpoint
/// fast path — every hook on the hot path is behind one relaxed atomic
/// load. Medians land in `BENCH_journal_overhead.json` at the repo root.
fn bench_journal_overhead(c: &mut Criterion) {
    use chasekit_core::CriticalInstance;
    use chasekit_engine::{write_snapshot_atomic, JournalWriter};
    use std::time::Instant;

    let mut group = c.benchmark_group("ablation/journal_overhead");
    group.sample_size(10);
    let cfg = RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() };
    let programs: Vec<Program> = (0..8)
        .map(|s| {
            let mut p = random_guarded(&cfg, 90_000 + s);
            let _ = CriticalInstance::build(&mut p);
            p
        })
        .collect();
    let budget = Budget { max_applications: 800, max_atoms: 20_000, ..Budget::unlimited() };
    let dir = std::env::temp_dir().join("chasekit-bench-journal");
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    // Group-commit batch size per mode: `flushN` rows append through the
    // same WAL but batch N records per write(2)+fsync.
    let flush_of = |mode: &str| -> u64 {
        mode.strip_prefix("flush").map_or(1, |n| n.parse().expect("flush mode"))
    };
    let sweep = |mode: &str| -> usize {
        let mut atoms = 0usize;
        for p in &programs {
            let mut frozen = p.clone();
            let initial = CriticalInstance::build(&mut frozen).instance;
            let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious);
            let mut m = ChaseMachine::new(&frozen, cfg, initial);
            let journal_path = dir.join("bench.journal");
            if mode != "off" {
                let _ = std::fs::remove_file(&journal_path);
                m.set_journal(
                    JournalWriter::for_machine(&journal_path, &m)
                        .expect("journal opens")
                        .with_flush_every(flush_of(mode)),
                );
            }
            if mode == "durable" {
                let ckpt = dir.join("bench.ckpt");
                loop {
                    let target = m.stats().applications + 200;
                    let leg = Budget { max_applications: target, ..budget };
                    let stop = m.run(&leg);
                    let text = m.snapshot().to_text().expect("untracked snapshot");
                    let mut j = m.take_journal().expect("journal installed");
                    j.sync().expect("journal syncs");
                    write_snapshot_atomic(&ckpt, &text).expect("snapshot lands");
                    if stop != chasekit_engine::StopReason::Applications
                        || target >= budget.max_applications
                    {
                        break;
                    }
                    m.set_journal(
                        JournalWriter::for_machine(&journal_path, &m).expect("journal reopens"),
                    );
                }
            } else {
                let _ = m.run(&budget);
            }
            atoms += m.instance().len();
        }
        atoms
    };

    for mode in ["off", "journal", "durable"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| black_box(sweep(mode)))
        });
    }
    group.finish();

    // Group-commit ablation: the same journaled sweep at batch sizes 1, 8,
    // and 64 (`--journal-flush-every`). Larger batches amortize the
    // write(2) per record; crash-safety is unchanged (a torn batch is a
    // valid journal prefix, see tests/crash_recovery.rs).
    let mut group = c.benchmark_group("ablation/journal_flush");
    group.sample_size(10);
    for mode in ["journal", "flush8", "flush64"] {
        let label = if mode == "journal" { "flush1" } else { mode };
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| black_box(sweep(mode)))
        });
    }
    group.finish();

    // Independent medians for the standalone JSON record, in the same shape
    // as BENCH_parallel_chase.json.
    let median = |mode: &str| -> u64 {
        let mut runs: Vec<u64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                black_box(sweep(mode));
                start.elapsed().as_micros() as u64
            })
            .collect();
        runs.sort_unstable();
        runs[runs.len() / 2]
    };
    let rows: Vec<(&str, u64)> = ["off", "journal", "flush8", "flush64", "durable"]
        .iter()
        .map(|&m| (m, median(m)))
        .collect();
    let base = rows[0].1.max(1) as f64;
    let rows_json: Vec<String> = rows
        .iter()
        .map(|(m, us)| {
            format!(
                "    {{\"mode\": \"{m}\", \"median_us\": {us}, \"overhead_vs_off\": {:.3}}}",
                *us as f64 / base
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"journal_overhead\",\n  \"workload\": \"e4-guarded critical-instance chase, 8 seeds, semi-oblivious\",\n  \"budget\": {{\"max_applications\": 800, \"max_atoms\": 20000}},\n  \"modes\": {{\"off\": \"no journal (failpoints compiled in, disabled)\", \"journal\": \"WAL append per admitted trigger (flush every 1)\", \"flush8\": \"WAL with group commit, 8 records per write\", \"flush64\": \"WAL with group commit, 64 records per write\", \"durable\": \"WAL + fsync'd atomic snapshot every 200 applications\"}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_journal_overhead.json");
    std::fs::write(out, &json).expect("write BENCH_journal_overhead.json");
    eprintln!("journal_overhead: wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_delta_vs_naive,
    bench_deferred_rechecks,
    bench_parallel_rounds,
    bench_trace_overhead,
    bench_journal_overhead
);
criterion_main!(benches);
