//! E3 / Theorem 3 bench: the two complexity regimes of the linear decision
//! procedure — polynomial in the rule count at fixed arity, exponential in
//! the arity (the NL vs PSPACE separation, measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_datagen::{random_simple_linear, wide_terminating, RandomConfig};
use chasekit_engine::ChaseVariant;
use chasekit_termination::decide_linear;

fn bench_rules_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3/rules_at_arity2");
    group.sample_size(15);
    for rules in [8usize, 32, 128] {
        let cfg = RandomConfig {
            predicates: rules.max(2),
            rules,
            max_arity: 2,
            ..RandomConfig::default()
        };
        let program = random_simple_linear(&cfg, 12345);
        group.bench_with_input(BenchmarkId::from_parameter(rules), &program, |b, p| {
            b.iter(|| {
                black_box(
                    decide_linear(p, ChaseVariant::SemiOblivious, false).unwrap().terminates,
                )
            })
        });
    }
    group.finish();
}

fn bench_arity_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3/arity_wide_register");
    group.sample_size(10);
    for arity in [3usize, 5, 7] {
        let lp = wide_terminating(arity);
        group.bench_with_input(BenchmarkId::from_parameter(arity), &lp.program, |b, p| {
            b.iter(|| {
                black_box(
                    decide_linear(p, ChaseVariant::SemiOblivious, false).unwrap().shapes,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rules_series, bench_arity_series);
criterion_main!(benches);
