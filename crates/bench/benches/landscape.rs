//! E6 / landscape bench: per-condition decision cost on one fixed random
//! linear population — what each rung of the sufficient-condition ladder
//! costs relative to the exact procedure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chasekit_acyclicity::{
    is_grd_acyclic, is_jointly_acyclic, is_richly_acyclic, is_weakly_acyclic,
};
use chasekit_datagen::{random_linear, RandomConfig};
use chasekit_engine::{Budget, ChaseVariant};
use chasekit_termination::{decide_linear, mfa_status};

fn bench_landscape(c: &mut Criterion) {
    let mut group = c.benchmark_group("landscape/condition_cost");
    group.sample_size(15);
    let cfg = RandomConfig { constants: 1, complexity: 0.4, ..RandomConfig::default() };
    let programs: Vec<_> = (0..20).map(|s| random_linear(&cfg, 31_000 + s)).collect();
    let budget = Budget { max_applications: 3_000, max_atoms: 30_000, ..Budget::unlimited() };

    group.bench_function("RA", |b| {
        b.iter(|| {
            black_box(programs.iter().filter(|p| is_richly_acyclic(p)).count())
        })
    });
    group.bench_function("WA", |b| {
        b.iter(|| {
            black_box(programs.iter().filter(|p| is_weakly_acyclic(p)).count())
        })
    });
    group.bench_function("JA", |b| {
        b.iter(|| {
            black_box(programs.iter().filter(|p| is_jointly_acyclic(p)).count())
        })
    });
    group.bench_function("aGRD", |b| {
        b.iter(|| black_box(programs.iter().filter(|p| is_grd_acyclic(p)).count()))
    });
    group.bench_function("MFA", |b| {
        b.iter(|| {
            black_box(
                programs
                    .iter()
                    .filter(|p| mfa_status(p, &budget).is_mfa() == Some(true))
                    .count(),
            )
        })
    });
    group.bench_function("exact_CT_so", |b| {
        b.iter(|| {
            black_box(
                programs
                    .iter()
                    .filter(|p| {
                        decide_linear(p, ChaseVariant::SemiOblivious, false)
                            .unwrap()
                            .terminates
                    })
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_landscape);
criterion_main!(benches);
