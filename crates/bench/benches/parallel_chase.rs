//! Parallel-round chase scaling on the E4 guarded family.
//!
//! Chases a random guarded population (the E4 generator dials) on critical
//! instances at 1, 2, 4, and 8 worker threads, checks that every threaded
//! run is bit-identical to the sequential oracle, and records wall-clock
//! medians in `BENCH_parallel_chase.json` at the repo root. The host core
//! count decides what gets recorded: scaling is physically bounded by it,
//! so on a single-core host the multi-thread sweep and the t4 speedup are
//! **skipped** (marked `"skipped": "single-core host"`) rather than
//! reported as numbers that read like a regression. A single-core host
//! instead records `single_core_t2_overhead` — the t2/t1 ratio, which
//! isolates pure orchestration cost (the persistent pool keeps it near 1;
//! the old per-round spawn made it 16×).
//!
//! The file also carries two ablation rows. `ablation/indexed_matching`
//! compares the current sequential median against the seed data layout's
//! committed baseline (13184 µs at commit c19b342, same workload/budget/
//! host) — the before/after for the interned-arena + columnar-postings
//! rebuild. `ablation/incremental` times a single-fact DRed retraction
//! (cone overdelete + re-derivation + completion) on a saturated machine
//! against re-chasing the edited instance from scratch — the case for the
//! incremental update path over `chasekit update`'s alternative of a full
//! re-run.
//!
//! Set `CHASEKIT_BENCH_QUICK=1` for a smoke run (fewer seeds, smaller
//! budget, fewer repeats): it exercises every code path and still writes
//! the JSON (marked `"quick": true`) without touching the committed
//! numbers' workload — CI uses it to catch bench-plumbing breakage.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chasekit_core::{CriticalInstance, Instance, Program};
use chasekit_datagen::{random_guarded, RandomConfig};
use chasekit_engine::{Budget, ChaseConfig, ChaseMachine, ChaseVariant, Edit};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Sequential median on this workload at the seed data layout (owned-atom
/// storage, tuple-keyed postings, per-round `thread::scope`), committed in
/// BENCH_parallel_chase.json at c19b342. Same dials, same budget.
const SEED_LAYOUT_T1_US: u64 = 13_184;

fn quick() -> bool {
    std::env::var("CHASEKIT_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The E4 population dials, biased toward wide guards so trigger discovery
/// (the parallel phase) dominates the round time.
fn population() -> Vec<Program> {
    let cfg = RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() };
    let seeds = if quick() { 2 } else { 12 };
    (0..seeds)
        .map(|seed| {
            let mut p = random_guarded(&cfg, 90_000 + seed);
            // Freeze the critical-instance constant into the program now so
            // every timed run chases the identical input.
            let _ = CriticalInstance::build(&mut p);
            p
        })
        .collect()
}

fn budget() -> Budget {
    let (apps, atoms) = if quick() { (200, 5_000) } else { (1_500, 30_000) };
    Budget { max_applications: apps, max_atoms: atoms, ..Budget::unlimited() }
}

/// One full chase of `program` at `threads`; returns (applications, atoms)
/// as the identity fingerprint.
fn chase_once(program: &Program, threads: usize) -> (u64, usize) {
    let mut p = program.clone();
    let initial = CriticalInstance::build(&mut p).instance;
    let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::SemiOblivious), initial);
    let _ = m.run_parallel(&budget(), threads);
    (m.stats().applications, m.instance().len())
}

/// Chases the whole population once; returns total wall-clock microseconds.
fn sweep_us(programs: &[Program], threads: usize) -> u64 {
    let start = Instant::now();
    for p in programs {
        black_box(chase_once(p, threads));
    }
    start.elapsed().as_micros() as u64
}

/// Median of repeated sweeps.
fn median_us(programs: &[Program], threads: usize) -> u64 {
    let repeats = if quick() { 3 } else { 5 };
    let mut runs: Vec<u64> = (0..repeats).map(|_| sweep_us(programs, threads)).collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

/// Times a one-fact retraction repaired in place against a from-scratch
/// re-chase of the same edited instance, summed over the population.
/// Returns `(retract_repair_us, full_rechase_us)` medians. The saturating
/// setup chase is untimed — both sides start from the same chased state
/// and the question is purely "repair the cone, or throw the instance away
/// and re-derive everything".
fn incremental_vs_full_us(programs: &[Program]) -> (u64, u64) {
    let repeats = if quick() { 3 } else { 5 };
    let mut inc_runs: Vec<u64> = Vec::new();
    let mut full_runs: Vec<u64> = Vec::new();
    for _ in 0..repeats {
        let mut inc_total = 0u64;
        let mut full_total = 0u64;
        for program in programs {
            let mut p = program.clone();
            let initial = CriticalInstance::build(&mut p).instance;
            let victim = initial.iter().next().map(|(_, a)| a.to_atom()).expect("non-empty");
            let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation();
            let mut m = ChaseMachine::new(&p, cfg, initial.clone());
            let _ = m.run(&budget());

            // Timed: DRed repair under the *same* cumulative budget as the
            // initial run. A retraction's replay re-fires with surviving
            // support inside the repair itself, so no extra application
            // headroom is owed — granting more would have the completion
            // chase push the frontier further than the full re-chase's cap
            // and time new derivation work, not the repair.
            let start = Instant::now();
            m.apply_edits(&[Edit::Retract(victim.clone())], &budget()).expect("repair");
            black_box(m.instance().len());
            inc_total += start.elapsed().as_micros() as u64;

            // Timed: chase the edited instance from scratch under the same
            // config (derivation tracking on, so a later edit would again
            // be repairable — the honest apples-to-apples alternative).
            let edited = Instance::from_atoms(
                initial.iter().map(|(_, a)| a.to_atom()).filter(|a| *a != victim),
            );
            let cfg = ChaseConfig::of(ChaseVariant::SemiOblivious).with_derivation();
            let start = Instant::now();
            let mut full = ChaseMachine::new(&p, cfg, edited);
            let _ = full.run(&budget());
            black_box(full.instance().len());
            full_total += start.elapsed().as_micros() as u64;
        }
        inc_runs.push(inc_total);
        full_runs.push(full_total);
    }
    inc_runs.sort_unstable();
    full_runs.sort_unstable();
    (inc_runs[inc_runs.len() / 2], full_runs[full_runs.len() / 2])
}

fn bench_parallel_chase(c: &mut Criterion) {
    let programs = population();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let multi_core = host_cpus > 1;

    // Bit-identity sanity before timing anything: every thread count must
    // land on the identical (applications, atoms) fingerprint — this runs
    // on every host, single-core included; only the *timings* are skipped
    // there.
    let oracle: Vec<(u64, usize)> = programs.iter().map(|p| chase_once(p, 1)).collect();
    for &threads in &THREADS[1..] {
        for (p, expect) in programs.iter().zip(&oracle) {
            assert_eq!(&chase_once(p, threads), expect, "diverged at {threads} threads");
        }
    }

    let timed_threads: &[usize] = if multi_core { &THREADS } else { &THREADS[..1] };
    let mut group = c.benchmark_group("parallel_chase/e4_guarded");
    group.sample_size(10);
    for &threads in timed_threads {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| sweep_us(&programs, threads)),
        );
    }
    group.finish();

    // Honest medians for the JSON record (criterion's stub reports its own
    // numbers; these are measured independently so the file stands alone).
    let medians: Vec<(usize, u64)> =
        timed_threads.iter().map(|&t| (t, median_us(&programs, t))).collect();
    let t1 = medians[0].1.max(1);

    // Sweep rows + t4 speedup: only meaningful with real cores to scale
    // onto. On a single-core host they are replaced by a skip marker and a
    // t2/t1 overhead diagnostic (pure orchestration cost — the number the
    // persistent pool exists to crush).
    let (sweep_json, speedup_json) = if multi_core {
        let rows: Vec<String> = medians
            .iter()
            .map(|(t, us)| format!("    {{\"threads\": {t}, \"median_us\": {us}}}"))
            .collect();
        let t4 = medians.iter().find(|(t, _)| *t == 4).map(|&(_, us)| us.max(1)).unwrap();
        let speedup = t1 as f64 / t4 as f64;
        (
            format!("  \"sweeps\": [\n{}\n  ],\n", rows.join(",\n")),
            format!("  \"speedup_t4_vs_t1\": {speedup:.3},\n"),
        )
    } else {
        let t2 = median_us(&programs, 2).max(1);
        let overhead = t2 as f64 / t1 as f64;
        (
            [
                format!("  \"sweeps\": [\n    {{\"threads\": 1, \"median_us\": {t1}}}\n  ],\n"),
                "  \"multi_thread_sweep\": {\"skipped\": \"single-core host\"},\n".to_string(),
                format!("  \"single_core_t2_overhead\": {overhead:.3},\n"),
            ]
            .concat(),
            "  \"speedup_t4_vs_t1\": {\"skipped\": \"single-core host\"},\n".to_string(),
        )
    };

    // Before/after for the storage rebuild: sequential median on the new
    // interned layout vs. the committed seed-layout baseline. Plus the
    // incremental-update case: repairing a one-fact retraction in place
    // vs. re-chasing the edited instance from scratch.
    let vs_seed = SEED_LAYOUT_T1_US as f64 / t1 as f64;
    let (inc_us, full_us) = incremental_vs_full_us(&programs);
    let inc_speedup = full_us.max(1) as f64 / inc_us.max(1) as f64;
    let ablation_json = format!(
        "  \"ablation\": {{\"indexed_matching\": {{\"seed_layout_t1_us\": {SEED_LAYOUT_T1_US}, \
         \"seed_layout_commit\": \"c19b342\", \"interned_layout_t1_us\": {t1}, \
         \"speedup_vs_seed\": {vs_seed:.3}}}, \
         \"incremental\": {{\"retract_repair_us\": {inc_us}, \
         \"full_rechase_us\": {full_us}, \
         \"speedup_vs_full_rechase\": {inc_speedup:.3}}}}},\n"
    );

    let workload = if quick() {
        "e4-guarded critical-instance chase, 2 seeds, semi-oblivious (QUICK smoke — numbers not comparable)"
    } else {
        "e4-guarded critical-instance chase, 12 seeds, semi-oblivious"
    };
    let budget_json = if quick() {
        "{\"max_applications\": 200, \"max_atoms\": 5000}"
    } else {
        "{\"max_applications\": 1500, \"max_atoms\": 30000}"
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel_chase\",\n  \"workload\": \"{workload}\",\n  \
         \"budget\": {budget_json},\n  \"quick\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"bit_identical_across_threads\": true,\n  \
         \"note\": \"speedup is bounded by host_cpus; single-core hosts skip the sweep and record pure t2 orchestration overhead instead\",\n\
         {sweep_json}{speedup_json}{ablation_json}  \"unit\": \"us\"\n}}\n",
        quick()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_chase.json");
    std::fs::write(out, &json).expect("write BENCH_parallel_chase.json");
    eprintln!("parallel_chase: host_cpus = {host_cpus}, t1 = {t1}us, vs seed layout = {vs_seed:.3}x");
    eprintln!(
        "parallel_chase: retract+repair = {inc_us}us vs full re-chase = {full_us}us \
         ({inc_speedup:.3}x)"
    );
    eprintln!("parallel_chase: wrote {out}");
}

criterion_group!(benches, bench_parallel_chase);
criterion_main!(benches);
