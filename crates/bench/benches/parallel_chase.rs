//! Parallel-round chase scaling on the E4 guarded family.
//!
//! Chases a random guarded population (the E4 generator dials) on critical
//! instances at 1, 2, 4, and 8 worker threads, checks that every threaded
//! run is bit-identical to the sequential oracle, and records wall-clock
//! medians plus the t4 speedup in `BENCH_parallel_chase.json` at the repo
//! root. The host core count is recorded alongside the numbers: scaling is
//! physically bounded by it, so a single-core CI box honestly reports
//! speedup ≈ 1 while the same file shows ≥2× on multi-core hardware.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chasekit_core::{CriticalInstance, Program};
use chasekit_datagen::{random_guarded, RandomConfig};
use chasekit_engine::{Budget, ChaseConfig, ChaseMachine, ChaseVariant};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The E4 population dials, biased toward wide guards so trigger discovery
/// (the parallel phase) dominates the round time.
fn population() -> Vec<Program> {
    let cfg = RandomConfig { predicates: 4, max_arity: 3, rules: 4, ..Default::default() };
    (0..12)
        .map(|seed| {
            let mut p = random_guarded(&cfg, 90_000 + seed);
            // Freeze the critical-instance constant into the program now so
            // every timed run chases the identical input.
            let _ = CriticalInstance::build(&mut p);
            p
        })
        .collect()
}

fn budget() -> Budget {
    Budget { max_applications: 1_500, max_atoms: 30_000, ..Budget::unlimited() }
}

/// One full chase of `program` at `threads`; returns (applications, atoms)
/// as the identity fingerprint.
fn chase_once(program: &Program, threads: usize) -> (u64, usize) {
    let mut p = program.clone();
    let initial = CriticalInstance::build(&mut p).instance;
    let mut m = ChaseMachine::new(&p, ChaseConfig::of(ChaseVariant::SemiOblivious), initial);
    let _ = m.run_parallel(&budget(), threads);
    (m.stats().applications, m.instance().len())
}

/// Chases the whole population once; returns total wall-clock microseconds.
fn sweep_us(programs: &[Program], threads: usize) -> u64 {
    let start = Instant::now();
    for p in programs {
        black_box(chase_once(p, threads));
    }
    start.elapsed().as_micros() as u64
}

fn bench_parallel_chase(c: &mut Criterion) {
    let programs = population();

    // Bit-identity sanity before timing anything: every thread count must
    // land on the identical (applications, atoms) fingerprint.
    let oracle: Vec<(u64, usize)> = programs.iter().map(|p| chase_once(p, 1)).collect();
    for &threads in &THREADS[1..] {
        for (p, expect) in programs.iter().zip(&oracle) {
            assert_eq!(&chase_once(p, threads), expect, "diverged at {threads} threads");
        }
    }

    let mut group = c.benchmark_group("parallel_chase/e4_guarded");
    group.sample_size(10);
    for &threads in &THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| sweep_us(&programs, threads)),
        );
    }
    group.finish();

    // Honest medians for the JSON record (criterion's stub reports its own
    // numbers; these are measured independently so the file stands alone).
    let median = |threads: usize| -> u64 {
        let mut runs: Vec<u64> = (0..5).map(|_| sweep_us(&programs, threads)).collect();
        runs.sort_unstable();
        runs[runs.len() / 2]
    };
    let medians: Vec<(usize, u64)> = THREADS.iter().map(|&t| (t, median(t))).collect();
    let t1 = medians[0].1.max(1) as f64;
    let speedup_t4 =
        t1 / medians.iter().find(|(t, _)| *t == 4).map(|&(_, us)| us.max(1)).unwrap() as f64;

    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let threads_json: Vec<String> = medians
        .iter()
        .map(|(t, us)| format!("    {{\"threads\": {t}, \"median_us\": {us}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel_chase\",\n  \"workload\": \"e4-guarded critical-instance chase, 12 seeds, semi-oblivious\",\n  \"budget\": {{\"max_applications\": 1500, \"max_atoms\": 30000}},\n  \"host_cpus\": {host_cpus},\n  \"bit_identical_across_threads\": true,\n  \"note\": \"speedup is bounded by host_cpus; on a single-core host the sweep measures per-round fan-out overhead only, so speedup < 1 there is expected\",\n  \"sweeps\": [\n{}\n  ],\n  \"speedup_t4_vs_t1\": {speedup_t4:.3}\n}}\n",
        threads_json.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_chase.json");
    std::fs::write(out, &json).expect("write BENCH_parallel_chase.json");
    eprintln!("parallel_chase: host_cpus = {host_cpus}, speedup(t4) = {speedup_t4:.3}");
    eprintln!("parallel_chase: wrote {out}");
}

criterion_group!(benches, bench_parallel_chase);
criterion_main!(benches);
