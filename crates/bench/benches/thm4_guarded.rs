//! E4 / Theorem 4 bench: the guarded decision procedure — population cost
//! per variant and the arity scaling of the pumping search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_datagen::{random_guarded, RandomConfig};
use chasekit_engine::ChaseVariant;
use chasekit_termination::{decide_guarded, GuardedConfig};

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4_guarded/population");
    group.sample_size(10);
    let cfg = RandomConfig::default();
    let programs: Vec<_> = (0..10).map(|s| random_guarded(&cfg, s)).collect();
    for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let mut decided = 0u32;
                    for p in &programs {
                        let r = decide_guarded(p, GuardedConfig::new(variant)).unwrap();
                        decided += r.verdict.terminates().is_some() as u32;
                    }
                    black_box(decided)
                })
            },
        );
    }
    group.finish();
}

fn bench_arity_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm4_guarded/arity");
    group.sample_size(10);
    for arity in [2usize, 3, 4] {
        let cfg = RandomConfig { max_arity: arity, ..RandomConfig::default() };
        let programs: Vec<_> = (0..5).map(|s| random_guarded(&cfg, 777 + s)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(arity), &programs, |b, ps| {
            b.iter(|| {
                let mut decided = 0u32;
                for p in ps {
                    let r =
                        decide_guarded(p, GuardedConfig::new(ChaseVariant::SemiOblivious))
                            .unwrap();
                    decided += r.verdict.terminates().is_some() as u32;
                }
                black_box(decided)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population, bench_arity_scaling);
criterion_main!(benches);
