//! E5 / looping-operator bench: the termination checker effectively
//! performs entailment, so decision time grows with the entailment depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_engine::ChaseVariant;
use chasekit_termination::{chain_instance, decide_guarded, GuardedConfig};

fn bench_looping(c: &mut Criterion) {
    let mut group = c.benchmark_group("looping/chain_depth");
    group.sample_size(10);
    for depth in [4usize, 16, 64] {
        for entailed in [true, false] {
            let looped = chain_instance(depth, entailed).looped().unwrap();
            let label = format!("{}-{}", depth, if entailed { "entailed" } else { "unentailed" });
            group.bench_with_input(BenchmarkId::from_parameter(label), &looped, |b, p| {
                b.iter(|| {
                    let r =
                        decide_guarded(p, GuardedConfig::new(ChaseVariant::SemiOblivious))
                            .unwrap();
                    black_box(r.verdict.terminates())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_looping);
criterion_main!(benches);
