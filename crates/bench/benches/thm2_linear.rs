//! E2 / Theorem 2 bench: the critical (shape-refined) acyclicity decision
//! on linear rule sets with repeated variables and constants, including the
//! gap family that plain WA/RA misclassify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chasekit_datagen::{critical_gap, random_linear, RandomConfig};
use chasekit_engine::ChaseVariant;
use chasekit_termination::{decide_linear, LinearAnalysis};

fn bench_gap_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2_linear/gap_family");
    group.sample_size(20);
    for n in [1usize, 4, 16] {
        let lp = critical_gap(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp.program, |b, p| {
            b.iter(|| {
                let d = decide_linear(p, ChaseVariant::SemiOblivious, false).unwrap();
                black_box(d.terminates)
            })
        });
    }
    group.finish();
}

fn bench_random_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2_linear/random");
    group.sample_size(20);
    let cfg = RandomConfig { constants: 2, complexity: 0.45, ..RandomConfig::default() };
    let programs: Vec<_> = (0..20).map(|s| random_linear(&cfg, s)).collect();
    group.bench_function("decide_20_sets", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in &programs {
                acc += decide_linear(p, ChaseVariant::SemiOblivious, false)
                    .unwrap()
                    .terminates as u32;
            }
            black_box(acc)
        })
    });
    // Separate exploration cost from the cycle check.
    group.bench_function("explore_only_20_sets", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &programs {
                acc += LinearAnalysis::explore(p, false).unwrap().shape_count();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gap_family, bench_random_linear);
criterion_main!(benches);
