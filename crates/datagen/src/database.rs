//! Random database (instance) generators for chase-engine workloads.

use chasekit_core::{Atom, Instance, Program, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dials for random database generation.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Number of facts.
    pub facts: usize,
    /// Size of the constant pool.
    pub constants: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig { facts: 20, constants: 8 }
    }
}

/// Generates a random database over the program's rule predicates,
/// interning the pool constants into the program's vocabulary.
pub fn random_database(program: &mut Program, cfg: &DbConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let consts: Vec<Term> = (0..cfg.constants)
        .map(|i| Term::Const(program.vocab.intern_const(&format!("d{i}"))))
        .collect();
    let preds = program.rule_predicates();
    let mut instance = Instance::new();
    if preds.is_empty() || consts.is_empty() {
        return instance;
    }
    for _ in 0..cfg.facts {
        let pred = preds[rng.gen_range(0..preds.len())];
        let arity = program.vocab.arity(pred);
        let args: Vec<Term> =
            (0..arity).map(|_| consts[rng.gen_range(0..consts.len())]).collect();
        instance.insert(Atom::new(pred, args));
    }
    instance
}

/// Generates a path database `e(d0, d1), e(d1, d2), ...` over a binary
/// predicate — the canonical restricted-chase divergence probe.
pub fn path_database(program: &mut Program, pred_name: &str, len: usize) -> Option<Instance> {
    let pred = program.vocab.pred(pred_name)?;
    if program.vocab.arity(pred) != 2 {
        return None;
    }
    let mut instance = Instance::new();
    for i in 0..len {
        let a = Term::Const(program.vocab.intern_const(&format!("d{i}")));
        let b = Term::Const(program.vocab.intern_const(&format!("d{}", i + 1)));
        instance.insert(Atom::new(pred, vec![a, b]));
    }
    Some(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_database_respects_size_and_arity() {
        let mut p = Program::parse("e(X, Y) -> t(X, Y).").unwrap();
        let db = random_database(&mut p, &DbConfig { facts: 50, constants: 4 }, 7);
        // Duplicates collapse, so <= 50.
        assert!(db.len() <= 50 && db.len() > 10);
        for (_, atom) in db.iter() {
            assert_eq!(atom.arity(), p.vocab.arity(atom.pred));
            assert!(atom.is_ground());
        }
    }

    #[test]
    fn random_database_is_seed_deterministic() {
        let mut p1 = Program::parse("e(X, Y) -> t(X, Y).").unwrap();
        let mut p2 = Program::parse("e(X, Y) -> t(X, Y).").unwrap();
        let a = random_database(&mut p1, &DbConfig::default(), 99);
        let b = random_database(&mut p2, &DbConfig::default(), 99);
        assert_eq!(a.len(), b.len());
        for (_, atom) in a.iter() {
            assert!(b.id_of_parts(atom.pred, atom.args).is_some());
        }
    }

    #[test]
    fn path_database_builds_a_path() {
        let mut p = Program::parse("e(X, Y) -> e(Y, Z).").unwrap();
        let db = path_database(&mut p, "e", 5).unwrap();
        assert_eq!(db.len(), 5);
        assert!(path_database(&mut p, "missing", 3).is_none());
    }
}
