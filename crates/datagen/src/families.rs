//! Structured rule-set families with known termination behaviour.
//!
//! These are the adversarial/calibration half of the workloads: families
//! whose status is known analytically, used to validate the checkers and to
//! drive the scaling experiments (E2, E3, E4).

use chasekit_core::{Program, RuleBuilder, RuleClass};

/// A family member: the program plus its known ground truth.
#[derive(Debug, Clone)]
pub struct LabeledProgram {
    /// A short family name with the size parameter, e.g. `chain-8`.
    pub name: String,
    /// The rule set.
    pub program: Program,
    /// Ground truth for the semi-oblivious chase (termination on all
    /// databases), when known analytically. `None` when the family leaves
    /// ground truth to the bounded-chase oracle.
    pub so_terminates: Option<bool>,
    /// Ground truth for the oblivious chase.
    pub o_terminates: Option<bool>,
    /// The loosest syntactic class the family promises to stay within:
    /// `program.class() <= expected_class` always holds. Harnesses use it
    /// to route members to the class-specific exact procedures.
    pub expected_class: RuleClass,
}

impl LabeledProgram {
    /// Whether the program honours its promised class bound.
    pub fn class_holds(&self) -> bool {
        self.program.class() <= self.expected_class
    }
}

fn parse(name: &str, src: &str, so: bool, o: bool) -> LabeledProgram {
    parse_in_class(name, src, so, o, RuleClass::SimpleLinear)
}

fn parse_in_class(name: &str, src: &str, so: bool, o: bool, class: RuleClass) -> LabeledProgram {
    LabeledProgram {
        name: name.to_string(),
        program: Program::parse(src).expect("family sources are well-formed"),
        so_terminates: Some(so),
        o_terminates: Some(o),
        expected_class: class,
    }
}

/// The two worked examples of the paper.
pub fn paper_examples() -> Vec<LabeledProgram> {
    vec![
        parse(
            "paper-example-1",
            "person(X) -> hasFather(X, Y), person(Y).",
            false,
            false,
        ),
        parse("paper-example-2", "p(X, Y) -> p(Y, Z).", false, false),
    ]
}

/// A terminating chain of `n` existential steps:
/// `p0(X) -> p1(X, Z). p1(X, Y) -> p2(Y, Z). ... -> pn(..)` without
/// feedback. Terminates under both variants; its shape graph has Θ(n)
/// shapes (an E3 scaling series).
pub fn chain(n: usize) -> LabeledProgram {
    let mut program = Program::new();
    let preds: Vec<_> = (0..=n)
        .map(|i| program.vocab.declare_pred(&format!("p{i}"), 2).unwrap())
        .collect();
    for i in 0..n {
        let mut rb = RuleBuilder::new();
        let x = rb.var("X");
        let y = rb.var("Y");
        let z = rb.var("Z");
        rb.body_atom(preds[i], vec![x, y]);
        rb.head_atom(preds[i + 1], vec![y, z]);
        program.add_rule(rb.build().unwrap()).unwrap();
    }
    LabeledProgram {
        name: format!("chain-{n}"),
        program,
        so_terminates: Some(true),
        o_terminates: Some(true),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// The chain closed into a cycle: the last predicate feeds the first, so
/// fresh nulls flow around forever. Diverges under both variants.
pub fn cycle(n: usize) -> LabeledProgram {
    let mut lp = chain(n);
    let p_last = lp.program.vocab.pred(&format!("p{n}")).unwrap();
    let p0 = lp.program.vocab.pred("p0").unwrap();
    let mut rb = RuleBuilder::new();
    let x = rb.var("X");
    let y = rb.var("Y");
    rb.body_atom(p_last, vec![x, y]);
    rb.head_atom(p0, vec![y, x]);
    lp.program.add_rule(rb.build().unwrap()).unwrap();
    LabeledProgram {
        name: format!("cycle-{n}"),
        program: lp.program,
        so_terminates: Some(false),
        o_terminates: Some(false),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// The o/so separator scaled to width `n`:
/// `r_i(X, Y) -> r_i(X, Z)` for `n` predicates — weakly acyclic (so-chase
/// terminates) but never richly acyclic (o-chase diverges).
pub fn separator(n: usize) -> LabeledProgram {
    let mut program = Program::new();
    for i in 0..n {
        let r = program.vocab.declare_pred(&format!("r{i}"), 2).unwrap();
        let mut rb = RuleBuilder::new();
        let x = rb.var("X");
        let y = rb.var("Y");
        let z = rb.var("Z");
        rb.body_atom(r, vec![x, y]);
        rb.head_atom(r, vec![x, z]);
        program.add_rule(rb.build().unwrap()).unwrap();
    }
    LabeledProgram {
        name: format!("separator-{n}"),
        program,
        so_terminates: Some(true),
        o_terminates: Some(false),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// The Theorem 2 motivation family: plain WA/RA reject, the chase
/// terminates. Size `n` stacks `n` independent copies of
/// `s_i(X) -> e_i(X, Z). e_i(X, X) -> s_i(X).` — the repeated body
/// variable makes the dangerous position cycle unrealizable.
pub fn critical_gap(n: usize) -> LabeledProgram {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("s{i}(X) -> e{i}(X, Z). e{i}(X, X) -> s{i}(X).\n"));
    }
    LabeledProgram {
        name: format!("critical-gap-{n}"),
        program: Program::parse(&src).unwrap(),
        so_terminates: Some(true),
        o_terminates: Some(true),
        expected_class: RuleClass::Linear,
    }
}

/// DL-Lite style inclusion dependencies (simple linear, single-head):
/// roles and concepts with `n` levels of specialization ending in an
/// existential restriction; `cyclic` closes the last level onto the first
/// (the classic "every professor teaches something taught by a professor").
pub fn dl_lite(n: usize, cyclic: bool) -> LabeledProgram {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("c{i}(X) -> role{i}(X, Z). role{i}(X, Y) -> c{}(Y).\n", i + 1));
    }
    if cyclic {
        src.push_str(&format!("c{n}(X) -> c0(X).\n"));
    }
    LabeledProgram {
        name: format!("dl-lite-{n}{}", if cyclic { "-cyclic" } else { "" }),
        program: Program::parse(&src).unwrap(),
        so_terminates: Some(!cyclic),
        o_terminates: Some(!cyclic),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// A data-exchange style source-to-target mapping followed by target
/// dependencies (the Fagin et al. setting where weak acyclicity was born).
/// Terminating by construction.
pub fn data_exchange(n: usize) -> LabeledProgram {
    let mut src = String::new();
    src.push_str("src_emp(E, D) -> t_emp(E, Z), t_dept(D, Z).\n");
    src.push_str("t_dept(D, M) -> t_mgr(M).\n");
    for i in 0..n {
        src.push_str(&format!("t_mgr(M) -> audit{i}(M).\n"));
    }
    LabeledProgram {
        name: format!("data-exchange-{n}"),
        program: Program::parse(&src).unwrap(),
        so_terminates: Some(true),
        o_terminates: Some(true),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// Wide-arity family for the bounded-vs-unbounded arity experiments: one
/// diverging rule over a predicate of arity `k`:
/// `w(X1..Xk) -> w(X2..Xk, Z)` — a rotating register that mints a null
/// per firing. The shape space is exponential in `k`.
pub fn wide(k: usize) -> LabeledProgram {
    let mut program = Program::new();
    let w = program.vocab.declare_pred("w", k).unwrap();
    let mut rb = RuleBuilder::new();
    let vars: Vec<_> = (0..k).map(|i| rb.var(&format!("X{i}"))).collect();
    let z = rb.var("Z");
    rb.body_atom(w, vars.clone());
    let mut head = vars[1..].to_vec();
    head.push(z);
    rb.head_atom(w, head);
    program.add_rule(rb.build().unwrap()).unwrap();
    LabeledProgram {
        name: format!("wide-{k}"),
        program,
        so_terminates: Some(false),
        o_terminates: Some(false),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// Terminating wide-arity family: the rotating register with a constant
/// stopper — `w(a, X2..Xk) -> w(X2..Xk, Z)` only fires while position 1
/// holds `a`, which a derived atom never re-establishes... after k-1
/// firings the register is all-nulls and dead.
pub fn wide_terminating(k: usize) -> LabeledProgram {
    let mut program = Program::new();
    let w = program.vocab.declare_pred("w", k).unwrap();
    let a = program.vocab.intern_const("a");
    let mut rb = RuleBuilder::new();
    let mut body = vec![chasekit_core::Term::Const(a)];
    let vars: Vec<_> = (1..k).map(|i| rb.var(&format!("X{i}"))).collect();
    body.extend(vars.iter().copied());
    let z = rb.var("Z");
    rb.body_atom(w, body);
    let mut head = vars.clone();
    head.push(z);
    rb.head_atom(w, head);
    program.add_rule(rb.build().unwrap()).unwrap();
    LabeledProgram {
        name: format!("wide-terminating-{k}"),
        program,
        so_terminates: Some(true),
        o_terminates: Some(true),
        expected_class: RuleClass::SimpleLinear,
    }
}

/// A `k`-bit binary counter as Datalog rules over constants 0/1: rule `i`
/// increments bit `i` when all lower bits are 1 (`s(.., 0, 1..1) ->
/// s(.., 1, 0..0)`). Chasing from `s(0,..,0)` performs exactly `2^k - 1`
/// applications before saturating — a terminating chase of exponential
/// length, used to stress the engine and to exhibit why termination
/// *checking* cannot just run the chase with a small budget.
pub fn binary_counter(k: usize) -> LabeledProgram {
    assert!(k >= 1);
    let mut program = Program::new();
    let s = program.vocab.declare_pred("s", k).unwrap();
    let zero = program.vocab.intern_const("0");
    let one = program.vocab.intern_const("1");
    // Bit 0 is the last argument. Rule i flips bit i with carry below.
    for i in 0..k {
        let mut rb = RuleBuilder::new();
        let highs: Vec<chasekit_core::Term> =
            (0..k - 1 - i).map(|j| rb.var(&format!("X{j}"))).collect();
        let mut body = highs.clone();
        body.push(chasekit_core::Term::Const(zero));
        body.extend(std::iter::repeat_n(chasekit_core::Term::Const(one), i));
        let mut head = highs;
        head.push(chasekit_core::Term::Const(one));
        head.extend(std::iter::repeat_n(chasekit_core::Term::Const(zero), i));
        rb.body_atom(s, body);
        rb.head_atom(s, head);
        program.add_rule(rb.build().unwrap()).unwrap();
    }
    // Start at zero.
    program
        .add_fact(Atom::new(s, vec![chasekit_core::Term::Const(zero); k]))
        .unwrap();
    LabeledProgram {
        name: format!("binary-counter-{k}"),
        program,
        so_terminates: Some(true),
        o_terminates: Some(true),
        expected_class: RuleClass::SimpleLinear,
    }
}

use chasekit_core::Atom;

/// The full calibration corpus used by integration tests and E-series
/// sanity checks.
pub fn corpus() -> Vec<LabeledProgram> {
    let mut out = paper_examples();
    out.push(chain(4));
    out.push(cycle(3));
    out.push(separator(2));
    out.push(critical_gap(2));
    out.push(dl_lite(3, false));
    out.push(dl_lite(3, true));
    out.push(data_exchange(3));
    out.push(wide(3));
    out.push(wide_terminating(3));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::RuleClass;

    #[test]
    fn corpus_members_parse_and_have_labels() {
        let corpus = corpus();
        assert!(corpus.len() >= 10);
        for lp in &corpus {
            assert!(lp.so_terminates.is_some(), "{}", lp.name);
            assert!(lp.o_terminates.is_some(), "{}", lp.name);
            assert!(!lp.program.rules().is_empty(), "{}", lp.name);
        }
    }

    #[test]
    fn families_scale() {
        assert_eq!(chain(10).program.rules().len(), 10);
        assert_eq!(cycle(10).program.rules().len(), 11);
        assert_eq!(separator(7).program.rules().len(), 7);
        assert_eq!(wide(9).program.vocab.arity(wide(9).program.vocab.pred("w").unwrap()), 9);
    }

    #[test]
    fn families_are_linear_where_promised() {
        assert_eq!(chain(4).program.class(), RuleClass::SimpleLinear);
        assert_eq!(separator(3).program.class(), RuleClass::SimpleLinear);
        assert_eq!(critical_gap(2).program.class(), RuleClass::Linear);
        assert_eq!(dl_lite(2, true).program.class(), RuleClass::SimpleLinear);
        assert_eq!(wide(4).program.class(), RuleClass::SimpleLinear);
    }

    #[test]
    fn binary_counter_counts_to_two_to_the_k() {
        use chasekit_core::Instance;
        use chasekit_engine::{chase, Budget, StopReason, ChaseVariant};
        for k in 1..=6usize {
            let lp = binary_counter(k);
            let db = Instance::from_atoms(lp.program.facts().iter().cloned());
            let run = chase(&lp.program, ChaseVariant::SemiOblivious, db, &Budget::default());
            assert_eq!(run.outcome, StopReason::Saturated, "k={k}");
            // One application per increment: 2^k - 1, visiting every state.
            assert_eq!(run.stats.applications, (1 << k) - 1, "k={k}");
            assert_eq!(run.instance.len(), 1 << k, "k={k}");
        }
    }

    #[test]
    fn binary_counter_is_declared_terminating_by_the_checkers() {
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        let lp = binary_counter(4);
        for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
            assert!(decide_linear(&lp.program, variant, false).unwrap().terminates);
        }
    }

    #[test]
    fn wide_terminating_is_actually_terminating() {
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        for k in 2..6 {
            let lp = wide_terminating(k);
            for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
                assert!(
                    decide_linear(&lp.program, variant, false).unwrap().terminates,
                    "wide-terminating-{k} under {variant}"
                );
            }
        }
    }

    #[test]
    fn labels_match_the_exact_linear_checker() {
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        for lp in corpus() {
            if !matches!(lp.program.class(), RuleClass::SimpleLinear | RuleClass::Linear) {
                continue;
            }
            let so = decide_linear(&lp.program, ChaseVariant::SemiOblivious, false)
                .unwrap()
                .terminates;
            let o = decide_linear(&lp.program, ChaseVariant::Oblivious, false)
                .unwrap()
                .terminates;
            assert_eq!(Some(so), lp.so_terminates, "{} (so)", lp.name);
            assert_eq!(Some(o), lp.o_terminates, "{} (o)", lp.name);
        }
    }
}
