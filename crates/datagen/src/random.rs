//! Seeded random rule-set generators, one per syntactic class.
//!
//! The termination theorems quantify over all rule sets of a class, so the
//! experiments sample the class under controllable dials. All generators
//! are deterministic in the seed (rand's `StdRng`), so every experiment in
//! EXPERIMENTS.md can be regenerated exactly.

use chasekit_core::{PredId, Program, RuleBuilder, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dials for random rule-set generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of predicates in the pool.
    pub predicates: usize,
    /// Maximum predicate arity (each predicate gets arity 1..=max).
    pub max_arity: usize,
    /// Number of rules to generate.
    pub rules: usize,
    /// Probability that a head position gets an existential variable
    /// (rather than a frontier variable).
    pub existential_prob: f64,
    /// Maximum number of head atoms per rule.
    pub max_head_atoms: usize,
    /// Linear generators: probability of repeating a body variable
    /// (non-simple rules). Guarded generator: extra body atoms beyond the
    /// guard.
    pub complexity: f64,
    /// Number of constants available to the linear-with-constants
    /// generator (0 for constant-free rules).
    pub constants: usize,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            predicates: 4,
            max_arity: 3,
            rules: 4,
            existential_prob: 0.4,
            max_head_atoms: 2,
            complexity: 0.3,
            constants: 0,
        }
    }
}

/// Declares the predicate pool, returning ids (arities cycle 1..=max).
fn declare_pool(program: &mut Program, cfg: &RandomConfig) -> Vec<PredId> {
    (0..cfg.predicates)
        .map(|i| {
            let arity = 1 + (i % cfg.max_arity.max(1));
            program
                .vocab
                .declare_pred(&format!("p{i}"), arity)
                .expect("fresh predicate")
        })
        .collect()
}

fn intern_constants(program: &mut Program, cfg: &RandomConfig) -> Vec<Term> {
    (0..cfg.constants)
        .map(|i| Term::Const(program.vocab.intern_const(&format!("c{i}"))))
        .collect()
}

/// Generates a random **simple linear**, constant-free rule set
/// (the population of experiment E1 / Theorem 1).
pub fn random_simple_linear(cfg: &RandomConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let pool = declare_pool(&mut program, cfg);

    for _ in 0..cfg.rules {
        let mut rb = RuleBuilder::new();
        let body_pred = pool[rng.gen_range(0..pool.len())];
        let body_arity = program.vocab.arity(body_pred);
        // Simple linear: pairwise distinct body variables.
        let body_vars: Vec<Term> =
            (0..body_arity).map(|i| rb.var(&format!("X{i}"))).collect();
        rb.body_atom(body_pred, body_vars.clone());

        let head_atoms = 1 + rng.gen_range(0..cfg.max_head_atoms);
        let mut existentials = 0usize;
        for _ in 0..head_atoms {
            let head_pred = pool[rng.gen_range(0..pool.len())];
            let head_arity = program.vocab.arity(head_pred);
            let args: Vec<Term> = (0..head_arity)
                .map(|_| {
                    if rng.gen_bool(cfg.existential_prob) {
                        existentials += 1;
                        rb.var(&format!("Z{existentials}"))
                    } else {
                        body_vars[rng.gen_range(0..body_vars.len())]
                    }
                })
                .collect();
            rb.head_atom(head_pred, args);
        }
        program
            .add_rule(rb.build().expect("generated rule is valid"))
            .expect("arities match by construction");
    }
    program
}

/// Generates a random **linear** rule set, optionally with repeated body
/// variables and constants (the population of experiment E2 / Theorem 2).
pub fn random_linear(cfg: &RandomConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let pool = declare_pool(&mut program, cfg);
    let consts = intern_constants(&mut program, cfg);

    for _ in 0..cfg.rules {
        let mut rb = RuleBuilder::new();
        let body_pred = pool[rng.gen_range(0..pool.len())];
        let body_arity = program.vocab.arity(body_pred);

        // Body: variables, with repetition/constants per `complexity`.
        let mut body_args: Vec<Term> = Vec::with_capacity(body_arity);
        let mut distinct = 0usize;
        for _ in 0..body_arity {
            let reuse = distinct > 0 && rng.gen_bool(cfg.complexity);
            let use_const = !consts.is_empty() && rng.gen_bool(cfg.complexity / 2.0);
            if use_const {
                body_args.push(consts[rng.gen_range(0..consts.len())]);
            } else if reuse {
                let pick = rng.gen_range(0..distinct);
                body_args.push(rb.var(&format!("X{pick}")));
            } else {
                body_args.push(rb.var(&format!("X{distinct}")));
                distinct += 1;
            }
        }
        if distinct == 0 {
            // Ensure at least one variable so the rule is interesting.
            body_args[0] = rb.var("X0");
            distinct = 1;
        }
        rb.body_atom(body_pred, body_args);
        let body_vars: Vec<Term> = (0..distinct).map(|i| rb.var(&format!("X{i}"))).collect();

        let head_atoms = 1 + rng.gen_range(0..cfg.max_head_atoms);
        let mut existentials = 0usize;
        for _ in 0..head_atoms {
            let head_pred = pool[rng.gen_range(0..pool.len())];
            let head_arity = program.vocab.arity(head_pred);
            let args: Vec<Term> = (0..head_arity)
                .map(|_| {
                    if !consts.is_empty() && rng.gen_bool(cfg.complexity / 3.0) {
                        consts[rng.gen_range(0..consts.len())]
                    } else if rng.gen_bool(cfg.existential_prob) {
                        existentials += 1;
                        rb.var(&format!("Z{existentials}"))
                    } else {
                        body_vars[rng.gen_range(0..body_vars.len())]
                    }
                })
                .collect();
            rb.head_atom(head_pred, args);
        }
        program
            .add_rule(rb.build().expect("generated rule is valid"))
            .expect("arities match by construction");
    }
    program
}

/// Generates a random **guarded** rule set (the population of experiment
/// E4 / Theorem 4): each rule has a guard atom containing all universal
/// variables plus side atoms over subsets of them.
pub fn random_guarded(cfg: &RandomConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let pool = declare_pool(&mut program, cfg);

    for _ in 0..cfg.rules {
        let mut rb = RuleBuilder::new();
        // Guard: the widest predicates make better guards.
        let guard_pred = pool[rng.gen_range(0..pool.len())];
        let guard_arity = program.vocab.arity(guard_pred);
        let mut guard_args = Vec::with_capacity(guard_arity);
        let mut distinct = 0usize;
        for _ in 0..guard_arity {
            if distinct > 0 && rng.gen_bool(cfg.complexity / 2.0) {
                let pick = rng.gen_range(0..distinct);
                guard_args.push(rb.var(&format!("X{pick}")));
            } else {
                guard_args.push(rb.var(&format!("X{distinct}")));
                distinct += 1;
            }
        }
        rb.body_atom(guard_pred, guard_args);
        let guard_vars: Vec<Term> = (0..distinct).map(|i| rb.var(&format!("X{i}"))).collect();

        // Side atoms over guard variables only (keeps the rule guarded).
        let side_atoms = (rng.gen_bool(cfg.complexity) as usize)
            + (rng.gen_bool(cfg.complexity / 2.0) as usize);
        for _ in 0..side_atoms {
            let side_pred = pool[rng.gen_range(0..pool.len())];
            let side_arity = program.vocab.arity(side_pred);
            let args: Vec<Term> = (0..side_arity)
                .map(|_| guard_vars[rng.gen_range(0..guard_vars.len())])
                .collect();
            rb.body_atom(side_pred, args);
        }

        let head_atoms = 1 + rng.gen_range(0..cfg.max_head_atoms);
        let mut existentials = 0usize;
        for _ in 0..head_atoms {
            let head_pred = pool[rng.gen_range(0..pool.len())];
            let head_arity = program.vocab.arity(head_pred);
            let args: Vec<Term> = (0..head_arity)
                .map(|_| {
                    if rng.gen_bool(cfg.existential_prob) {
                        existentials += 1;
                        rb.var(&format!("Z{existentials}"))
                    } else {
                        guard_vars[rng.gen_range(0..guard_vars.len())]
                    }
                })
                .collect();
            rb.head_atom(head_pred, args);
        }
        program
            .add_rule(rb.build().expect("generated rule is valid"))
            .expect("arities match by construction");
    }
    program
}

/// Generates a random unrestricted rule set (bodies of 1–3 atoms with
/// freely shared variables). Used by the portfolio experiments.
pub fn random_general(cfg: &RandomConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let pool = declare_pool(&mut program, cfg);

    for _ in 0..cfg.rules {
        let mut rb = RuleBuilder::new();
        let body_atoms = 1 + rng.gen_range(0..3);
        let var_pool_size = 1 + rng.gen_range(0..4);
        let vars: Vec<Term> =
            (0..var_pool_size).map(|i| rb.var(&format!("X{i}"))).collect();
        let mut used = vec![false; var_pool_size];
        for _ in 0..body_atoms {
            let pred = pool[rng.gen_range(0..pool.len())];
            let arity = program.vocab.arity(pred);
            let args: Vec<Term> = (0..arity)
                .map(|_| {
                    let i = rng.gen_range(0..var_pool_size);
                    used[i] = true;
                    vars[i]
                })
                .collect();
            rb.body_atom(pred, args);
        }
        let used_vars: Vec<Term> = vars
            .iter()
            .zip(&used)
            .filter(|(_, &u)| u)
            .map(|(&v, _)| v)
            .collect();

        let head_atoms = 1 + rng.gen_range(0..cfg.max_head_atoms);
        let mut existentials = 0usize;
        for _ in 0..head_atoms {
            let head_pred = pool[rng.gen_range(0..pool.len())];
            let head_arity = program.vocab.arity(head_pred);
            let args: Vec<Term> = (0..head_arity)
                .map(|_| {
                    if rng.gen_bool(cfg.existential_prob) || used_vars.is_empty() {
                        existentials += 1;
                        rb.var(&format!("Z{existentials}"))
                    } else {
                        used_vars[rng.gen_range(0..used_vars.len())]
                    }
                })
                .collect();
            rb.head_atom(head_pred, args);
        }
        program
            .add_rule(rb.build().expect("generated rule is valid"))
            .expect("arities match by construction");
    }
    program
}

/// Samples one of the four class generators by seed (simple-linear,
/// linear-with-constants, guarded, general in rotation), for harnesses
/// that want a class-mixed random population alongside the structured
/// ontology families. Deterministic in `(cfg, seed)`.
pub fn random_mixed(cfg: &RandomConfig, seed: u64) -> Program {
    match seed % 4 {
        0 => random_simple_linear(cfg, seed),
        1 => {
            let cfg = RandomConfig { constants: cfg.constants.max(2), ..*cfg };
            random_linear(&cfg, seed)
        }
        2 => random_guarded(cfg, seed),
        _ => random_general(cfg, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::RuleClass;

    #[test]
    fn simple_linear_generator_stays_in_class() {
        for seed in 0..50 {
            let p = random_simple_linear(&RandomConfig::default(), seed);
            assert_eq!(p.class(), RuleClass::SimpleLinear, "seed {seed}");
            assert_eq!(p.rules().len(), 4);
        }
    }

    #[test]
    fn linear_generator_stays_in_class() {
        let cfg = RandomConfig { constants: 2, complexity: 0.5, ..Default::default() };
        for seed in 0..50 {
            let p = random_linear(&cfg, seed);
            assert!(
                matches!(p.class(), RuleClass::SimpleLinear | RuleClass::Linear),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn guarded_generator_stays_in_class() {
        for seed in 0..50 {
            let p = random_guarded(&RandomConfig::default(), seed);
            assert!(p.class() <= RuleClass::Guarded, "seed {seed}: {:?}", p.class());
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = RandomConfig::default();
        let a = random_linear(&cfg, 42);
        let b = random_linear(&cfg, 42);
        assert_eq!(
            chasekit_core::display::program_to_string(&a),
            chasekit_core::display::program_to_string(&b)
        );
        let c = random_linear(&cfg, 43);
        assert_ne!(
            chasekit_core::display::program_to_string(&a),
            chasekit_core::display::program_to_string(&c)
        );
    }

    #[test]
    fn populations_mix_terminating_and_diverging() {
        // The dials should produce a non-degenerate population: among 100
        // seeds, some weakly acyclic and some not.
        let cfg = RandomConfig::default();
        let mut wa = 0;
        for seed in 0..100 {
            let p = random_simple_linear(&cfg, seed);
            if chasekit_acyclicity::is_weakly_acyclic(&p) {
                wa += 1;
            }
        }
        assert!(wa > 5, "too few weakly acyclic sets: {wa}");
        assert!(wa < 95, "too few dangerous sets: {wa}");
    }

    #[test]
    fn general_generator_produces_valid_rules() {
        for seed in 0..50 {
            let p = random_general(&RandomConfig::default(), seed);
            assert_eq!(p.rules().len(), 4, "seed {seed}");
            for r in p.rules() {
                assert!(!r.body().is_empty());
                assert!(!r.head().is_empty());
            }
        }
    }
}
