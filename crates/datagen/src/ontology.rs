//! Ontology-shaped rule-set families for the corpus-scale checker
//! shoot-out (ROADMAP item 4, experiment E9).
//!
//! Three families modelled on the rule sets used by the experimental
//! studies in PAPERS.md (Calautti–Milani–Pieris; Karimi–Zhang–You):
//!
//! * [`dl_lite_r`] — DL-Lite_R inclusion dependencies: unary concepts and
//!   binary roles related by seeded concept/role inclusions, inverses,
//!   existential restrictions, and domain/range axioms. Simple linear.
//! * [`lubm`] — a LUBM-flavoured synthetic university ontology: a fixed
//!   terminating backbone (students, professors, courses, departments)
//!   plus seeded extensions including guarded joins, Datalog
//!   transitivity, and an occasional cycle-closer. General class.
//! * [`critical_constants`] — linear rules whose constants and repeated
//!   variables are exactly what the critical-instance WA/RA machinery in
//!   `chasekit_core::critical` distinguishes from plain WA/RA. Linear.
//!
//! Unlike the calibration families in [`crate::families`], these carry
//! `None` termination labels: their ground truth is established by the
//! bounded-chase oracle in the landscape harness, never assumed. Every
//! generator is deterministic in `(size, seed)`.

use crate::families::LabeledProgram;
use chasekit_core::{Program, RuleClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn unlabeled(name: String, src: &str, class: RuleClass) -> LabeledProgram {
    LabeledProgram {
        name,
        program: Program::parse(src).expect("generated ontology sources are well-formed"),
        so_terminates: None,
        o_terminates: None,
        expected_class: class,
    }
}

/// A DL-Lite_R TBox as inclusion dependencies: `size` concepts (arity 1)
/// and `size` roles (arity 2), with roughly `2·size` seeded axioms drawn
/// from the DL-Lite_R constructors — concept inclusion `ci ⊑ cj`, role
/// inclusion `ri ⊑ rj`, inverse role inclusion `ri ⊑ rj⁻`, existential
/// restriction `ci ⊑ ∃rj`, and domain/range axioms `∃ri ⊑ cj` /
/// `∃ri⁻ ⊑ cj`. Every axiom is a single-head simple-linear rule.
pub fn dl_lite_r(size: usize, seed: u64) -> LabeledProgram {
    let size = size.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    let axioms = 2 * size;
    for _ in 0..axioms {
        let i = rng.gen_range(0..size);
        let j = rng.gen_range(0..size);
        match rng.gen_range(0..6) {
            // Concept inclusion: ci ⊑ cj.
            0 => src.push_str(&format!("c{i}(X) -> c{j}(X).\n")),
            // Role inclusion: ri ⊑ rj.
            1 => src.push_str(&format!("r{i}(X, Y) -> r{j}(X, Y).\n")),
            // Inverse role inclusion: ri ⊑ rj⁻.
            2 => src.push_str(&format!("r{i}(X, Y) -> r{j}(Y, X).\n")),
            // Existential restriction: ci ⊑ ∃rj.
            3 => src.push_str(&format!("c{i}(X) -> r{j}(X, Z).\n")),
            // Domain: ∃ri ⊑ cj.
            4 => src.push_str(&format!("r{i}(X, Y) -> c{j}(X).\n")),
            // Range: ∃ri⁻ ⊑ cj.
            _ => src.push_str(&format!("r{i}(X, Y) -> c{j}(Y).\n")),
        }
    }
    unlabeled(format!("dl-lite-r-{size}-s{seed}"), &src, RuleClass::SimpleLinear)
}

/// A LUBM-flavoured synthetic university ontology: the fixed backbone
/// below (terminating on its own) plus `size` seeded extension rules —
/// specialization chains, domain/inverse axioms, guarded joins,
/// `subOrganizationOf` transitivity (plain Datalog, unguarded), and an
/// occasional cycle-closer (`course ⊑ ∃taughtBy⁻.professor`) that turns
/// the professor/course generator into a null-minting loop.
pub fn lubm(size: usize, seed: u64) -> LabeledProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::from(concat!(
        "graduateStudent(X) -> student(X).\n",
        "associateProfessor(X) -> professor(X).\n",
        "fullProfessor(X) -> professor(X).\n",
        "headOf(X, Y) -> worksFor(X, Y).\n",
        "worksFor(X, Y) -> memberOf(X, Y).\n",
        "memberOf(X, Y) -> organization(Y).\n",
        "professor(X) -> teacherOf(X, Z), course(Z).\n",
        "graduateStudent(X) -> advisor(X, Z), professor(Z).\n",
        "department(X) -> subOrganizationOf(X, Z), university(Z).\n",
        "teacherOf(X, Y) -> course(Y).\n",
        "advisor(X, Y) -> professor(Y).\n",
    ));
    for k in 0..size {
        // One diverging block anywhere dooms the whole program, so the
        // cycle-closer odds shrink with size to keep the population's
        // terminating/diverging mix roughly size-independent (~e^-1).
        if rng.gen_bool(1.0 / (size as f64 + 2.0)) {
            src.push_str("course(X) -> teacherOf(Z, X), professor(Z).\n");
            continue;
        }
        match rng.gen_range(0..7) {
            // Specialization: a fresh sub-concept under a backbone concept.
            0 => {
                let sup = ["professor", "student", "organization", "course"]
                    [rng.gen_range(0..4)];
                src.push_str(&format!("special{k}(X) -> {sup}(X).\n"));
            }
            // Fresh sub-role under a backbone role.
            1 => {
                let sup = ["worksFor", "memberOf", "teacherOf"][rng.gen_range(0..3)];
                src.push_str(&format!("subrole{k}(X, Y) -> {sup}(X, Y).\n"));
            }
            // Inverse role axiom.
            2 => src.push_str("memberOf(X, Y) -> hasMember(Y, X).\n"),
            // Domain axiom closing teacherOf back onto professor (Datalog).
            3 => src.push_str("teacherOf(X, Y) -> professor(X).\n"),
            // Guarded join: advised professors are employed somewhere.
            4 => src.push_str("advisor(X, Y), professor(Y) -> worksFor(Y, Z).\n"),
            // Guarded join: course members study it under a teacher.
            5 => src.push_str("teacherOf(X, Y), course(Y) -> takesCourse(Z, Y).\n"),
            // Datalog transitivity — unguarded, pushes the class to General.
            _ => src.push_str(
                "subOrganizationOf(X, Y), subOrganizationOf(Y, Z) -> subOrganizationOf(X, Z).\n",
            ),
        }
    }
    unlabeled(format!("lubm-{size}-s{seed}"), &src, RuleClass::General)
}

/// Linear rule blocks whose termination hinges on what the critical
/// instance can actually realize: constants that block position cycles
/// (plain WA rejects, critical-WA accepts) and repeated body variables
/// that make dangerous cycles unrealizable (the Theorem 2 gap). Each of
/// the `size` blocks draws one of four templates; the `stop` templates
/// terminate, the `loop` templates diverge.
pub fn critical_constants(size: usize, seed: u64) -> LabeledProgram {
    let size = size.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    for i in 0..size {
        // A single diverging block dooms the program, so the loop
        // templates' odds shrink with size (as in [`lubm`]) to keep the
        // terminating/diverging mix roughly size-independent.
        if rng.gen_bool(1.0 / (size as f64 + 1.0)) {
            if rng.gen_bool(0.5) {
                // Constant loop: the feedback rule matches the constant
                // the generator writes — the cycle is real, mints forever.
                src.push_str(&format!(
                    "p{i}(X) -> q{i}(b, X, Z). q{i}(b, X, Y) -> p{i}(Y).\n"
                ));
            } else {
                // Variable loop: feedback on the first position, which
                // derived atoms do share — diverges.
                src.push_str(&format!(
                    "p{i}(X) -> e{i}(X, Z). e{i}(X, Y) -> p{i}(Y).\n"
                ));
            }
        } else if rng.gen_bool(0.5) {
            // Constant stopper: the feedback rule requires constant `a` in
            // the position the generator fills with `b` — the position
            // cycle WA sees is unrealizable from derived atoms.
            src.push_str(&format!(
                "p{i}(X) -> q{i}(b, X, Z). q{i}(a, X, Y) -> p{i}(Y).\n"
            ));
        } else {
            // Repeated-variable stopper (the Theorem 2 gap family): the
            // feedback rule needs e{i}(t, t), which no derived atom with a
            // fresh null in the second position can supply.
            src.push_str(&format!(
                "p{i}(X) -> e{i}(X, Z). e{i}(X, X) -> p{i}(X).\n"
            ));
        }
    }
    unlabeled(format!("critical-constants-{size}-s{seed}"), &src, RuleClass::Linear)
}

/// A small cross-section of all three ontology families (several sizes ×
/// seeds each) for integration tests and the portfolio example.
pub fn ontology_corpus() -> Vec<LabeledProgram> {
    let mut out = Vec::new();
    for (size, seed) in [(3, 1), (5, 2), (8, 3)] {
        out.push(dl_lite_r(size, seed));
        out.push(lubm(size, seed));
        out.push(critical_constants(size, seed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::display::program_to_string;

    #[test]
    fn generators_are_deterministic_in_size_and_seed() {
        for (size, seed) in [(2, 0), (5, 7), (9, 42)] {
            for gen in [dl_lite_r, lubm, critical_constants] {
                let a = gen(size, seed);
                let b = gen(size, seed);
                assert_eq!(program_to_string(&a.program), program_to_string(&b.program));
            }
        }
        // The seed genuinely varies the output (nearby seeds may collide
        // on tiny sizes, so ask for distinctness across a seed range).
        for gen in [dl_lite_r, lubm, critical_constants] {
            let distinct: std::collections::HashSet<String> =
                (0..16).map(|s| program_to_string(&gen(6, s).program)).collect();
            assert!(distinct.len() >= 4, "only {} distinct programs", distinct.len());
        }
    }

    #[test]
    fn families_respect_their_promised_class() {
        for size in [2, 4, 8, 12] {
            for seed in 0..20 {
                for gen in [dl_lite_r, lubm, critical_constants] {
                    let lp = gen(size, seed);
                    assert!(lp.class_holds(), "{}: {:?}", lp.name, lp.program.class());
                }
            }
        }
        // The class bounds are tight somewhere in the population: dl_lite_r
        // is always simple linear, lubm reaches General, critical_constants
        // is linear-but-not-simple whenever a repeated-variable block fires.
        assert!((0..20).any(|s| lubm(6, s).program.class() == RuleClass::General));
        assert!((0..20)
            .any(|s| critical_constants(6, s).program.class() == RuleClass::Linear));
    }

    #[test]
    fn populations_mix_terminating_and_diverging() {
        // Ground truth via the exact linear checker where available, MFA
        // otherwise: each family must be a non-degenerate population.
        use chasekit_engine::ChaseVariant;
        use chasekit_termination::decide_linear;
        let mut dl = (0, 0);
        let mut cc = (0, 0);
        for seed in 0..40 {
            let lp = dl_lite_r(4, seed);
            if decide_linear(&lp.program, ChaseVariant::SemiOblivious, false)
                .unwrap()
                .terminates
            {
                dl.0 += 1;
            } else {
                dl.1 += 1;
            }
            let lp = critical_constants(4, seed);
            if decide_linear(&lp.program, ChaseVariant::SemiOblivious, false)
                .unwrap()
                .terminates
            {
                cc.0 += 1;
            } else {
                cc.1 += 1;
            }
        }
        assert!(dl.0 >= 3 && dl.1 >= 3, "dl-lite-r degenerate: {dl:?}");
        assert!(cc.0 >= 3 && cc.1 >= 3, "critical-constants degenerate: {cc:?}");
        let mut lu = (0, 0);
        for seed in 0..40 {
            let lp = lubm(6, seed);
            let budget = chasekit_engine::Budget::default();
            match chasekit_termination::mfa_status(&lp.program, &budget).is_mfa() {
                Some(true) => lu.0 += 1,
                _ => lu.1 += 1,
            }
        }
        assert!(lu.0 >= 3 && lu.1 >= 3, "lubm degenerate: {lu:?}");
    }

    #[test]
    fn critical_instances_stay_small() {
        use chasekit_core::CriticalInstance;
        for seed in 0..10 {
            for gen in [dl_lite_r, lubm, critical_constants] {
                let mut lp = gen(10, seed);
                let crit = CriticalInstance::build(&mut lp.program);
                assert!(
                    crit.instance.len() < 5_000,
                    "{}: {} critical atoms",
                    lp.name,
                    crit.instance.len()
                );
            }
        }
    }

    #[test]
    fn ontology_corpus_is_unlabeled_but_classed() {
        let corpus = ontology_corpus();
        assert_eq!(corpus.len(), 9);
        for lp in &corpus {
            assert!(lp.so_terminates.is_none(), "{}", lp.name);
            assert!(lp.class_holds(), "{}", lp.name);
            assert!(!lp.program.rules().is_empty(), "{}", lp.name);
        }
    }
}
