//! # chasekit-datagen
//!
//! Seeded workload generators for the termination experiments: random rule
//! sets per syntactic class ([`random`]), structured families with known
//! ground truth ([`families`]), and database generators ([`database`]).
//! Everything is deterministic in its seed so experiments are exactly
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod database;
pub mod families;
pub mod ontology;
pub mod random;

pub use database::{path_database, random_database, DbConfig};
pub use families::{
    binary_counter, chain, corpus, critical_gap, cycle, data_exchange, dl_lite, paper_examples,
    separator, wide, wide_terminating, LabeledProgram,
};
pub use ontology::{critical_constants, dl_lite_r, lubm, ontology_corpus};
pub use random::{
    random_general, random_guarded, random_linear, random_mixed, random_simple_linear,
    RandomConfig,
};
