//! Property tests for the graph substrate: the SCC-based special-cycle
//! detection against a brute-force path-enumeration oracle.

use proptest::prelude::*;

use chasekit_acyclicity::DiGraph;

/// Oracle: does a cycle through a special edge exist? Checks, for every
/// special edge (u, v), whether v reaches u by DFS.
fn oracle_special_cycle(n: usize, edges: &[(usize, usize, bool)]) -> bool {
    let adj = |x: usize| edges.iter().filter(move |&&(a, _, _)| a == x).map(|&(_, b, _)| b);
    let reaches = |from: usize, to: usize| {
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(adj(x));
        }
        false
    };
    edges.iter().any(|&(u, v, special)| special && reaches(v, u))
}

fn oracle_any_cycle(n: usize, edges: &[(usize, usize, bool)]) -> bool {
    let adj = |x: usize| edges.iter().filter(move |&&(a, _, _)| a == x).map(|&(_, b, _)| b);
    let reaches = |from: usize, to: usize| {
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(adj(x));
        }
        false
    };
    edges.iter().any(|&(u, v, _)| reaches(v, u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn special_cycle_detection_matches_oracle(
        n in 1usize..10,
        raw_edges in proptest::collection::vec((0usize..10, 0usize..10, any::<bool>()), 0..25),
    ) {
        let edges: Vec<(usize, usize, bool)> = raw_edges
            .into_iter()
            .map(|(u, v, s)| (u % n, v % n, s))
            .collect();
        let mut g = DiGraph::new(n);
        for &(u, v, s) in &edges {
            g.add_edge(u, v, s);
        }
        prop_assert_eq!(g.has_special_cycle(), oracle_special_cycle(n, &edges));
        prop_assert_eq!(g.has_cycle(), oracle_any_cycle(n, &edges));
    }

    #[test]
    fn witness_edge_really_lies_on_a_cycle(
        n in 1usize..10,
        raw_edges in proptest::collection::vec((0usize..10, 0usize..10, any::<bool>()), 0..25),
    ) {
        let edges: Vec<(usize, usize, bool)> = raw_edges
            .into_iter()
            .map(|(u, v, s)| (u % n, v % n, s))
            .collect();
        let mut g = DiGraph::new(n);
        for &(u, v, s) in &edges {
            g.add_edge(u, v, s);
        }
        if let Some((u, v)) = g.find_special_cycle_edge() {
            // The witness must be a recorded special edge on a real cycle.
            prop_assert!(edges.iter().any(|&(a, b, s)| s && a == u && b == v));
            let reaches = g.reachable_from(v);
            prop_assert!(reaches[u], "witness target must reach the source");
        }
    }
}
