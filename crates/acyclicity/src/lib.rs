//! # chasekit-acyclicity
//!
//! Acyclicity-based sufficient conditions for chase termination:
//!
//! * **Weak acyclicity** (WA) — Fagin, Kolaitis, Miller, Popa (TCS 2005);
//!   guarantees semi-oblivious (and restricted) chase termination.
//! * **Rich acyclicity** (RA) — Hernich & Schweikardt (PODS 2007);
//!   guarantees oblivious chase termination.
//! * **Joint acyclicity** (JA) — Krötzsch & Rudolph (IJCAI 2011); a strict
//!   generalization of WA for the semi-oblivious chase.
//! * **aGRD** — acyclicity of the (over-approximated) graph of rule
//!   dependencies (Baget et al.); sound for every chase variant and
//!   incomparable with WA.
//!
//! The paper reproduced by this workspace proves WA and RA are *exact* on
//! simple linear TGDs (Theorem 1); the exact procedures for the larger
//! classes live in `chasekit-termination`. Model-faithful acyclicity (MFA)
//! also lives there, since it runs the chase.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod depgraph;
pub mod graph;
pub mod grd;
pub mod joint;
pub mod position;

pub use depgraph::{
    check, check_with_work, dependency_graph, is_richly_acyclic, is_weakly_acyclic,
    Acyclicity, GraphKind, GraphWork,
};
pub use graph::DiGraph;
pub use grd::{is_grd_acyclic, rule_dependency_graph};
pub use joint::is_jointly_acyclic;
pub use position::{Position, PositionMap};
