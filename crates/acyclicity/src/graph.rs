//! A small directed graph with special/regular edge labels, strongly
//! connected components, and dangerous-cycle detection.
//!
//! All acyclicity conditions in this crate reduce to the same question on
//! some graph: *is there a cycle passing through a special edge?* A cycle
//! through edge `(u, v)` exists iff `v` can reach `u`, i.e. iff `u` and `v`
//! lie in the same strongly connected component — so one SCC pass answers
//! the question for all special edges at once.

/// A directed graph over nodes `0..n` with boolean edge labels
/// (`special` or regular).
#[derive(Debug, Clone)]
pub struct DiGraph {
    adj: Vec<Vec<(u32, bool)>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (with multiplicity).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an edge `u -> v`; `special` marks null-creating propagation.
    pub fn add_edge(&mut self, u: usize, v: usize, special: bool) {
        // Parallel duplicates add nothing to any analysis; keep the graph
        // small on dense inputs.
        if self.adj[u].contains(&(v as u32, special)) {
            return;
        }
        self.adj[u].push((v as u32, special));
        self.edge_count += 1;
    }

    /// Outgoing edges of `u` as `(target, special)` pairs.
    pub fn edges(&self, u: usize) -> &[(u32, bool)] {
        &self.adj[u]
    }

    /// Computes strongly connected components (iterative Tarjan).
    /// Returns a component id per node; ids are in reverse topological
    /// order of the condensation (standard Tarjan numbering).
    pub fn scc(&self) -> Vec<u32> {
        let n = self.adj.len();
        const UNSET: u32 = u32::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut comp = vec![UNSET; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;

        // Explicit DFS stack: (node, edge cursor).
        let mut call: Vec<(u32, u32)> = Vec::new();

        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            call.push((start as u32, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (u, ref mut cursor)) = call.last_mut() {
                let u_us = u as usize;
                if (*cursor as usize) < self.adj[u_us].len() {
                    let (v, _) = self.adj[u_us][*cursor as usize];
                    *cursor += 1;
                    let v_us = v as usize;
                    if index[v_us] == UNSET {
                        index[v_us] = next_index;
                        low[v_us] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v_us] = true;
                        call.push((v, 0));
                    } else if on_stack[v_us] {
                        low[u_us] = low[u_us].min(index[v_us]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let p = parent as usize;
                        low[p] = low[p].min(low[u_us]);
                    }
                    if low[u_us] == index[u_us] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = next_comp;
                            if w == u {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// Whether some cycle passes through a special edge.
    pub fn has_special_cycle(&self) -> bool {
        self.find_special_cycle_edge().is_some()
    }

    /// Returns a special edge `(u, v)` lying on a cycle, if any.
    pub fn find_special_cycle_edge(&self) -> Option<(usize, usize)> {
        let comp = self.scc();
        for (u, edges) in self.adj.iter().enumerate() {
            for &(v, special) in edges {
                if special && comp[u] == comp[v as usize] {
                    // Self-loops and intra-SCC special edges both qualify:
                    // u == v is a cycle of length one; otherwise v reaches u
                    // inside the component.
                    return Some((u, v as usize));
                }
            }
        }
        None
    }

    /// Whether some cycle exists at all (special or not).
    pub fn has_cycle(&self) -> bool {
        let comp = self.scc();
        // A cycle exists iff some SCC has 2+ nodes or a self-loop.
        let mut size = vec![0usize; self.adj.len()];
        for &c in &comp {
            size[c as usize] += 1;
        }
        for (u, edges) in self.adj.iter().enumerate() {
            if size[comp[u] as usize] > 1 {
                return true;
            }
            if edges.iter().any(|&(v, _)| v as usize == u) {
                return true;
            }
        }
        false
    }

    /// Nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_of_a_cycle_is_one_component() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, false);
        g.add_edge(2, 0, false);
        let comp = g.scc();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert!(g.has_cycle());
    }

    #[test]
    fn scc_of_a_dag_is_all_singletons() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, false);
        g.add_edge(0, 2, true);
        g.add_edge(2, 3, true);
        let comp = g.scc();
        let mut distinct: Vec<u32> = comp.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        assert!(!g.has_cycle());
        assert!(!g.has_special_cycle());
    }

    #[test]
    fn special_cycle_detection_requires_special_edge_inside_scc() {
        // Cycle 0 -> 1 -> 0 all regular; special edge 1 -> 2 leaves the SCC.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, false);
        g.add_edge(1, 0, false);
        g.add_edge(1, 2, true);
        assert!(g.has_cycle());
        assert!(!g.has_special_cycle());

        // Close the loop through the special edge.
        g.add_edge(2, 0, false);
        assert!(g.has_special_cycle());
        let (u, v) = g.find_special_cycle_edge().unwrap();
        assert_eq!((u, v), (1, 2));
    }

    #[test]
    fn special_self_loop_is_a_special_cycle() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 0, true);
        assert!(g.has_special_cycle());
    }

    #[test]
    fn regular_self_loop_is_a_cycle_but_not_special() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 0, false);
        assert!(g.has_cycle());
        assert!(!g.has_special_cycle());
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, true);
        g.add_edge(0, 1, true);
        g.add_edge(0, 1, false);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn reachability() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, false);
        g.add_edge(1, 2, false);
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn two_interlocking_cycles_share_a_component() {
        // 0 <-> 1, 1 <-> 2 — all in one SCC.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, false);
        g.add_edge(1, 0, false);
        g.add_edge(1, 2, false);
        g.add_edge(2, 1, true);
        let comp = g.scc();
        assert_eq!(comp[0], comp[2]);
        assert!(g.has_special_cycle());
    }

    #[test]
    fn large_path_does_not_overflow_recursion() {
        // Iterative Tarjan must handle deep graphs.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, false);
        }
        let comp = g.scc();
        assert_eq!(comp.len(), n);
        assert!(!g.has_cycle());
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DiGraph::new(0);
        assert!(!g.has_cycle());
        assert!(!g.has_special_cycle());
        assert!(g.scc().is_empty());
    }
}
