//! Positions: `(predicate, argument index)` pairs with dense numbering.
//!
//! The dependency graphs of weak/rich acyclicity have one node per schema
//! position. This module maps positions to dense indices (offset table over
//! the vocabulary's predicates) so graphs can use flat adjacency vectors.

use chasekit_core::{PredId, Vocabulary};

/// A schema position: argument slot `index` of predicate `pred`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// The predicate.
    pub pred: PredId,
    /// Zero-based argument index.
    pub index: usize,
}

/// Dense numbering of every position of a vocabulary.
#[derive(Debug, Clone)]
pub struct PositionMap {
    offsets: Vec<usize>,
    arities: Vec<usize>,
    total: usize,
}

impl PositionMap {
    /// Builds the map over all predicates of the vocabulary.
    pub fn new(vocab: &Vocabulary) -> Self {
        let mut offsets = Vec::with_capacity(vocab.pred_count());
        let mut arities = Vec::with_capacity(vocab.pred_count());
        let mut total = 0usize;
        for p in vocab.preds() {
            offsets.push(total);
            let a = vocab.arity(p);
            arities.push(a);
            total += a;
        }
        PositionMap { offsets, arities, total }
    }

    /// Total number of positions.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the schema has no positions at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Dense index of a position.
    #[inline]
    pub fn index(&self, pos: Position) -> usize {
        debug_assert!(pos.index < self.arities[pos.pred.index()]);
        self.offsets[pos.pred.index()] + pos.index
    }

    /// Inverse of [`PositionMap::index`].
    pub fn position(&self, dense: usize) -> Position {
        // Binary search over offsets: the last offset <= dense.
        let mut lo = 0usize;
        let mut hi = self.offsets.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.offsets[mid] <= dense {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Position { pred: PredId::from_index(lo), index: dense - self.offsets[lo] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chasekit_core::Program;

    #[test]
    fn dense_indices_round_trip() {
        let p = Program::parse("p(X, Y) -> q(Y). q(X) -> r(X, Y, Z).").unwrap();
        let map = PositionMap::new(&p.vocab);
        assert_eq!(map.len(), 2 + 1 + 3);
        for dense in 0..map.len() {
            let pos = map.position(dense);
            assert_eq!(map.index(pos), dense);
        }
    }

    #[test]
    fn positions_of_distinct_predicates_do_not_collide() {
        let p = Program::parse("p(X, Y) -> q(Y).").unwrap();
        let map = PositionMap::new(&p.vocab);
        let pp = p.vocab.pred("p").unwrap();
        let qq = p.vocab.pred("q").unwrap();
        let a = map.index(Position { pred: pp, index: 1 });
        let b = map.index(Position { pred: qq, index: 0 });
        assert_ne!(a, b);
    }

    #[test]
    fn zero_ary_predicates_contribute_no_positions() {
        let p = Program::parse("go -> p(X).").unwrap();
        let map = PositionMap::new(&p.vocab);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn empty_vocabulary_is_empty() {
        let p = Program::parse("").unwrap();
        let map = PositionMap::new(&p.vocab);
        assert!(map.is_empty());
    }
}
