//! Acyclicity of the graph of rule dependencies (aGRD, Baget et al.).
//!
//! Rule `τ` *depends on* rule `σ` when applying `σ` can enable a new
//! application of `τ`. If the graph of rule dependencies is acyclic, every
//! chase variant terminates on every database (derivations have bounded
//! rule-nesting depth).
//!
//! Exact dependency requires piece-unification; this module implements the
//! standard **atom-level over-approximation**: `σ → τ` iff some head atom of
//! `σ` is compatible with some body atom of `τ`, where compatibility treats
//!
//! * universal variables of the head as wildcards,
//! * existential variables of the head as distinct fresh nulls (two
//!   positions holding different existentials cannot be forced equal, and a
//!   null can never equal a constant), and
//! * repeated variables of the body atom as equality constraints on the
//!   corresponding head terms.
//!
//! The approximation only *adds* edges, so acyclicity of the approximate
//! graph still soundly implies termination. It is incomparable with weak
//! acyclicity (it accepts non-WA rule sets without positional feedback and
//! rejects WA Datalog recursion), which is exactly why it is a useful
//! baseline in the sufficient-condition landscape experiment.

use chasekit_core::{Program, Term, Tgd};

use crate::graph::DiGraph;

/// Terms of a head atom, abstracted for compatibility checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadTerm {
    /// Universal variable: can take any value.
    Wildcard,
    /// Existential variable, identified per rule-variable.
    Fresh(u32),
    /// A constant.
    Const(u32),
}

fn head_term(rule: &Tgd, t: Term) -> HeadTerm {
    match t {
        Term::Var(v) => {
            if rule.is_universal(v) {
                HeadTerm::Wildcard
            } else {
                HeadTerm::Fresh(v.0)
            }
        }
        Term::Const(c) => HeadTerm::Const(c.0),
        Term::Null(_) => unreachable!("rules contain no nulls"),
    }
}

/// Can two head terms be forced equal (required when the body repeats a
/// variable across their positions)?
fn joinable(a: HeadTerm, b: HeadTerm) -> bool {
    match (a, b) {
        (HeadTerm::Wildcard, _) | (_, HeadTerm::Wildcard) => true,
        (HeadTerm::Fresh(x), HeadTerm::Fresh(y)) => x == y,
        (HeadTerm::Const(x), HeadTerm::Const(y)) => x == y,
        (HeadTerm::Fresh(_), HeadTerm::Const(_)) | (HeadTerm::Const(_), HeadTerm::Fresh(_)) => {
            false
        }
    }
}

/// Whether `head` (an atom of `σ`'s head) is compatible with `body` (an atom
/// of `τ`'s body): some instantiation of `σ`'s universals makes the head
/// image match the body pattern.
fn compatible(sigma: &Tgd, head: &chasekit_core::Atom, tau: &Tgd, body: &chasekit_core::Atom) -> bool {
    if head.pred != body.pred {
        return false;
    }
    debug_assert_eq!(head.arity(), body.arity());
    let hts: Vec<HeadTerm> = head.args.iter().map(|&t| head_term(sigma, t)).collect();

    // Per-position constraints from the body pattern's constants.
    for (ht, bt) in hts.iter().zip(&body.args) {
        match *bt {
            Term::Const(c) => match *ht {
                HeadTerm::Wildcard => {}
                HeadTerm::Const(hc) if hc == c.0 => {}
                _ => return false,
            },
            Term::Var(_) => {}
            Term::Null(_) => unreachable!("rules contain no nulls"),
        }
    }

    // Equality constraints from repeated body variables: the head terms at
    // all positions of one body variable must be pairwise joinable.
    let _ = tau;
    for (i, bt) in body.args.iter().enumerate() {
        let Term::Var(v) = *bt else { continue };
        for (j, bt2) in body.args.iter().enumerate().skip(i + 1) {
            if *bt2 == Term::Var(v) && !joinable(hts[i], hts[j]) {
                return false;
            }
        }
    }
    true
}

/// Builds the (over-approximated) graph of rule dependencies.
pub fn rule_dependency_graph(program: &Program) -> DiGraph {
    let rules = program.rules();
    let mut g = DiGraph::new(rules.len());
    for (si, sigma) in rules.iter().enumerate() {
        for (ti, tau) in rules.iter().enumerate() {
            let depends = sigma.head().iter().any(|h| {
                tau.body().iter().any(|b| compatible(sigma, h, tau, b))
            });
            if depends {
                g.add_edge(si, ti, false);
            }
        }
    }
    g
}

/// Whether the (over-approximated) graph of rule dependencies is acyclic.
/// Sound for termination of **all** chase variants on all databases.
pub fn is_grd_acyclic(program: &Program) -> bool {
    !rule_dependency_graph(program).has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::is_weakly_acyclic;

    fn parse(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn example1_self_dependency_is_cyclic() {
        let p = parse("person(X) -> hasFather(X, Y), person(Y).");
        assert!(!is_grd_acyclic(&p));
    }

    #[test]
    fn stratified_chain_is_acyclic() {
        let p = parse("a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> d(X, Z).");
        assert!(is_grd_acyclic(&p));
    }

    #[test]
    fn datalog_recursion_is_cyclic_even_though_wa_accepts() {
        // aGRD rejects transitive closure (t feeds t) while WA accepts it —
        // the two conditions are incomparable.
        let p = parse("e(X, Y), t(Y, Z) -> t(X, Z).");
        assert!(is_weakly_acyclic(&p));
        assert!(!is_grd_acyclic(&p));
    }

    #[test]
    fn agrd_accepts_non_wa_sets_without_rule_feedback() {
        // p(X) -> q(X, Z). q(X, Z) -> p(Z). is cyclic for both; instead use
        // a set with positional feedback but no rule feedback:
        // p(X, Y) -> q(Y, Z). q(X, Y) -> r(X, Y). (acyclic dependencies)
        let p = parse("p(X, Y) -> q(Y, Z). q(X, Y) -> r(X, Y).");
        assert!(is_grd_acyclic(&p));
    }

    #[test]
    fn constant_clash_blocks_dependency() {
        // Head produces q(X, a); body needs q(Y, b): no dependency.
        let p = parse("p(X) -> q(X, a). q(Y, b) -> p(Y).");
        assert!(is_grd_acyclic(&p));
        // With matching constants the loop closes.
        let p2 = parse("p(X) -> q(X, a). q(Y, a) -> p(Y).");
        assert!(!is_grd_acyclic(&p2));
    }

    #[test]
    fn distinct_existentials_cannot_fill_a_repeated_variable() {
        // Head e(Y, Z) with distinct existentials; body needs e(W, W).
        let p = parse("p(X) -> e(Y, Z). e(W, W) -> p(W).");
        assert!(is_grd_acyclic(&p));
        // Same existential twice can.
        let p2 = parse("p(X) -> e(Y, Y). e(W, W) -> p(W).");
        assert!(!is_grd_acyclic(&p2));
    }

    #[test]
    fn existential_cannot_equal_a_constant() {
        let p = parse("p(X) -> q(Y). q(a) -> p(a).");
        assert!(is_grd_acyclic(&p));
        // A universal (wildcard) can.
        let p2 = parse("p(X) -> q(X). q(a) -> p(a).");
        assert!(!is_grd_acyclic(&p2));
    }

    #[test]
    fn dependency_graph_shape() {
        let p = parse("a(X) -> b(X). b(X) -> c(X). c(X) -> a(X).");
        let g = rule_dependency_graph(&p);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_cycle());
    }
}
