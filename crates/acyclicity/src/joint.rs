//! Joint acyclicity (Krötzsch & Rudolph, IJCAI 2011).
//!
//! Joint acyclicity refines weak acyclicity by tracking, for each
//! existential variable `z`, the set `Move(z)` of schema positions that
//! nulls invented for `z` can ever reach, and requiring the "z's nulls
//! participate in creating z'-nulls" relation to be acyclic.
//!
//! * `Move(z)` is the least set containing the head positions of `z` in its
//!   rule and closed under propagation: for any rule `τ` and frontier
//!   variable `y` of `τ`, if **every** body position of `y` is in `Move(z)`,
//!   then every head position of `y` is in `Move(z)`.
//! * The dependency graph has an edge `z → z'` iff the rule of `z'` has a
//!   frontier variable `y` with every body position in `Move(z)` — i.e. a
//!   null of `z` can appear in the frontier assignment of a trigger that
//!   mints a null for `z'`.
//!
//! Joint acyclicity guarantees termination of the semi-oblivious (Skolem)
//! chase and strictly generalizes weak acyclicity: the per-variable `Move`
//! sets see that a repeated body variable cannot be filled by a null that
//! only reaches one of its positions, which the position-level dependency
//! graph cannot.

use chasekit_core::{Program, Term, VarId};

use crate::graph::DiGraph;
use crate::position::{Position, PositionMap};

/// One existential variable of the program, globally numbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExVar {
    rule: usize,
    var: VarId,
}

/// Body positions of each frontier variable of a rule.
fn body_positions(program: &Program, rule: usize, var: VarId, map: &PositionMap) -> Vec<usize> {
    let r = &program.rules()[rule];
    let mut out = Vec::new();
    for atom in r.body() {
        for (i, t) in atom.args.iter().enumerate() {
            if *t == Term::Var(var) {
                out.push(map.index(Position { pred: atom.pred, index: i }));
            }
        }
    }
    out
}

fn head_positions(program: &Program, rule: usize, var: VarId, map: &PositionMap) -> Vec<usize> {
    let r = &program.rules()[rule];
    let mut out = Vec::new();
    for atom in r.head() {
        for (i, t) in atom.args.iter().enumerate() {
            if *t == Term::Var(var) {
                out.push(map.index(Position { pred: atom.pred, index: i }));
            }
        }
    }
    out
}

/// Computes `Move(z)` as a bitset over dense positions.
fn move_set(program: &Program, z: ExVar, map: &PositionMap) -> Vec<bool> {
    let mut in_move = vec![false; map.len()];
    for p in head_positions(program, z.rule, z.var, map) {
        in_move[p] = true;
    }
    // Fixpoint. Program sizes here are small; a simple loop suffices.
    let mut changed = true;
    while changed {
        changed = false;
        for (ri, rule) in program.rules().iter().enumerate() {
            for &y in rule.frontier() {
                let body = body_positions(program, ri, y, map);
                if body.is_empty() || !body.iter().all(|&p| in_move[p]) {
                    continue;
                }
                for p in head_positions(program, ri, y, map) {
                    if !in_move[p] {
                        in_move[p] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    in_move
}

/// Whether the program is jointly acyclic.
pub fn is_jointly_acyclic(program: &Program) -> bool {
    let map = PositionMap::new(&program.vocab);
    let mut exvars: Vec<ExVar> = Vec::new();
    for (ri, rule) in program.rules().iter().enumerate() {
        for &z in rule.existentials() {
            exvars.push(ExVar { rule: ri, var: z });
        }
    }
    if exvars.is_empty() {
        return true; // Datalog: trivially jointly acyclic.
    }

    let moves: Vec<Vec<bool>> = exvars.iter().map(|&z| move_set(program, z, &map)).collect();

    let mut g = DiGraph::new(exvars.len());
    for (zi, mv) in moves.iter().enumerate() {
        for (zj, zv) in exvars.iter().enumerate() {
            let rule = &program.rules()[zv.rule];
            let feeds = rule.frontier().iter().any(|&y| {
                let body = body_positions(program, zv.rule, y, &map);
                !body.is_empty() && body.iter().all(|&p| mv[p])
            });
            if feeds {
                g.add_edge(zi, zj, false);
            }
        }
    }
    !g.has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::is_weakly_acyclic;

    fn parse(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn datalog_is_jointly_acyclic() {
        let p = parse("e(X, Y), t(Y, Z) -> t(X, Z).");
        assert!(is_jointly_acyclic(&p));
    }

    #[test]
    fn example1_is_not_jointly_acyclic() {
        let p = parse("person(X) -> hasFather(X, Y), person(Y).");
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn example2_is_not_jointly_acyclic() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn ja_accepts_the_repeated_variable_witness_that_wa_rejects() {
        // s(X) -> e(X, Z). e(X, X) -> s(X).
        // WA sees a dangerous position cycle s#0 -> e#1 -> s#0, but a null
        // for Z only ever reaches e#1, never e#0, so the repeated-variable
        // body e(X, X) can never consume it. JA sees this; the so-chase
        // indeed terminates on every database.
        let p = parse("s(X) -> e(X, Z). e(X, X) -> s(X).");
        assert!(!is_weakly_acyclic(&p), "WA over-approximates here");
        assert!(is_jointly_acyclic(&p), "JA is exact here");
    }

    #[test]
    fn ja_rejects_realizable_feedback() {
        let p = parse("s(X) -> e(X, Z). e(Y, X) -> s(X).");
        assert!(!is_jointly_acyclic(&p));
    }

    #[test]
    fn wa_implies_ja_on_samples() {
        for src in [
            "p(X, Y) -> q(X, Y).",
            "p(X) -> q(X, Z).",
            "r(X, Y) -> r(X, Z).",
            "p(X, Y) -> p(Y, Z).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
            "s(X) -> e(X, Z). e(X, X) -> s(X).",
            "p(X) -> q(X, Z). q(X, Z) -> p(X).",
        ] {
            let p = parse(src);
            if is_weakly_acyclic(&p) {
                assert!(is_jointly_acyclic(&p), "WA ⇒ JA must hold for {src}");
            }
        }
    }

    #[test]
    fn chain_of_existentials_without_feedback_is_ja() {
        let p = parse("a(X) -> b(X, Y). b(X, Y) -> c(Y, Z). c(X, Y) -> d(Y).");
        assert!(is_jointly_acyclic(&p));
    }

    #[test]
    fn mutual_existential_feedback_is_not_ja() {
        let p = parse("a(X) -> b(X, Y). b(X, Y) -> a(Y).");
        assert!(!is_jointly_acyclic(&p));
    }
}
