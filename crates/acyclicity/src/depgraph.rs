//! Dependency graphs for weak and rich acyclicity.
//!
//! Nodes are schema positions. For each TGD and each universal variable `x`
//! occurring in the body at position `π`:
//!
//! * if `x` occurs in the head (it is a *frontier* variable):
//!   - a **regular** edge `π → π'` for every head position `π'` of `x`
//!     (the value propagates),
//!   - a **special** edge `π → π''` for every head position `π''` of an
//!     existential variable (a fresh null is created whose value depends on
//!     the trigger).
//! * additionally, in the **extended** dependency graph (rich acyclicity,
//!   Hernich–Schweikardt), special edges emanate from the body positions of
//!   *every* universal variable — frontier or not — because under the
//!   oblivious chase a change anywhere in the body image yields a new
//!   trigger and hence new nulls.
//!
//! Weak acyclicity [Fagin et al., TCS'05]: the dependency graph has no
//! cycle through a special edge. Rich acyclicity: same condition on the
//! extended graph.

use chasekit_core::{Program, Term, Tgd};

use crate::graph::DiGraph;
use crate::position::{Position, PositionMap};

/// Which dependency graph to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// The dependency graph of weak acyclicity.
    Standard,
    /// The extended dependency graph of rich acyclicity.
    Extended,
}

/// Builds the (extended) dependency graph of a program's rules.
pub fn dependency_graph(program: &Program, kind: GraphKind) -> DiGraph {
    let map = PositionMap::new(&program.vocab);
    let mut g = DiGraph::new(map.len());
    for rule in program.rules() {
        add_rule_edges(rule, kind, &map, &mut g);
    }
    g
}

fn add_rule_edges(rule: &Tgd, kind: GraphKind, map: &PositionMap, g: &mut DiGraph) {
    // Existential positions of the head (targets of special edges).
    let mut existential_positions: Vec<usize> = Vec::new();
    for atom in rule.head() {
        for (i, t) in atom.args.iter().enumerate() {
            if let Term::Var(v) = *t {
                if !rule.is_universal(v) {
                    existential_positions.push(map.index(Position { pred: atom.pred, index: i }));
                }
            }
        }
    }

    for atom in rule.body() {
        for (i, t) in atom.args.iter().enumerate() {
            let Term::Var(v) = *t else { continue };
            if !rule.is_universal(v) {
                continue; // cannot happen in a valid TGD, but be defensive
            }
            let from = map.index(Position { pred: atom.pred, index: i });
            let frontier = rule.is_frontier(v);

            if frontier {
                // Regular propagation edges.
                for head_atom in rule.head() {
                    for (j, ht) in head_atom.args.iter().enumerate() {
                        if *ht == Term::Var(v) {
                            let to = map.index(Position { pred: head_atom.pred, index: j });
                            g.add_edge(from, to, false);
                        }
                    }
                }
            }

            // Special edges: frontier variables always; non-frontier
            // universals only in the extended graph.
            if frontier || kind == GraphKind::Extended {
                for &to in &existential_positions {
                    g.add_edge(from, to, true);
                }
            }
        }
    }
}

/// Outcome of an acyclicity check, carrying a witness edge when negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acyclicity {
    /// The graph has no cycle through a special edge.
    Acyclic,
    /// A special edge on a cycle, as dense position indices.
    DangerousCycle {
        /// Source position (dense index) of the witnessing special edge.
        from: usize,
        /// Target position (dense index) of the witnessing special edge.
        to: usize,
    },
}

impl Acyclicity {
    /// `true` iff acyclic.
    pub fn is_acyclic(self) -> bool {
        matches!(self, Acyclicity::Acyclic)
    }
}

/// Work performed by a graph-based acyclicity check: the size of the
/// analyzed graph. Reported alongside verdicts so experiments can compare
/// checker effort, not just outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphWork {
    /// Nodes (schema positions) in the dependency graph.
    pub nodes: usize,
    /// Edges, with multiplicity collapsed (regular + special).
    pub edges: usize,
    /// Edges marked special (null-creating propagation).
    pub special_edges: usize,
}

/// Checks a program against the chosen dependency graph.
pub fn check(program: &Program, kind: GraphKind) -> Acyclicity {
    check_with_work(program, kind).0
}

/// Like [`check`], but also reports the size of the graph the verdict was
/// computed on.
pub fn check_with_work(program: &Program, kind: GraphKind) -> (Acyclicity, GraphWork) {
    let g = dependency_graph(program, kind);
    let special_edges =
        (0..g.node_count()).map(|u| g.edges(u).iter().filter(|(_, s)| *s).count()).sum();
    let work = GraphWork { nodes: g.node_count(), edges: g.edge_count(), special_edges };
    let verdict = match g.find_special_cycle_edge() {
        None => Acyclicity::Acyclic,
        Some((from, to)) => Acyclicity::DangerousCycle { from, to },
    };
    (verdict, work)
}

/// Weak acyclicity: no dangerous cycle in the dependency graph.
/// Guarantees termination of the **semi-oblivious** (and restricted) chase
/// on all instances; on simple linear rules it is exact for the
/// semi-oblivious chase (paper, Theorem 1).
pub fn is_weakly_acyclic(program: &Program) -> bool {
    check(program, GraphKind::Standard).is_acyclic()
}

/// Rich acyclicity: no dangerous cycle in the extended dependency graph.
/// Guarantees termination of the **oblivious** chase on all instances; on
/// simple linear rules it is exact (paper, Theorem 1).
pub fn is_richly_acyclic(program: &Program) -> bool {
    check(program, GraphKind::Extended).is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn example1_is_not_weakly_acyclic() {
        // person(X) -> hasFather(X, Y), person(Y): person#0 -special-> person#0
        // via the existential Y.
        let p = parse("person(X) -> hasFather(X, Y), person(Y).");
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_richly_acyclic(&p));
    }

    #[test]
    fn example2_is_not_weakly_acyclic() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_richly_acyclic(&p));
    }

    #[test]
    fn classic_separator_is_wa_but_not_ra() {
        // r(X, Y) -> r(X, Z): so-chase terminates (WA), o-chase diverges
        // (not RA) — the non-frontier Y feeds the extended special edge.
        let p = parse("r(X, Y) -> r(X, Z).");
        assert!(is_weakly_acyclic(&p));
        assert!(!is_richly_acyclic(&p));
    }

    #[test]
    fn copy_rule_is_richly_acyclic() {
        let p = parse("p(X, Y) -> q(X, Y).");
        assert!(is_weakly_acyclic(&p));
        assert!(is_richly_acyclic(&p));
    }

    #[test]
    fn one_shot_existential_is_richly_acyclic() {
        // p(X) -> q(X, Z); q never feeds back into p.
        let p = parse("p(X) -> q(X, Z).");
        assert!(is_weakly_acyclic(&p));
        assert!(is_richly_acyclic(&p));
    }

    #[test]
    fn two_rule_feedback_through_existential_is_dangerous() {
        // p(X) -> q(X, Z). q(X, Z) -> p(Z): the null flows back into p#0
        // and regenerates.
        let p = parse("p(X) -> q(X, Z). q(X, Z) -> p(Z).");
        assert!(!is_weakly_acyclic(&p));
        assert!(!is_richly_acyclic(&p));
    }

    #[test]
    fn feedback_without_null_growth_is_weakly_acyclic() {
        // p(X) -> q(X, Z). q(X, Z) -> p(X): the null lands in q#1 which has
        // no outgoing special path back; only X cycles (regular).
        let p = parse("p(X) -> q(X, Z). q(X, Z) -> p(X).");
        assert!(is_weakly_acyclic(&p));
        // Extended graph: Z's position q#1 gains a special edge to q#1? No:
        // the second rule has no existential. The first rule's non-frontier
        // variables: none (X is frontier). So RA holds too.
        assert!(is_richly_acyclic(&p));
    }

    #[test]
    fn datalog_is_always_acyclic() {
        let p = parse("e(X, Y) -> t(X, Y). e(X, Y), t(Y, Z) -> t(X, Z).");
        assert!(is_weakly_acyclic(&p));
        assert!(is_richly_acyclic(&p));
    }

    #[test]
    fn ra_implies_wa_on_samples() {
        // The extended graph is a supergraph, so RA ⇒ WA; spot-check a few.
        for src in [
            "p(X, Y) -> q(X, Y).",
            "p(X) -> q(X, Z).",
            "r(X, Y) -> r(X, Z).",
            "p(X, Y) -> p(Y, Z).",
            "a(X) -> b(X, Y). b(X, Y) -> c(Y). c(X) -> a(X).",
        ] {
            let p = parse(src);
            if is_richly_acyclic(&p) {
                assert!(is_weakly_acyclic(&p), "RA must imply WA for {src}");
            }
        }
    }

    #[test]
    fn dangerous_cycle_witness_points_at_a_special_edge() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        match check(&p, GraphKind::Standard) {
            Acyclicity::DangerousCycle { from, to } => {
                // Both endpoints are positions of p (the only predicate).
                assert!(from < 2 && to < 2);
            }
            Acyclicity::Acyclic => panic!("expected a dangerous cycle"),
        }
    }

    #[test]
    fn multi_head_existential_positions_all_get_special_edges() {
        // The existential Y occurs in two head atoms; both positions are
        // special targets. Closing a loop through either must be caught.
        let p = parse("p(X) -> q(X, Y), r(Y). r(Y) -> p(Y).");
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn repeated_body_variable_contributes_all_its_positions() {
        // p(X, X) -> q(X): edges from both p#0 and p#1.
        let p = parse("p(X, X) -> q(X, Z). q(X, Z) -> p(Z, Z).");
        assert!(!is_weakly_acyclic(&p));
    }

    #[test]
    fn check_with_work_reports_graph_sizes() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        let (verdict, work) = check_with_work(&p, GraphKind::Standard);
        assert!(!verdict.is_acyclic());
        // Regular: p#1 -> p#0 (Y). Special: p#1 -> p#1 (Y feeds Z).
        assert_eq!(work, GraphWork { nodes: 2, edges: 2, special_edges: 1 });
        let (_, extended) = check_with_work(&p, GraphKind::Extended);
        // Adds special p#0 -> p#1 (X is non-frontier universal).
        assert_eq!(extended, GraphWork { nodes: 2, edges: 3, special_edges: 2 });
    }

    #[test]
    fn graph_shape_counts() {
        let p = parse("p(X, Y) -> p(Y, Z).");
        let g = dependency_graph(&p, GraphKind::Standard);
        // Regular: p#1 -> p#0 (Y). Special: p#1 -> p#1 (Y feeds Z).
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        let ge = dependency_graph(&p, GraphKind::Extended);
        // Adds special p#0 -> p#1 (X is non-frontier universal).
        assert_eq!(ge.edge_count(), 3);
    }
}
