//! Allocation accounting for the steady-state matching hot path.
//!
//! The interned-instance rebuild promises that once a `MatchScratch` is
//! warm, trigger matching performs **zero per-candidate heap allocation**:
//! candidate postings are borrowed from the columnar indexes (never
//! copied), substitution slots and the binding trail live in the scratch,
//! and `AtomRef` resolution is pointer arithmetic into the arena. This
//! test pins that down with a counting global allocator: warm up once,
//! then re-run the same matching workload and demand the allocation
//! counter not move.
//!
//! Single-threaded by construction (one `#[test]` per concern would let
//! libtest interleave counters), so everything lives in one test fn.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use chasekit_core::{
    exists_extension_scratch, for_each_hom_scratch, CriticalInstance, InstanceView, MatchScratch,
    Program, Substitution,
};

/// `System`, with a count of every allocation it hands out.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_scratch_matching_does_not_allocate() {
    // A guarded program whose bodies join two atoms, chased far enough on
    // its critical instance that the postings are non-trivial.
    let src = "\
        g(X, Y), p(Y) -> g(Y, Z), q(Z).\n\
        q(X), g(X, Y) -> p(Y).\n\
        g(a, b). p(b). q(a).\n";
    let mut program = Program::parse(src).unwrap();
    let crit = CriticalInstance::build(&mut program);
    let mut instance = crit.instance;
    // Grow the instance a little so matching walks real candidate lists.
    let facts: Vec<_> = program.facts().to_vec();
    for f in &facts {
        instance.insert(f.clone());
    }

    let view = InstanceView::full(&instance);
    let rule_bodies: Vec<(Vec<chasekit_core::Atom>, usize)> = program
        .rules()
        .iter()
        .map(|r| (r.body().to_vec(), r.vars().len()))
        .collect();
    let max_vars = rule_bodies.iter().map(|&(_, v)| v).max().unwrap();

    let mut scratch = MatchScratch::default();
    let mut empty_init = Substitution::new(max_vars);
    let mut count = 0u64;

    // Warm-up pass: scratch buffers grow to their steady-state capacity
    // here; allocations are expected and not counted against the budget.
    for (body, vars) in &rule_bodies {
        for_each_hom_scratch(body, *vars, &view, None, None, &mut scratch, &mut |_s| {
            count += 1;
            std::ops::ControlFlow::Continue(())
        });
        empty_init.reset(*vars);
        let _ = exists_extension_scratch(body, *vars, &instance, &empty_init, &mut scratch);
    }
    assert!(count > 0, "the workload must actually produce matches to mean anything");

    // Measured pass: identical work, warm scratch — zero allocations.
    let before = allocs();
    let mut count2 = 0u64;
    for (body, vars) in &rule_bodies {
        for_each_hom_scratch(body, *vars, &view, None, None, &mut scratch, &mut |_s| {
            count2 += 1;
            std::ops::ControlFlow::Continue(())
        });
        empty_init.reset(*vars);
        let _ = exists_extension_scratch(body, *vars, &instance, &empty_init, &mut scratch);
    }
    let after = allocs();

    assert_eq!(count2, count, "the two passes must do identical work");
    assert_eq!(
        after - before,
        0,
        "steady-state matching allocated {} time(s) — the scratch/borrowed-postings \
         contract is broken",
        after - before
    );
}
