//! Differential testing of the incremental-update subsystem (DRed
//! retraction over the derivation DAG) against the from-scratch oracle.
//!
//! Two differentials, per the two update modes:
//!
//! 1. **In-place repair vs rebuild.** A derivation-tracked machine that
//!    chased the original base and then applied an edit script via
//!    `apply_edits` must end Skolem-canonically equal (oblivious /
//!    semi-oblivious) or hom-equivalent (restricted — its result is
//!    legitimately order-dependent) to a from-scratch chase of
//!    `edited_program`. Every repaired machine must also satisfy the
//!    support invariant: no surviving derived atom without a live,
//!    acyclic derivation from surviving base facts.
//!
//! 2. **The canonical rebuild is deterministic.** Chasing the edited
//!    program is the durable form of an update (`chasekit serve` admits
//!    updates this way), so it inherits the engine's bit-identity
//!    promise: checkpoint text at 1/2/4 threads identical, and for
//!    tracked runs the derivation DAG and Skolem ancestry too.
//!
//! Edit scripts are generated deterministically from each program's own
//! base facts — interleaved adds and retracts, existing and fresh
//! constants — and go through the textual `parse_edit_script` path, so
//! the script format itself is under test. Inputs: the paper's worked
//! examples, every datagen family (random facts attached when a family
//! has none), and random guarded programs over random databases.

use chasekit::core::display::atom_to_string;
use chasekit::core::hom_equivalent;
use chasekit::datagen::database::{random_database, DbConfig};
use chasekit::datagen::random::{random_guarded, RandomConfig};
use chasekit::engine::{
    canonical_form, check_support, edited_program, is_model, parse_edit_script, ChaseConfig,
    ChaseMachine,
};
use chasekit::prelude::*;

const VARIANTS: [ChaseVariant; 3] =
    [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious, ChaseVariant::Restricted];

const BUDGET_APPLICATIONS: u64 = 300;
const BUDGET_ATOMS: usize = 4_000;

fn budget() -> Budget {
    Budget::applications(BUDGET_APPLICATIONS).with_atoms(BUDGET_ATOMS)
}

/// A tiny deterministic generator so scripts are stable across runs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The test corpus: every program carries base facts (families without
/// any get a random database attached as program facts, so retraction
/// has something to bite on).
fn corpus() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for family in chasekit::datagen::corpus() {
        let mut program = family.program.clone();
        if program.facts().is_empty() {
            let db = random_database(&mut program, &DbConfig { facts: 8, constants: 4 }, 11);
            for atom in db.iter() {
                program.add_fact(atom.1.to_atom()).unwrap();
            }
        }
        if !program.facts().is_empty() {
            out.push((family.name.clone(), program));
        }
    }
    for seed in [1u64, 2, 3] {
        let cfg = RandomConfig::default();
        let mut program = random_guarded(&cfg, 90_000 + seed);
        let db = random_database(&mut program, &DbConfig { facts: 10, constants: 5 }, seed);
        for atom in db.iter() {
            program.add_fact(atom.1.to_atom()).unwrap();
        }
        if !program.facts().is_empty() {
            out.push((format!("random-guarded-{seed}"), program));
        }
    }
    out
}

/// Builds a deterministic edit script from the program's own base facts:
/// interleaved retracts (of existing base facts) and adds (same
/// predicates, mixing constants already in the facts with fresh ones),
/// plus the comment and blank-line syntax, so the parser is exercised too.
fn edit_script(program: &Program, seed: u64) -> String {
    let mut rng = XorShift(seed);
    let facts = program.facts();
    let vocab = &program.vocab;
    let mut script = String::from("% generated edit script\n\n");
    let rounds = 2 + rng.pick(2); // 2 or 3 interleaved rounds
    for round in 0..rounds {
        let victim = &facts[rng.pick(facts.len())];
        script.push_str(&format!("retract {}.\n", atom_to_string(victim, vocab, None)));
        // An added fact over some base fact's predicate: half the args
        // reuse that fact's constants, half are fresh constants.
        let template = &facts[rng.pick(facts.len())];
        let args: Vec<String> = template
            .args
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if rng.pick(2) == 0 {
                    format!("zz{seed}_{round}_{i}")
                } else {
                    atom_term(t, vocab)
                }
            })
            .collect();
        let pred = vocab.pred_name(template.pred);
        script.push_str(&format!("add {}({}).\n", pred, args.join(", ")));
    }
    script
}

fn atom_term(t: &Term, vocab: &chasekit::core::vocab::Vocabulary) -> String {
    chasekit::core::display::term_to_string(*t, vocab, None)
}

/// Differential 1: in-place DRed repair vs from-scratch rebuild, all
/// variants, sequential (tracked machines are sequential by contract for
/// updates). Saturated pairs are compared exactly; budget-stopped runs
/// (diverging families) still get the support invariant checked.
#[test]
fn incremental_update_matches_from_scratch_chase() {
    let mut exact_comparisons = 0usize;
    for (name, base) in corpus() {
        let script = edit_script(&base, 0xC0FFEE ^ base.facts().len() as u64);
        for variant in VARIANTS {
            let mut program = base.clone();
            let edits = parse_edit_script(&script, &mut program)
                .unwrap_or_else(|e| panic!("{name}: script {script:?}: {e}"));

            // In-place: chase the original base, then repair.
            let cfg = ChaseConfig::of(variant).with_derivation();
            let mut live = ChaseMachine::new(
                &program,
                cfg,
                Instance::from_atoms(program.facts().iter().cloned()),
            );
            live.run(&budget());
            let completion = Budget::applications(
                live.stats().applications + BUDGET_APPLICATIONS,
            )
            .with_atoms(BUDGET_ATOMS);
            let report = live
                .apply_edits(&edits, &completion)
                .unwrap_or_else(|e| panic!("{name} {variant:?}: {e}"));
            check_support(live.instance(), live.derivation())
                .unwrap_or_else(|e| panic!("{name} {variant:?}: support broken: {e}"));

            // From scratch: chase the edited program.
            let edited = edited_program(&program, &edits);
            let mut scratch = ChaseMachine::new(
                &edited,
                cfg,
                Instance::from_atoms(edited.facts().iter().cloned()),
            );
            let scratch_stop = scratch.run(&budget());
            check_support(scratch.instance(), scratch.derivation())
                .unwrap_or_else(|e| panic!("{name} {variant:?}: scratch support: {e}"));

            // Exact comparison only when both runs reached the fixpoint;
            // a budget stop leaves order-dependent prefixes on both sides.
            if report.outcome != StopReason::Saturated || scratch_stop != StopReason::Saturated
            {
                continue;
            }
            match variant {
                ChaseVariant::Restricted => {
                    assert!(
                        is_model(&edited, live.instance()),
                        "{name}: repaired restricted instance is not a model"
                    );
                    assert!(
                        is_model(&edited, scratch.instance()),
                        "{name}: scratch restricted instance is not a model"
                    );
                    assert!(
                        hom_equivalent(live.instance(), scratch.instance()),
                        "{name}: restricted repair not hom-equivalent to rebuild"
                    );
                }
                _ => {
                    assert_eq!(
                        canonical_form(live.instance(), live.derivation()),
                        canonical_form(scratch.instance(), scratch.derivation()),
                        "{name} {variant:?}: repair and rebuild differ canonically"
                    );
                }
            }
            exact_comparisons += 1;
        }
    }
    assert!(
        exact_comparisons >= 12,
        "only {exact_comparisons} saturated comparisons — corpus too divergent to mean much"
    );
}

/// Differential 2a: the canonical rebuild (the durable update path) is
/// bit-identical — checkpoint text — at 1, 2, and 4 threads, under all
/// three variants.
#[test]
fn edited_programs_chase_bit_identical_across_threads() {
    for (name, base) in corpus() {
        let script = edit_script(&base, 0xBEEF ^ base.facts().len() as u64);
        let mut program = base.clone();
        let edits = parse_edit_script(&script, &mut program).unwrap();
        let edited = edited_program(&program, &edits);
        let initial = Instance::from_atoms(edited.facts().iter().cloned());
        for variant in VARIANTS {
            let cfg = ChaseConfig::of(variant);
            let mut seq = ChaseMachine::new(&edited, cfg, initial.clone());
            let stop = seq.run(&budget());
            let text = seq.snapshot().to_text().expect("untracked runs serialize");
            for threads in [2usize, 4] {
                let mut par = ChaseMachine::new(&edited, cfg, initial.clone());
                assert_eq!(
                    stop,
                    par.run_parallel(&budget(), threads),
                    "{name} {variant:?}: stop reason @ {threads} threads"
                );
                assert_eq!(
                    text,
                    par.snapshot().to_text().unwrap(),
                    "{name} {variant:?}: checkpoint text diverged @ {threads} threads"
                );
            }
        }
    }
}

/// Differential 2b: tracked rebuilds agree on the derivation DAG and
/// Skolem ancestry across thread counts.
#[test]
fn edited_programs_keep_dag_and_skolem_identical_across_threads() {
    for (name, base) in corpus() {
        let script = edit_script(&base, 0xD1CE ^ base.facts().len() as u64);
        let mut program = base.clone();
        let edits = parse_edit_script(&script, &mut program).unwrap();
        let edited = edited_program(&program, &edits);
        let initial = Instance::from_atoms(edited.facts().iter().cloned());
        for variant in VARIANTS {
            let cfg = ChaseConfig::of(variant).with_derivation().with_skolem();
            let mut seq = ChaseMachine::new(&edited, cfg, initial.clone());
            let mut par = ChaseMachine::new(&edited, cfg, initial.clone());
            assert_eq!(
                seq.run(&budget()),
                par.run_parallel(&budget(), 4),
                "{name} {variant:?}: tracked stop reason"
            );
            assert_eq!(
                format!("{:?}", seq.derivation()),
                format!("{:?}", par.derivation()),
                "{name} {variant:?}: derivation DAG diverged"
            );
            assert_eq!(
                seq.skolem_cyclic(),
                par.skolem_cyclic(),
                "{name} {variant:?}: skolem ancestry diverged"
            );
        }
    }
}

/// A second-order differential: applying a script in one `apply_edits`
/// call and applying it one edit at a time must land on the same state —
/// per-edit repairs compose.
#[test]
fn edit_scripts_compose_edit_by_edit() {
    for (name, base) in corpus().into_iter().take(6) {
        let script = edit_script(&base, 0xFACADE ^ base.facts().len() as u64);
        let mut program = base.clone();
        let edits = parse_edit_script(&script, &mut program).unwrap();
        for variant in [ChaseVariant::Oblivious, ChaseVariant::SemiOblivious] {
            let cfg = ChaseConfig::of(variant).with_derivation();
            let initial = Instance::from_atoms(program.facts().iter().cloned());

            let mut batch = ChaseMachine::new(&program, cfg, initial.clone());
            batch.run(&budget());
            let b = Budget::applications(batch.stats().applications + BUDGET_APPLICATIONS)
                .with_atoms(BUDGET_ATOMS);
            let batch_report = batch.apply_edits(&edits, &b).unwrap();

            let mut stepwise = ChaseMachine::new(&program, cfg, initial);
            stepwise.run(&budget());
            let mut step_outcome = StopReason::Saturated;
            for edit in &edits {
                let b = Budget::applications(
                    stepwise.stats().applications + BUDGET_APPLICATIONS,
                )
                .with_atoms(BUDGET_ATOMS);
                step_outcome =
                    stepwise.apply_edits(std::slice::from_ref(edit), &b).unwrap().outcome;
            }
            if batch_report.outcome != StopReason::Saturated
                || step_outcome != StopReason::Saturated
            {
                continue;
            }
            assert_eq!(
                canonical_form(batch.instance(), batch.derivation()),
                canonical_form(stepwise.instance(), stepwise.derivation()),
                "{name} {variant:?}: batch and stepwise edits diverge"
            );
        }
    }
}
